//! Logical query plans.
//!
//! A [`LogicalPlan`] is a tree of relational operators over named tables.
//! Plans are built fluently:
//!
//! ```
//! use tamp_query::plan::LogicalPlan;
//! use tamp_query::expr::{col, lit};
//! use tamp_query::plan::AggFunc;
//!
//! let q = LogicalPlan::scan("orders")
//!     .filter(col("amount").gt(lit(100)))
//!     .join_on(LogicalPlan::scan("customers"), "cust_id", "id")
//!     .aggregate("region", AggFunc::Sum, "amount");
//! assert!(format!("{q}").contains("HashJoin"));
//! ```
//!
//! Schema inference ([`LogicalPlan::schema`]) resolves column names
//! against a [`Catalog`]; execution maps each
//! operator onto the paper's topology-aware primitives (see
//! [`exec`](crate::exec)).

use std::fmt;

use crate::error::QueryError;
use crate::expr::Expr;
use crate::schema::Schema;
use crate::table::Catalog;

/// Distributive aggregate functions over full-width `u64` measures.
///
/// (Unlike [`tamp_core::aggregate::Aggregator`], which bit-packs groups
/// and measures into single simulator values, query rows carry columns
/// natively — so sums saturate at `u64::MAX`.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of input rows per group.
    Count,
    /// Saturating sum of the measure per group.
    Sum,
    /// Minimum measure per group.
    Min,
    /// Maximum measure per group.
    Max,
}

impl AggFunc {
    /// The partial a single measure contributes.
    #[inline]
    pub fn lift(self, measure: u64) -> u64 {
        match self {
            AggFunc::Count => 1,
            _ => measure,
        }
    }

    /// Merge two partials.
    #[inline]
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggFunc::Count | AggFunc::Sum => a.saturating_add(b),
            AggFunc::Min => a.min(b),
            AggFunc::Max => a.max(b),
        }
    }

    /// Lower-case name, used for output column naming.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// A tree of relational operators.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LogicalPlan {
    /// Read a named base table.
    Scan {
        /// Catalog table name.
        table: String,
    },
    /// Keep rows matching a predicate.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate (nonzero ⇒ keep).
        predicate: Expr,
    },
    /// Compute named output expressions.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Equi-join on one column from each side.
    HashJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join column on the left schema.
        left_key: String,
        /// Join column on the right schema.
        right_key: String,
    },
    /// Full cartesian product.
    CrossJoin {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
    /// Globally sort by a key column (ascending). The distributed output
    /// is range-partitioned along the tree's valid compute-node order.
    OrderBy {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort column.
        key: String,
    },
    /// Grouped aggregation to `(group, aggregate)` rows.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping column.
        group_by: String,
        /// Aggregate function.
        agg: AggFunc,
        /// Measured column.
        measure: String,
    },
    /// Keep the first `n` rows (after gathering; deterministic only
    /// downstream of an `OrderBy`).
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row budget.
        n: usize,
    },
    /// Remove duplicate rows (bag → set).
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Bag union of two inputs with identical schemas.
    UnionAll {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Scan a base table.
    pub fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.to_string(),
        }
    }

    /// Keep rows where `predicate` is nonzero.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Compute named expressions.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.to_string(), e)).collect(),
        }
    }

    /// Equi-join with `right` on `self.left_key = right.right_key`.
    pub fn join_on(self, right: LogicalPlan, left_key: &str, right_key: &str) -> LogicalPlan {
        LogicalPlan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            left_key: left_key.to_string(),
            right_key: right_key.to_string(),
        }
    }

    /// Cartesian product with `right`.
    pub fn cross(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::CrossJoin {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Globally sort by `key`.
    pub fn order_by(self, key: &str) -> LogicalPlan {
        LogicalPlan::OrderBy {
            input: Box::new(self),
            key: key.to_string(),
        }
    }

    /// Group by `group_by` and aggregate `measure` with `agg`.
    pub fn aggregate(self, group_by: &str, agg: AggFunc, measure: &str) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by: group_by.to_string(),
            agg,
            measure: measure.to_string(),
        }
    }

    /// Keep at most `n` rows.
    pub fn limit(self, n: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Remove duplicate rows.
    pub fn distinct(self) -> LogicalPlan {
        LogicalPlan::Distinct {
            input: Box::new(self),
        }
    }

    /// Bag union with `right` (schemas must match exactly).
    pub fn union_all(self, right: LogicalPlan) -> LogicalPlan {
        LogicalPlan::UnionAll {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Infer the output schema against a catalog, validating every column
    /// reference along the way.
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema, QueryError> {
        match self {
            LogicalPlan::Scan { table } => Ok(catalog.table(table)?.schema.clone()),
            LogicalPlan::Filter { input, predicate } => {
                let schema = input.schema(catalog)?;
                predicate.bind(&schema)?; // validate references
                Ok(schema)
            }
            LogicalPlan::Project { input, exprs } => {
                let schema = input.schema(catalog)?;
                for (_, e) in exprs {
                    e.bind(&schema)?;
                }
                Schema::new(exprs.iter().map(|(n, _)| n.clone()).collect())
            }
            LogicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let ls = left.schema(catalog)?;
                let rs = right.schema(catalog)?;
                ls.index_of(left_key)?;
                rs.index_of(right_key)?;
                ls.join(&rs, "r_")
            }
            LogicalPlan::CrossJoin { left, right } => {
                let ls = left.schema(catalog)?;
                let rs = right.schema(catalog)?;
                ls.join(&rs, "r_")
            }
            LogicalPlan::OrderBy { input, key } => {
                let schema = input.schema(catalog)?;
                schema.index_of(key)?;
                Ok(schema)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                agg,
                measure,
            } => {
                let schema = input.schema(catalog)?;
                schema.index_of(group_by)?;
                schema.index_of(measure)?;
                Schema::new(vec![
                    group_by.clone(),
                    format!("{}_{}", agg.name(), measure),
                ])
            }
            LogicalPlan::Limit { input, .. } => input.schema(catalog),
            LogicalPlan::Distinct { input } => input.schema(catalog),
            LogicalPlan::UnionAll { left, right } => {
                let ls = left.schema(catalog)?;
                let rs = right.schema(catalog)?;
                if ls != rs {
                    return Err(QueryError::Plan(format!(
                        "UNION ALL schema mismatch: {ls} vs {rs}"
                    )));
                }
                Ok(ls)
            }
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan { table } => writeln!(f, "{pad}Scan {table}"),
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter {predicate}")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|(n, e)| format!("{n}={e}")).collect();
                writeln!(f, "{pad}Project [{}]", cols.join(", "))?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                writeln!(f, "{pad}HashJoin {left_key} = {right_key}")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            LogicalPlan::CrossJoin { left, right } => {
                writeln!(f, "{pad}CrossJoin")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            LogicalPlan::OrderBy { input, key } => {
                writeln!(f, "{pad}OrderBy {key}")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                agg,
                measure,
            } => {
                writeln!(
                    f,
                    "{pad}Aggregate {}({measure}) group by {group_by}",
                    agg.name()
                )?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Limit { input, n } => {
                writeln!(f, "{pad}Limit {n}")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Distinct { input } => {
                writeln!(f, "{pad}Distinct")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::UnionAll { left, right } => {
                writeln!(f, "{pad}UnionAll")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::table::{Catalog, DistributedTable};
    use tamp_topology::builders;

    fn catalog() -> Catalog {
        let tree = builders::star(3, 1.0);
        let mut c = Catalog::new(tree);
        let orders = DistributedTable::round_robin(
            "orders",
            Schema::new(vec!["id", "cust_id", "amount"]).unwrap(),
            vec![vec![1, 10, 500], vec![2, 11, 30]],
            c.tree(),
        );
        let customers = DistributedTable::round_robin(
            "customers",
            Schema::new(vec!["id", "region"]).unwrap(),
            vec![vec![10, 1], vec![11, 2]],
            c.tree(),
        );
        c.register(orders).unwrap();
        c.register(customers).unwrap();
        c
    }

    #[test]
    fn schema_inference_chain() {
        let c = catalog();
        let q = LogicalPlan::scan("orders")
            .filter(col("amount").gt(lit(100)))
            .join_on(LogicalPlan::scan("customers"), "cust_id", "id")
            .aggregate("region", AggFunc::Sum, "amount");
        let s = q.schema(&c).unwrap();
        assert_eq!(s.columns(), &["region", "sum_amount"]);
    }

    #[test]
    fn join_schema_prefixes_duplicates() {
        let c = catalog();
        let q =
            LogicalPlan::scan("orders").join_on(LogicalPlan::scan("customers"), "cust_id", "id");
        let s = q.schema(&c).unwrap();
        assert_eq!(s.columns(), &["id", "cust_id", "amount", "r_id", "region"]);
    }

    #[test]
    fn unknown_references_fail_inference() {
        let c = catalog();
        assert!(LogicalPlan::scan("nope").schema(&c).is_err());
        assert!(LogicalPlan::scan("orders")
            .filter(col("zzz").gt(lit(0)))
            .schema(&c)
            .is_err());
        assert!(LogicalPlan::scan("orders")
            .order_by("zzz")
            .schema(&c)
            .is_err());
        assert!(LogicalPlan::scan("orders")
            .aggregate("zzz", AggFunc::Count, "amount")
            .schema(&c)
            .is_err());
    }

    #[test]
    fn display_renders_tree() {
        let q = LogicalPlan::scan("orders")
            .filter(col("amount").gt(lit(100)))
            .limit(5);
        let text = q.to_string();
        assert!(text.contains("Limit 5"));
        assert!(text.contains("Filter (amount > 100)"));
        assert!(text.contains("Scan orders"));
    }

    #[test]
    fn aggfunc_semantics() {
        assert_eq!(AggFunc::Count.lift(999), 1);
        assert_eq!(AggFunc::Sum.combine(u64::MAX, 5), u64::MAX);
        assert_eq!(AggFunc::Min.combine(3, 9), 3);
        assert_eq!(AggFunc::Max.combine(3, 9), 9);
    }
}
