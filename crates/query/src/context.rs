//! The `QueryContext` session API.
//!
//! A [`QueryContext`] bundles a topology-bound [`Catalog`] with session
//! [`ExecOptions`] and exposes the prepare/explain/run pipeline:
//!
//! ```
//! use tamp_query::prelude::*;
//! use tamp_topology::builders;
//!
//! let mut ctx = QueryContext::new(builders::star(4, 1.0)).with_seed(7);
//! let rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i % 3, i * 2]).collect();
//! ctx.register(DistributedTable::round_robin(
//!     "t",
//!     Schema::new(vec!["id", "g", "x"]).unwrap(),
//!     rows,
//!     ctx.tree(),
//! ))
//! .unwrap();
//!
//! // DataFrame-style chaining…
//! let result = ctx
//!     .table("t")
//!     .filter(col("x").gt(lit(50)))
//!     .aggregate("g", AggFunc::Count, "id")
//!     .collect()
//!     .unwrap();
//! assert_eq!(result.schema.columns(), &["g", "count_id"]);
//!
//! // …or explicit prepare → explain → run.
//! let prepared = ctx
//!     .prepare(&LogicalPlan::scan("t").order_by("x"))
//!     .unwrap();
//! assert!(prepared.explain().contains("range-shuffle"));
//! let result = prepared.run().unwrap();
//! assert_eq!(result.num_rows(), 100);
//! ```
//!
//! [`PreparedQuery::run_on`] executes the same prepared plan on any
//! [`ExecBackend`] — the centralized simulator or the pooled BSP cluster
//! — with bit-identical cost ledgers (see [`crate::exec`]).

use std::sync::Arc;

use tamp_runtime::backend::{ExecBackend, SimulatorBackend};
use tamp_topology::{EdgeId, Tree};

use crate::error::QueryError;
use crate::exec::{self, ExecMode, ExecOptions, JoinStrategy, QueryResult};
use crate::expr::Expr;
use crate::physical::strategy::{
    default_registry, OperatorKind, PhysicalStrategy, StrategyRegistry,
};
use crate::physical::{lower_full, PhysicalPlan};
use crate::plan::{AggFunc, LogicalPlan};
use crate::reference;
use crate::schema::Schema;
use crate::table::{Catalog, DistributedTable};

/// A query session: a catalog of distributed tables plus session
/// options, the entry point of the relational layer.
#[derive(Clone, Debug)]
pub struct QueryContext {
    catalog: Catalog,
    options: ExecOptions,
    registry: StrategyRegistry,
}

impl QueryContext {
    /// A fresh session over `tree` with an empty catalog and default
    /// options.
    pub fn new(tree: Tree) -> Self {
        QueryContext {
            catalog: Catalog::new(tree),
            options: ExecOptions::default(),
            registry: StrategyRegistry::with_defaults(),
        }
    }

    /// Wrap an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        QueryContext {
            catalog,
            options: ExecOptions::default(),
            registry: StrategyRegistry::with_defaults(),
        }
    }

    /// Builder-style: set the hashing/sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Builder-style: set the session's join strategy (default
    /// [`JoinStrategy::Auto`], the cost-based choice).
    pub fn with_join_strategy(mut self, join: JoinStrategy) -> Self {
        self.options.join = join;
        self
    }

    /// Builder-style: set the execution engine (default
    /// [`ExecMode::Columnar`]; [`ExecMode::Tuple`] keeps the row-at-a-time
    /// interpreter, bit-identical in rows and metered cost).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// Builder-style: set the record-batch granularity (rows per batch
    /// and per metered send). Zero is rejected at plan time with
    /// [`QueryError::InvalidBatchSize`](crate::error::QueryError); the
    /// metered cost is invariant in any valid value.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.options.batch_size = batch_size;
        self
    }

    /// Builder-style: force a named strategy for one operator. The name
    /// resolves against the session's registry at plan time; unknown
    /// names surface as
    /// [`QueryError::UnknownStrategy`](crate::error::QueryError) from
    /// [`prepare`](Self::prepare).
    ///
    /// # Panics
    /// Panics for [`OperatorKind::Distinct`] / [`OperatorKind::Limit`],
    /// whose exchanges have a single built-in strategy.
    pub fn with_strategy(mut self, op: OperatorKind, name: &'static str) -> Self {
        match op {
            OperatorKind::Join => self.options.force.join = Some(name),
            OperatorKind::CrossJoin => self.options.force.cross = Some(name),
            OperatorKind::Sort => self.options.force.sort = Some(name),
            OperatorKind::Aggregate => self.options.force.aggregate = Some(name),
            OperatorKind::Distinct | OperatorKind::Limit => {
                panic!("{op} has a single built-in strategy and cannot be forced")
            }
        }
        self
    }

    /// Register a custom [`PhysicalStrategy`] with this session: the
    /// planner prices it against the built-ins on every subsequent
    /// `prepare` (see [`crate::physical::strategy`] for a worked
    /// example). Returns `&mut self` for chained registration.
    pub fn register_strategy(&mut self, strategy: Arc<dyn PhysicalStrategy>) -> &mut Self {
        self.registry.register(strategy);
        self
    }

    /// The session's strategy registry.
    pub fn strategies(&self) -> &StrategyRegistry {
        &self.registry
    }

    /// The session's execution options.
    pub fn options(&self) -> ExecOptions {
        self.options
    }

    /// Register a table; replaces any table with the same name. Returns
    /// `&mut self` for chained registration.
    pub fn register(&mut self, table: DistributedTable) -> Result<&mut Self, QueryError> {
        self.catalog.register(table)?;
        Ok(self)
    }

    /// The catalog backing this session.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Degrade one link of the session's topology in place: divide both
    /// directed bandwidths of `edge` by `factor`. Every subsequent
    /// `prepare` prices its strategy candidates against the degraded
    /// network — the plan that wins can genuinely flip (see the serving
    /// layer's [`degrade_link`](crate::service::QueryService::degrade_link),
    /// which adds cache invalidation on top).
    pub fn degrade_link(&mut self, edge: EdgeId, factor: f64) -> Result<(), QueryError> {
        self.catalog.scale_bandwidth(edge, factor)
    }

    /// The topology the session's tables live on.
    pub fn tree(&self) -> &Tree {
        self.catalog.tree()
    }

    /// Start a DataFrame-style chain from a named table. Name resolution
    /// is lazy: unknown tables surface as errors at
    /// [`DataFrame::prepare`]/[`DataFrame::collect`] time.
    pub fn table(&self, name: &str) -> DataFrame<'_> {
        DataFrame {
            ctx: self,
            plan: LogicalPlan::scan(name),
        }
    }

    /// Plan `plan` into a [`PreparedQuery`]: validate, lower to a
    /// [`PhysicalPlan`], price every exchange and resolve
    /// [`JoinStrategy::Auto`] cost-based.
    pub fn prepare(&self, plan: &LogicalPlan) -> Result<PreparedQuery<'_>, QueryError> {
        prepare_with_registry(&self.catalog, plan.clone(), self.options, &self.registry)
    }

    /// Prepare and run `plan` on the default (simulator) backend.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryResult, QueryError> {
        self.prepare(plan)?.run()
    }
}

/// Prepare a plan against a borrowed catalog — the shared pipeline under
/// [`QueryContext::prepare`] and the legacy
/// [`execute`](crate::exec::execute) shim.
pub(crate) fn prepare_with(
    catalog: &Catalog,
    plan: LogicalPlan,
    options: ExecOptions,
) -> Result<PreparedQuery<'_>, QueryError> {
    prepare_with_registry(catalog, plan, options, default_registry())
}

/// [`prepare_with`] against an explicit strategy registry (the
/// [`QueryContext`] path, where sessions may have registered custom
/// strategies).
pub(crate) fn prepare_with_registry<'c>(
    catalog: &'c Catalog,
    plan: LogicalPlan,
    options: ExecOptions,
    registry: &StrategyRegistry,
) -> Result<PreparedQuery<'c>, QueryError> {
    let (physical, schema) = lower_full(&plan, catalog, options, registry)?;
    Ok(PreparedQuery {
        catalog,
        options,
        logical: plan,
        physical,
        schema,
    })
}

/// A planned, cost-estimated, backend-generic query: inspect it with
/// [`explain`](PreparedQuery::explain), execute it with
/// [`run`](PreparedQuery::run) / [`run_on`](PreparedQuery::run_on).
#[derive(Clone, Debug)]
pub struct PreparedQuery<'c> {
    catalog: &'c Catalog,
    options: ExecOptions,
    logical: LogicalPlan,
    physical: PhysicalPlan,
    schema: Schema,
}

impl<'c> PreparedQuery<'c> {
    /// Assemble a prepared query from already-lowered parts — the
    /// serving layer's plan-cache path
    /// ([`QueryService`](crate::service::QueryService)), which skips
    /// re-lowering on a cache hit but still wants the session-layer
    /// `explain`/`run_on` surface.
    pub(crate) fn from_parts(
        catalog: &'c Catalog,
        options: ExecOptions,
        logical: LogicalPlan,
        physical: PhysicalPlan,
        schema: Schema,
    ) -> Self {
        PreparedQuery {
            catalog,
            options,
            logical,
            physical,
            schema,
        }
    }
}

impl PreparedQuery<'_> {
    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The logical plan this query was prepared from.
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.logical
    }

    /// The lowered physical plan with its exchanges and estimates.
    pub fn physical_plan(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// The planner's total estimated §2 cost.
    pub fn estimated_cost(&self) -> f64 {
        self.physical.estimated_cost()
    }

    /// Render the physical plan with per-exchange estimated costs — the
    /// `EXPLAIN` of this layer. Works identically on every backend (the
    /// plan, not the engine, decides the exchanges).
    pub fn explain(&self) -> String {
        format!(
            "physical plan (seed {}, est cost {:.1} over {} exchange round{}):\n{}",
            self.options.seed,
            self.physical.estimated_cost(),
            self.physical.estimated_rounds(),
            if self.physical.estimated_rounds() == 1 {
                ""
            } else {
                "s"
            },
            self.physical
        )
    }

    /// Whether fragment concatenation in node order is globally
    /// meaningful for this query (downstream of a sort).
    pub fn preserves_order(&self) -> bool {
        reference::preserves_order(&self.logical)
    }

    /// Run on the default engine (the centralized simulator backend).
    pub fn run(&self) -> Result<QueryResult, QueryError> {
        self.run_on(&SimulatorBackend)
    }

    /// Run on an explicit [`ExecBackend`]. The exchange schedule is
    /// derived once from the plan and replayed through the backend, so
    /// every engine moves — and meters — bit-identical traffic.
    pub fn run_on(&self, backend: &dyn ExecBackend) -> Result<QueryResult, QueryError> {
        exec::run_physical(self.catalog, &self.physical, self.options, backend)
    }
}

/// A lazily-built logical plan bound to a [`QueryContext`] — the
/// DataFrame-style face of the API.
#[derive(Clone, Debug)]
pub struct DataFrame<'c> {
    ctx: &'c QueryContext,
    plan: LogicalPlan,
}

impl<'c> DataFrame<'c> {
    /// The logical plan built so far.
    pub fn logical_plan(&self) -> &LogicalPlan {
        &self.plan
    }

    fn map(self, f: impl FnOnce(LogicalPlan) -> LogicalPlan) -> Self {
        DataFrame {
            ctx: self.ctx,
            plan: f(self.plan),
        }
    }

    /// Keep rows where `predicate` is nonzero.
    pub fn filter(self, predicate: Expr) -> Self {
        self.map(|p| p.filter(predicate))
    }

    /// Compute named expressions.
    pub fn project(self, exprs: Vec<(&str, Expr)>) -> Self {
        self.map(|p| p.project(exprs))
    }

    /// Equi-join with `right` on `left_key = right_key`.
    pub fn join_on(self, right: impl Into<LogicalPlan>, left_key: &str, right_key: &str) -> Self {
        let right = right.into();
        self.map(|p| p.join_on(right, left_key, right_key))
    }

    /// Cartesian product with `right`.
    pub fn cross(self, right: impl Into<LogicalPlan>) -> Self {
        let right = right.into();
        self.map(|p| p.cross(right))
    }

    /// Globally sort by `key`.
    pub fn order_by(self, key: &str) -> Self {
        self.map(|p| p.order_by(key))
    }

    /// Group by `group_by` and aggregate `measure` with `agg`.
    pub fn aggregate(self, group_by: &str, agg: AggFunc, measure: &str) -> Self {
        self.map(|p| p.aggregate(group_by, agg, measure))
    }

    /// Keep at most `n` rows.
    pub fn limit(self, n: usize) -> Self {
        self.map(|p| p.limit(n))
    }

    /// Remove duplicate rows.
    pub fn distinct(self) -> Self {
        self.map(LogicalPlan::distinct)
    }

    /// Bag union with `right` (schemas must match exactly).
    pub fn union_all(self, right: impl Into<LogicalPlan>) -> Self {
        let right = right.into();
        self.map(|p| p.union_all(right))
    }

    /// Plan the chain into a [`PreparedQuery`].
    pub fn prepare(&self) -> Result<PreparedQuery<'c>, QueryError> {
        prepare_with_registry(
            self.ctx.catalog(),
            self.plan.clone(),
            self.ctx.options(),
            self.ctx.strategies(),
        )
    }

    /// Render the plan's `EXPLAIN` (prepare + explain).
    pub fn explain(&self) -> Result<String, QueryError> {
        Ok(self.prepare()?.explain())
    }

    /// Prepare and run on the default (simulator) backend.
    pub fn collect(&self) -> Result<QueryResult, QueryError> {
        self.prepare()?.run()
    }

    /// Prepare and run on an explicit backend.
    pub fn collect_on(&self, backend: &dyn ExecBackend) -> Result<QueryResult, QueryError> {
        self.prepare()?.run_on(backend)
    }
}

impl From<DataFrame<'_>> for LogicalPlan {
    fn from(df: DataFrame<'_>) -> LogicalPlan {
        df.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::reference;
    use tamp_runtime::PooledClusterBackend;
    use tamp_topology::builders;

    fn ctx() -> QueryContext {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0);
        let mut ctx = QueryContext::new(tree.clone()).with_seed(11);
        let rows: Vec<Vec<u64>> = (0..150).map(|i| vec![i, i % 6, (i * 37) % 500]).collect();
        let facts = DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            &tree,
        );
        let dims = DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..6).map(|g| vec![g, g + 10]).collect(),
            &tree,
        );
        ctx.register(facts).unwrap().register(dims).unwrap();
        ctx
    }

    #[test]
    fn dataframe_chain_matches_reference() {
        let ctx = ctx();
        let df = ctx
            .table("facts")
            .filter(col("x").lt(lit(250)))
            .join_on(ctx.table("dims"), "g", "g")
            .aggregate("tier", AggFunc::Sum, "x")
            .order_by("tier");
        let res = df.collect().unwrap();
        let want = reference::evaluate(df.logical_plan(), ctx.catalog()).unwrap();
        assert_eq!(res.rows(true), want);
    }

    #[test]
    fn explain_shows_exchanges_and_costs() {
        let ctx = ctx();
        let prepared = ctx
            .prepare(
                &LogicalPlan::scan("facts")
                    .join_on(LogicalPlan::scan("dims"), "g", "g")
                    .order_by("x"),
            )
            .unwrap();
        let text = prepared.explain();
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("est cost"), "{text}");
        assert!(text.contains("candidates"), "{text}");
        assert!(text.contains("range-shuffle"), "{text}");
        assert!(prepared.estimated_cost() > 0.0);
    }

    #[test]
    fn prepared_query_runs_on_both_backends_bit_identically() {
        let ctx = ctx();
        let prepared = ctx
            .prepare(
                &LogicalPlan::scan("facts")
                    .join_on(LogicalPlan::scan("dims"), "g", "g")
                    .aggregate("tier", AggFunc::Count, "id"),
            )
            .unwrap();
        let sim = prepared.run().unwrap();
        let cluster = prepared.run_on(&PooledClusterBackend::default()).unwrap();
        assert_eq!(sim.cost.edge_totals, cluster.cost.edge_totals);
        assert_eq!(sim.rounds, cluster.rounds);
        assert_eq!(sim.rows(false), cluster.rows(false));
    }

    #[test]
    fn unknown_tables_surface_at_prepare_time() {
        let ctx = ctx();
        let err = ctx.table("nope").collect().unwrap_err();
        assert!(matches!(err, QueryError::UnknownTable(_)));
    }

    #[test]
    fn session_options_flow_into_planning() {
        let base = ctx();
        let forced = QueryContext::with_catalog(base.catalog().clone())
            .with_join_strategy(JoinStrategy::Uniform);
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        let p = forced.prepare(&q).unwrap();
        assert!(
            p.explain().contains("via uniform-repartition"),
            "{}",
            p.explain()
        );
    }
}
