//! Weighted-fair multi-tenant admission: the scheduling core of the
//! [orchestrator](crate::orchestrator).
//!
//! The plain [`QueryService`](crate::service::QueryService) admits
//! waiting queries in strict FIFO ticket order — fair for one population,
//! but a single bursty tenant fills the queue and every other tenant
//! waits behind the burst. This module replaces the FIFO gate with
//! **deficit-weighted round-robin (DRR) over tenants**:
//!
//! - every tenant is declared up front as a [`TenantSpec`]: a share
//!   `weight`, a `quota` bounding its in-flight **plus** queued queries
//!   (submits beyond the quota are rejected with
//!   [`QueryError::TenantQueueFull`], not queued), and a [`Priority`]
//!   class;
//! - admission capacity is a global in-flight bound, like the FIFO
//!   gate's; when a slot frees, the scheduler picks the next grant by
//!   strict priority across classes and DRR within the class: each visit
//!   replenishes a tenant's deficit by its weight and grants one query
//!   per deficit unit, so over any backlogged window tenants receive
//!   service proportional to weight — and *every* backlogged tenant is
//!   visited once per rotation, which is the no-starvation guarantee;
//! - queries within one tenant stay FIFO.
//!
//! The fairness telemetry is deliberately structural rather than
//! wall-clock: every grant records how many *other* grants happened
//! between its enqueue and its own grant (`Grant::waited_grants`,
//! surfaced per tenant as `TenantStats::max_waited_grants`). For
//! a backlogged tenant of weight `w` in a system of total weight `W`,
//! DRR bounds that number by about `W / w` per queued position — a
//! deterministic quantity the stress tests can assert exactly, where
//! wall-clock p99s would flake.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::QueryError;

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Strict priority classes: every queued query of a higher class is
/// granted before any query of a lower class is considered. Weighted
/// fairness (DRR) applies *within* a class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Served before everything else (dashboards, health probes).
    Interactive,
    /// The default class.
    #[default]
    Normal,
    /// Served only when no higher class has queued queries (backfill,
    /// report batches).
    Batch,
}

impl Priority {
    /// All classes, highest first — the scheduler's scan order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Batch];
}

/// One tenant's admission contract. See the [module docs](self) for how
/// the three knobs interact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantSpec {
    /// Unique tenant name (the key queries are submitted under).
    pub name: String,
    /// Relative service share within the priority class (≥ 1). A
    /// weight-4 tenant gets 4 grants per DRR rotation where a weight-1
    /// tenant gets 1.
    pub weight: u32,
    /// Max in-flight + queued queries (≥ 1); submits beyond it are
    /// rejected with [`QueryError::TenantQueueFull`].
    pub quota: usize,
    /// Strict priority class.
    pub priority: Priority,
}

impl TenantSpec {
    /// A [`Priority::Normal`] tenant.
    pub fn new(name: impl Into<String>, weight: u32, quota: usize) -> Self {
        TenantSpec {
            name: name.into(),
            weight,
            quota,
            priority: Priority::Normal,
        }
    }

    /// Builder-style: set the priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), QueryError> {
        if self.name.is_empty() {
            return Err(QueryError::InvalidTenantSpec("empty tenant name".into()));
        }
        if self.weight == 0 {
            return Err(QueryError::InvalidTenantSpec(format!(
                "tenant `{}` has weight 0 (need \u{2265} 1)",
                self.name
            )));
        }
        if self.quota == 0 {
            return Err(QueryError::InvalidTenantSpec(format!(
                "tenant `{}` has quota 0 (need \u{2265} 1)",
                self.name
            )));
        }
        Ok(())
    }
}

/// What [`WeightedAdmission::acquire`] returns once the query is granted.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Grant {
    /// Global grant sequence number (the orchestrator's ticket).
    pub ticket: u64,
    /// Grants to *other* queries between this query's enqueue and its own
    /// grant — the structural fairness metric (see the module docs).
    pub waited_grants: u64,
    /// Wall-clock time spent queued.
    pub queued: Duration,
}

/// One tenant's scheduler state.
struct TenantState {
    spec: TenantSpec,
    /// DRR deficit: grants this tenant may take before the cursor moves
    /// on. Replenished by `weight` when the cursor arrives with the
    /// deficit spent; reset to 0 whenever the tenant has no waiters.
    deficit: u32,
    /// Total submits accepted into the queue (assigns per-tenant seqs).
    enqueued: u64,
    /// Total grants; the waiter with seq `s` runs once `granted > s`.
    granted: u64,
    /// Currently executing queries.
    running: usize,
    /// Submits rejected at quota.
    rejected: u64,
    /// Per queued waiter (FIFO): global grant count at its enqueue.
    pending: VecDeque<u64>,
    /// seq → (global ticket, waited_grants), filled at grant time,
    /// drained by the waiter when it wakes.
    waits: HashMap<u64, (u64, u64)>,
}

impl TenantState {
    fn queued(&self) -> usize {
        (self.enqueued - self.granted) as usize
    }

    fn occupancy(&self) -> usize {
        self.queued() + self.running
    }
}

/// Point-in-time per-tenant admission counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantAdmission {
    /// Queries granted so far.
    pub granted: u64,
    /// Submits rejected at the tenant's quota.
    pub rejected: u64,
    /// Queries currently queued.
    pub queued: usize,
    /// Queries currently executing.
    pub running: usize,
}

struct SchedState {
    tenants: Vec<TenantState>,
    /// Per priority class: members (indexes into `tenants`, registration
    /// order) and the DRR cursor.
    classes: [(Vec<usize>, usize); 3],
    running_total: usize,
    queued_total: usize,
    grants_total: u64,
}

/// The weighted-fair admission gate (crate-internal: the
/// [`Orchestrator`](crate::orchestrator::Orchestrator) is its public
/// face).
pub(crate) struct WeightedAdmission {
    capacity: usize,
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl WeightedAdmission {
    /// A gate admitting at most `capacity` concurrent queries across all
    /// tenants. `capacity` ≥ 1 and tenant specs are validated by the
    /// orchestrator builder before this is called.
    pub(crate) fn new(capacity: usize, specs: Vec<TenantSpec>) -> Self {
        let mut classes: [(Vec<usize>, usize); 3] = Default::default();
        for (i, spec) in specs.iter().enumerate() {
            let class = Priority::ALL
                .iter()
                .position(|&p| p == spec.priority)
                .expect("every priority is in ALL");
            classes[class].0.push(i);
        }
        let tenants: Vec<TenantState> = specs
            .into_iter()
            .map(|spec| TenantState {
                spec,
                deficit: 0,
                enqueued: 0,
                granted: 0,
                running: 0,
                rejected: 0,
                pending: VecDeque::new(),
                waits: HashMap::new(),
            })
            .collect();
        WeightedAdmission {
            capacity: capacity.max(1),
            state: Mutex::new(SchedState {
                tenants,
                classes,
                running_total: 0,
                queued_total: 0,
                grants_total: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn index_of(s: &SchedState, tenant: &str) -> Result<usize, QueryError> {
        s.tenants
            .iter()
            .position(|t| t.spec.name == tenant)
            .ok_or_else(|| QueryError::UnknownTenant(tenant.to_string()))
    }

    /// Block until this tenant's next queued query is granted. Rejects
    /// (without queuing) when the tenant is unknown or at quota.
    pub(crate) fn acquire(&self, tenant: &str) -> Result<Grant, QueryError> {
        let arrived = Instant::now();
        let mut s = lock_ok(&self.state);
        let i = Self::index_of(&s, tenant)?;
        if s.tenants[i].occupancy() >= s.tenants[i].spec.quota {
            s.tenants[i].rejected += 1;
            return Err(QueryError::TenantQueueFull {
                tenant: tenant.to_string(),
                quota: s.tenants[i].spec.quota,
            });
        }
        let seq = s.tenants[i].enqueued;
        s.tenants[i].enqueued += 1;
        let at_enqueue = s.grants_total;
        s.tenants[i].pending.push_back(at_enqueue);
        s.queued_total += 1;
        self.schedule(&mut s);
        while s.tenants[i].granted <= seq {
            s = match self.cv.wait(s) {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let (ticket, waited_grants) = s.tenants[i]
            .waits
            .remove(&seq)
            .expect("grant recorded a wait for every seq");
        Ok(Grant {
            ticket,
            waited_grants,
            queued: Instant::now().saturating_duration_since(arrived),
        })
    }

    /// Release a finished (or failed) query's slot.
    pub(crate) fn release(&self, tenant: &str) {
        let mut s = lock_ok(&self.state);
        if let Ok(i) = Self::index_of(&s, tenant) {
            s.tenants[i].running = s.tenants[i].running.saturating_sub(1);
            s.running_total = s.running_total.saturating_sub(1);
            self.schedule(&mut s);
        }
    }

    /// Grant queued queries while capacity allows: strict priority across
    /// classes, DRR within a class (see the module docs). Called under
    /// the scheduler lock on every arrival and release.
    fn schedule(&self, s: &mut SchedState) {
        let mut granted_any = false;
        while s.running_total < self.capacity && s.queued_total > 0 {
            let Some(i) = Self::pick(s) else { break };
            let ticket = s.grants_total;
            let t = &mut s.tenants[i];
            let seq = t.granted;
            t.granted += 1;
            t.running += 1;
            let at_enqueue = t.pending.pop_front().expect("a waiter per queued seq");
            t.waits.insert(seq, (ticket, ticket - at_enqueue));
            s.grants_total += 1;
            s.queued_total -= 1;
            s.running_total += 1;
            granted_any = true;
        }
        if granted_any {
            self.cv.notify_all();
        }
    }

    /// The DRR pick: the tenant receiving the next grant. `None` only if
    /// no tenant has waiters (callers check `queued_total` first).
    fn pick(s: &mut SchedState) -> Option<usize> {
        for class in 0..Priority::ALL.len() {
            let members = s.classes[class].0.clone();
            if members.is_empty() {
                continue;
            }
            if !members.iter().any(|&i| s.tenants[i].queued() > 0) {
                continue;
            }
            // One full rotation is guaranteed to land on a backlogged
            // member; idle members spend no deficit.
            loop {
                let cursor = s.classes[class].1 % members.len();
                let i = members[cursor];
                if s.tenants[i].queued() == 0 {
                    // Ineligible: reset (DRR's anti-banking rule) and move
                    // on.
                    s.tenants[i].deficit = 0;
                    s.classes[class].1 = cursor + 1;
                    continue;
                }
                if s.tenants[i].deficit == 0 {
                    s.tenants[i].deficit = s.tenants[i].spec.weight;
                }
                s.tenants[i].deficit -= 1;
                if s.tenants[i].deficit == 0 {
                    // Quantum spent: the next pick starts at the next
                    // member.
                    s.classes[class].1 = cursor + 1;
                }
                return Some(i);
            }
        }
        None
    }

    /// Total queries currently queued (the autoscaler's queue-depth
    /// signal).
    pub(crate) fn queue_depth(&self) -> usize {
        lock_ok(&self.state).queued_total
    }

    /// Total queries currently executing.
    pub(crate) fn inflight(&self) -> usize {
        lock_ok(&self.state).running_total
    }

    /// The global in-flight bound.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Point-in-time per-tenant counters, in registration order.
    pub(crate) fn tenant_admission(&self) -> Vec<(String, TenantAdmission)> {
        let s = lock_ok(&self.state);
        s.tenants
            .iter()
            .map(|t| {
                (
                    t.spec.name.clone(),
                    TenantAdmission {
                        granted: t.granted,
                        rejected: t.rejected,
                        queued: t.queued(),
                        running: t.running,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn specs_validate() {
        assert!(TenantSpec::new("a", 1, 1).validate().is_ok());
        for bad in [
            TenantSpec::new("", 1, 1),
            TenantSpec::new("a", 0, 1),
            TenantSpec::new("a", 1, 0),
        ] {
            assert!(matches!(
                bad.validate(),
                Err(QueryError::InvalidTenantSpec(_))
            ));
        }
    }

    #[test]
    fn unknown_tenants_and_quota_overflow_are_rejected() {
        let adm = WeightedAdmission::new(1, vec![TenantSpec::new("a", 1, 2)]);
        assert!(matches!(
            adm.acquire("nobody"),
            Err(QueryError::UnknownTenant(_))
        ));
        // Fill the quota: 1 running + 1 queued... with capacity 1 the
        // second acquire would block, so drive it from a thread.
        let g = adm.acquire("a").unwrap();
        assert_eq!(g.ticket, 0);
        assert_eq!(g.waited_grants, 0);
        let adm = Arc::new(adm);
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || adm2.acquire("a").map(|g| g.ticket));
        // Wait until the waiter is queued, then the quota (2) is full.
        while adm.queue_depth() == 0 {
            std::thread::yield_now();
        }
        let err = adm.acquire("a").unwrap_err();
        assert!(matches!(err, QueryError::TenantQueueFull { quota: 2, .. }));
        adm.release("a");
        assert_eq!(waiter.join().unwrap().unwrap(), 1);
    }

    #[test]
    fn drr_shares_grants_by_weight_within_a_rotation() {
        // Two backlogged tenants, weights 3 and 1, capacity 1: grants
        // must interleave 3:1, and the weight-1 tenant's waited_grants
        // stays ≤ 3 — the structural no-starvation bound.
        let adm = Arc::new(WeightedAdmission::new(
            1,
            vec![
                TenantSpec::new("big", 3, 64),
                TenantSpec::new("small", 1, 64),
            ],
        ));
        let order = Arc::new(Mutex::new(Vec::new()));
        let queued = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for (tenant, n) in [("big", 9usize), ("small", 3usize)] {
                for _ in 0..n {
                    let (adm, order, queued) = (&adm, &order, &queued);
                    scope.spawn(move || {
                        queued.fetch_add(1, Ordering::SeqCst);
                        let g = adm.acquire(tenant).unwrap();
                        order.lock().unwrap().push((tenant, g.waited_grants));
                        adm.release(tenant);
                    });
                }
            }
        });
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 12);
        for (tenant, waited) in order.iter() {
            // W = 4: a weight-1 tenant waits at most ~3 foreign grants
            // per own grant; give slack for its own earlier grants and
            // arrival racing (threads may enqueue after grants started).
            let bound = if *tenant == "small" { 9 } else { 12 };
            assert!(waited <= &bound, "{tenant} waited {waited} grants");
        }
    }

    #[test]
    fn strict_priority_preempts_lower_classes() {
        // Capacity 1; a batch query holds the slot while an interactive
        // and a batch query queue. On release, the interactive one must
        // be granted first despite arriving later.
        let adm = Arc::new(WeightedAdmission::new(
            1,
            vec![
                TenantSpec::new("fg", 1, 8).with_priority(Priority::Interactive),
                TenantSpec::new("bg", 8, 8).with_priority(Priority::Batch),
            ],
        ));
        let _hold = adm.acquire("bg").unwrap();
        let adm_bg = Arc::clone(&adm);
        let bg = std::thread::spawn(move || {
            let g = adm_bg.acquire("bg").unwrap();
            (g.ticket, std::time::Instant::now())
        });
        while adm.queue_depth() < 1 {
            std::thread::yield_now();
        }
        let adm_fg = Arc::clone(&adm);
        let fg = std::thread::spawn(move || {
            let g = adm_fg.acquire("fg").unwrap();
            let at = std::time::Instant::now();
            adm_fg.release("fg");
            (g.ticket, at)
        });
        while adm.queue_depth() < 2 {
            std::thread::yield_now();
        }
        adm.release("bg"); // frees the slot: fg must win it
        let (fg_ticket, fg_at) = fg.join().unwrap();
        adm.release("bg"); // let bg finish
        let (bg_ticket, bg_at) = bg.join().unwrap();
        assert!(fg_ticket < bg_ticket, "interactive granted first");
        assert!(fg_at <= bg_at);
    }
}
