//! Scalar expressions over rows.
//!
//! Expressions evaluate to `u64`; comparisons and boolean operators yield
//! `0` / `1`. Arithmetic is saturating (no silent wraparound), division by
//! zero is an error. Column references are by *name* at plan-build time
//! and resolved to indices against the input schema during binding.

use std::fmt;

use tamp_simulator::Value;

use crate::error::QueryError;
use crate::schema::Schema;

/// A scalar expression tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A named column reference (unbound).
    Col(String),
    /// A bound column reference (index into the row).
    ColIdx(usize),
    /// A literal value.
    Lit(Value),
    /// Saturating addition.
    Add(Box<Expr>, Box<Expr>),
    /// Saturating subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Saturating multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer division (`DivideByZero` on zero divisor).
    Div(Box<Expr>, Box<Expr>),
    /// Remainder (`DivideByZero` on zero divisor).
    Mod(Box<Expr>, Box<Expr>),
    /// Equality (`1` / `0`).
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Strictly less.
    Lt(Box<Expr>, Box<Expr>),
    /// Less or equal.
    Le(Box<Expr>, Box<Expr>),
    /// Strictly greater.
    Gt(Box<Expr>, Box<Expr>),
    /// Greater or equal.
    Ge(Box<Expr>, Box<Expr>),
    /// Logical and (inputs interpreted as `!= 0`).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

/// Shorthand for a named column reference.
pub fn col(name: &str) -> Expr {
    Expr::Col(name.to_string())
}

/// Shorthand for a literal.
pub fn lit(v: Value) -> Expr {
    Expr::Lit(v)
}

macro_rules! binop_builder {
    ($( $(#[$doc:meta])* $fn_name:ident => $variant:ident ),* $(,)?) => {
        impl Expr {
            $(
                $(#[$doc])*
                #[allow(clippy::should_implement_trait)] // fluent builder API
                pub fn $fn_name(self, rhs: Expr) -> Expr {
                    Expr::$variant(Box::new(self), Box::new(rhs))
                }
            )*
        }
    };
}

binop_builder! {
    /// `self + rhs` (saturating).
    add => Add,
    /// `self - rhs` (saturating).
    sub => Sub,
    /// `self * rhs` (saturating).
    mul => Mul,
    /// `self / rhs`.
    div => Div,
    /// `self % rhs`.
    rem => Mod,
    /// `self == rhs`.
    eq => Eq,
    /// `self != rhs`.
    ne => Ne,
    /// `self < rhs`.
    lt => Lt,
    /// `self <= rhs`.
    le => Le,
    /// `self > rhs`.
    gt => Gt,
    /// `self >= rhs`.
    ge => Ge,
    /// `self && rhs`.
    and => And,
    /// `self || rhs`.
    or => Or,
}

impl Expr {
    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Resolve all named column references against `schema`, producing a
    /// bound expression that evaluates by index.
    pub fn bind(&self, schema: &Schema) -> Result<Expr, QueryError> {
        let b = |e: &Expr| -> Result<Box<Expr>, QueryError> { Ok(Box::new(e.bind(schema)?)) };
        Ok(match self {
            Expr::Col(name) => Expr::ColIdx(schema.index_of(name)?),
            Expr::ColIdx(i) => Expr::ColIdx(*i),
            Expr::Lit(v) => Expr::Lit(*v),
            Expr::Add(l, r) => Expr::Add(b(l)?, b(r)?),
            Expr::Sub(l, r) => Expr::Sub(b(l)?, b(r)?),
            Expr::Mul(l, r) => Expr::Mul(b(l)?, b(r)?),
            Expr::Div(l, r) => Expr::Div(b(l)?, b(r)?),
            Expr::Mod(l, r) => Expr::Mod(b(l)?, b(r)?),
            Expr::Eq(l, r) => Expr::Eq(b(l)?, b(r)?),
            Expr::Ne(l, r) => Expr::Ne(b(l)?, b(r)?),
            Expr::Lt(l, r) => Expr::Lt(b(l)?, b(r)?),
            Expr::Le(l, r) => Expr::Le(b(l)?, b(r)?),
            Expr::Gt(l, r) => Expr::Gt(b(l)?, b(r)?),
            Expr::Ge(l, r) => Expr::Ge(b(l)?, b(r)?),
            Expr::And(l, r) => Expr::And(b(l)?, b(r)?),
            Expr::Or(l, r) => Expr::Or(b(l)?, b(r)?),
            Expr::Not(e) => Expr::Not(b(e)?),
        })
    }

    /// Evaluate a *bound* expression on a row.
    ///
    /// # Errors
    ///
    /// [`QueryError::ColumnOutOfRange`] for stray indices (or unbound
    /// `Col`), [`QueryError::DivideByZero`] for zero divisors.
    pub fn eval(&self, row: &[Value]) -> Result<Value, QueryError> {
        Ok(match self {
            Expr::Col(name) => {
                return Err(QueryError::UnknownColumn(format!("{name} (unbound)")));
            }
            Expr::ColIdx(i) => *row.get(*i).ok_or(QueryError::ColumnOutOfRange {
                index: *i,
                width: row.len(),
            })?,
            Expr::Lit(v) => *v,
            Expr::Add(l, r) => l.eval(row)?.saturating_add(r.eval(row)?),
            Expr::Sub(l, r) => l.eval(row)?.saturating_sub(r.eval(row)?),
            Expr::Mul(l, r) => l.eval(row)?.saturating_mul(r.eval(row)?),
            Expr::Div(l, r) => {
                let d = r.eval(row)?;
                if d == 0 {
                    return Err(QueryError::DivideByZero);
                }
                l.eval(row)? / d
            }
            Expr::Mod(l, r) => {
                let d = r.eval(row)?;
                if d == 0 {
                    return Err(QueryError::DivideByZero);
                }
                l.eval(row)? % d
            }
            Expr::Eq(l, r) => (l.eval(row)? == r.eval(row)?) as Value,
            Expr::Ne(l, r) => (l.eval(row)? != r.eval(row)?) as Value,
            Expr::Lt(l, r) => (l.eval(row)? < r.eval(row)?) as Value,
            Expr::Le(l, r) => (l.eval(row)? <= r.eval(row)?) as Value,
            Expr::Gt(l, r) => (l.eval(row)? > r.eval(row)?) as Value,
            Expr::Ge(l, r) => (l.eval(row)? >= r.eval(row)?) as Value,
            Expr::And(l, r) => ((l.eval(row)? != 0) && (r.eval(row)? != 0)) as Value,
            Expr::Or(l, r) => ((l.eval(row)? != 0) || (r.eval(row)? != 0)) as Value,
            Expr::Not(e) => (e.eval(row)? == 0) as Value,
        })
    }

    /// Evaluate a bound predicate: nonzero ⇒ `true`.
    pub fn matches(&self, row: &[Value]) -> Result<bool, QueryError> {
        Ok(self.eval(row)? != 0)
    }

    /// The set of column *names* this (unbound) expression references.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Col(name) = e {
                out.push(name.as_str());
            }
        });
        out
    }

    /// Constant-fold: replace sub-expressions with no column references by
    /// their value (division by zero is left in place to fail at runtime).
    pub fn fold(&self) -> Expr {
        if self.referenced_columns().is_empty() && !matches!(self, Expr::ColIdx(_)) {
            if let Ok(v) = self.clone().bind_free().and_then(|e| e.eval(&[])) {
                return Expr::Lit(v);
            }
        }
        let f = |e: &Expr| Box::new(e.fold());
        match self {
            Expr::Add(l, r) => Expr::Add(f(l), f(r)),
            Expr::Sub(l, r) => Expr::Sub(f(l), f(r)),
            Expr::Mul(l, r) => Expr::Mul(f(l), f(r)),
            Expr::Div(l, r) => Expr::Div(f(l), f(r)),
            Expr::Mod(l, r) => Expr::Mod(f(l), f(r)),
            Expr::Eq(l, r) => Expr::Eq(f(l), f(r)),
            Expr::Ne(l, r) => Expr::Ne(f(l), f(r)),
            Expr::Lt(l, r) => Expr::Lt(f(l), f(r)),
            Expr::Le(l, r) => Expr::Le(f(l), f(r)),
            Expr::Gt(l, r) => Expr::Gt(f(l), f(r)),
            Expr::Ge(l, r) => Expr::Ge(f(l), f(r)),
            Expr::And(l, r) => Expr::And(f(l), f(r)),
            Expr::Or(l, r) => Expr::Or(f(l), f(r)),
            Expr::Not(e) => Expr::Not(f(e)),
            other => other.clone(),
        }
    }

    /// Bind with no schema — only valid for column-free expressions.
    fn bind_free(self) -> Result<Expr, QueryError> {
        let empty = Schema::new(Vec::<String>::new()).expect("empty schema is valid");
        self.bind(&empty)
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Add(l, r)
            | Expr::Sub(l, r)
            | Expr::Mul(l, r)
            | Expr::Div(l, r)
            | Expr::Mod(l, r)
            | Expr::Eq(l, r)
            | Expr::Ne(l, r)
            | Expr::Lt(l, r)
            | Expr::Le(l, r)
            | Expr::Gt(l, r)
            | Expr::Ge(l, r)
            | Expr::And(l, r)
            | Expr::Or(l, r) => {
                l.visit(f);
                r.visit(f);
            }
            Expr::Not(e) => e.visit(f),
            Expr::Col(_) | Expr::ColIdx(_) | Expr::Lit(_) => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::ColIdx(i) => write!(f, "#{i}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Add(l, r) => write!(f, "({l} + {r})"),
            Expr::Sub(l, r) => write!(f, "({l} - {r})"),
            Expr::Mul(l, r) => write!(f, "({l} * {r})"),
            Expr::Div(l, r) => write!(f, "({l} / {r})"),
            Expr::Mod(l, r) => write!(f, "({l} % {r})"),
            Expr::Eq(l, r) => write!(f, "({l} = {r})"),
            Expr::Ne(l, r) => write!(f, "({l} != {r})"),
            Expr::Lt(l, r) => write!(f, "({l} < {r})"),
            Expr::Le(l, r) => write!(f, "({l} <= {r})"),
            Expr::Gt(l, r) => write!(f, "({l} > {r})"),
            Expr::Ge(l, r) => write!(f, "({l} >= {r})"),
            Expr::And(l, r) => write!(f, "({l} AND {r})"),
            Expr::Or(l, r) => write!(f, "({l} OR {r})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec!["a", "b"]).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = schema();
        let e = col("a").add(lit(10)).mul(lit(2)).bind(&s).unwrap();
        assert_eq!(e.eval(&[5, 0]).unwrap(), 30);
        let p = col("a").lt(col("b")).bind(&s).unwrap();
        assert!(p.matches(&[1, 2]).unwrap());
        assert!(!p.matches(&[2, 2]).unwrap());
    }

    #[test]
    fn saturating_semantics() {
        let s = schema();
        let e = col("a").sub(lit(100)).bind(&s).unwrap();
        assert_eq!(e.eval(&[5, 0]).unwrap(), 0);
        let e = lit(u64::MAX).add(lit(1)).bind(&s).unwrap();
        assert_eq!(e.eval(&[0, 0]).unwrap(), u64::MAX);
    }

    #[test]
    fn division_errors() {
        let s = schema();
        let e = col("a").div(col("b")).bind(&s).unwrap();
        assert_eq!(e.eval(&[10, 3]).unwrap(), 3);
        assert_eq!(e.eval(&[10, 0]).unwrap_err(), QueryError::DivideByZero);
        let m = col("a").rem(lit(0)).bind(&s).unwrap();
        assert_eq!(m.eval(&[1, 1]).unwrap_err(), QueryError::DivideByZero);
    }

    #[test]
    fn boolean_logic() {
        let s = schema();
        let p = col("a")
            .gt(lit(0))
            .and(col("b").eq(lit(7)).not())
            .bind(&s)
            .unwrap();
        assert!(p.matches(&[1, 8]).unwrap());
        assert!(!p.matches(&[1, 7]).unwrap());
        assert!(!p.matches(&[0, 8]).unwrap());
        let q = col("a")
            .eq(lit(1))
            .or(col("b").eq(lit(1)))
            .bind(&s)
            .unwrap();
        assert!(q.matches(&[0, 1]).unwrap());
    }

    #[test]
    fn unknown_column_fails_at_bind() {
        let s = schema();
        assert!(matches!(
            col("zzz").bind(&s),
            Err(QueryError::UnknownColumn(_))
        ));
    }

    #[test]
    fn unbound_eval_fails() {
        assert!(col("a").eval(&[1]).is_err());
    }

    #[test]
    fn referenced_columns_are_collected() {
        let e = col("a").add(col("b")).lt(col("a").mul(lit(2)));
        let mut refs = e.referenced_columns();
        refs.sort_unstable();
        refs.dedup();
        assert_eq!(refs, vec!["a", "b"]);
    }

    #[test]
    fn constant_folding() {
        let e = lit(2).add(lit(3)).mul(col("a"));
        let folded = e.fold();
        assert_eq!(
            folded,
            Expr::Mul(Box::new(Expr::Lit(5)), Box::new(col("a")))
        );
        // Division by zero is preserved, not folded into a panic.
        let bad = lit(1).div(lit(0));
        assert_eq!(bad.fold(), lit(1).div(lit(0)));
    }

    #[test]
    fn display_is_readable() {
        let e = col("a").add(lit(1)).le(col("b"));
        assert_eq!(e.to_string(), "((a + 1) <= b)");
    }
}
