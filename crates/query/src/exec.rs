//! The distributed executor.
//!
//! Executes a [`LogicalPlan`] over the catalog's distributed tables on the
//! topology-aware cost model, one operator at a time:
//!
//! | Operator | Primitive | Rounds |
//! |----------|-----------|--------|
//! | `Filter` / `Project` | local computation (free, §2) | 0 |
//! | `HashJoin` | distribution-aware weighted repartition (the Algorithm-2 idea), uniform repartition (MPC baseline), or broadcast of the small side (the `V_β` idea from Algorithm 1) | 1 |
//! | `CrossJoin` | broadcast the smaller side to the big side's holders | 1 |
//! | `OrderBy` | sample → proportional splitters → range shuffle (weighted TeraSort, §5.2) | 3 |
//! | `Aggregate` | local partials + weighted hash shuffle ([`HashGroupBy`](tamp_core::aggregate::HashGroupBy)) | 1 |
//! | `Limit` | bounded gather to the first compute node | 1 |
//!
//! Every shipped row is flattened to `width` simulator values, so the
//! metered cost is proportional to the data a real system would move. The
//! result records the total cost and a per-operator breakdown.

use std::cell::RefCell;
use std::collections::HashMap;

use tamp_core::hashing::{mix64, WeightedHash};
use tamp_core::sorting::{coin, sample_rate, valid_order};
use tamp_runtime::backend::{CentralizedView, ExecBackend, ExecJob, SimulatorBackend};
use tamp_simulator::cost::Cost;
use tamp_simulator::{Placement, Protocol, Rel, Session, SimError};
use tamp_topology::{NodeId, Tree};

use crate::error::QueryError;
use crate::expr::Expr;
use crate::plan::{AggFunc, LogicalPlan};
use crate::row::{canonicalize, flatten, Row};
use crate::schema::Schema;
use crate::table::Catalog;

/// How equi-joins repartition their inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Pick per join: broadcast when one side is much smaller than the
    /// other (`|small| · |V_C| ≤ |big|`), else weighted repartition.
    #[default]
    Auto,
    /// Repartition both sides by a hash weighted by each node's *current*
    /// data — the distribution-aware choice.
    Weighted,
    /// Repartition both sides uniformly — the topology-agnostic MPC
    /// baseline.
    Uniform,
    /// Replicate the smaller side to every node holding big-side rows.
    BroadcastSmall,
}

/// Execution options.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOptions {
    /// Join strategy.
    pub join: JoinStrategy,
    /// Seed for hashing and sampling.
    pub seed: u64,
}

/// The result of a distributed query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// Output row fragments, indexed by node id.
    pub fragments: Vec<Vec<Row>>,
    /// Total metered cost.
    pub cost: Cost,
    /// `(operator, tuple cost)` in execution order (post-order of the
    /// plan); operators with no communication report `0`.
    pub operator_costs: Vec<(String, f64)>,
    /// Communication rounds used.
    pub rounds: usize,
    /// The compute-node order along which `OrderBy` range-partitions (the
    /// tree's valid left-to-right order); order-preserving row collection
    /// concatenates fragments along it.
    pub node_order: Vec<NodeId>,
}

impl QueryResult {
    /// All output rows. Order-preserving plans (`OrderBy`, `Limit` above
    /// one) concatenate fragments in execution order; anything else is
    /// canonicalized for stable comparisons.
    pub fn rows(&self, order_preserving: bool) -> Vec<Row> {
        let mut rows: Vec<Row> = self
            .node_order
            .iter()
            .flat_map(|&v| self.fragments[v.index()].iter().cloned())
            .collect();
        if !order_preserving {
            canonicalize(&mut rows);
        }
        rows
    }

    /// Total number of output rows.
    pub fn num_rows(&self) -> usize {
        self.fragments.iter().map(Vec::len).sum()
    }
}

/// Execute `plan` over `catalog` with `options` on the default engine
/// (the centralized simulator backend).
pub fn execute(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: ExecOptions,
) -> Result<QueryResult, QueryError> {
    execute_on(catalog, plan, options, &SimulatorBackend)
}

/// Execute `plan` over `catalog` with `options` on an explicit
/// [`ExecBackend`].
///
/// The query executor provides a centralized view (it drives a
/// [`Session`]), so any backend supporting centralized jobs — in
/// particular [`SimulatorBackend`] — can run it; engine selection goes
/// through the one `ExecBackend` API rather than a hand-rolled call path.
pub fn execute_on(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: ExecOptions,
    backend: &dyn ExecBackend,
) -> Result<QueryResult, QueryError> {
    // Validate up front so errors surface before any simulation.
    let schema = plan.schema(catalog)?;
    let job = QueryJob {
        proto: QueryProtocol {
            catalog,
            plan,
            options,
        },
        captured: RefCell::new(None),
    };
    let placement = Placement::empty(catalog.tree());
    let outcome = backend
        .execute(catalog.tree(), &placement, &job)
        .map_err(QueryError::from)?;
    let (fragments, marks, inner) = job.captured.into_inner().ok_or_else(|| {
        QueryError::Backend(format!(
            "backend `{}` produced no query output",
            backend.name()
        ))
    })?;
    if let Some(e) = inner {
        return Err(e);
    }
    // Attribute per-round costs to operators via the recorded marks.
    let mut operator_costs = Vec::with_capacity(marks.len());
    let mut prev = 0usize;
    for (name, upto) in marks {
        let c: f64 = outcome.cost.per_round[prev..upto]
            .iter()
            .map(|r| r.tuple_cost)
            .sum();
        operator_costs.push((name, c));
        prev = upto;
    }
    Ok(QueryResult {
        schema,
        fragments,
        cost: outcome.cost,
        operator_costs,
        rounds: outcome.rounds,
        node_order: valid_order(catalog.tree()),
    })
}

type Fragments = Vec<Vec<Row>>;
type Marks = Vec<(String, usize)>;

/// [`ExecJob`] wrapper: the query protocol plus a cell capturing its
/// output (fragments and operator marks) across the erased backend call.
struct QueryJob<'a> {
    proto: QueryProtocol<'a>,
    captured: RefCell<Option<(Fragments, Marks, Option<QueryError>)>>,
}

impl ExecJob for QueryJob<'_> {
    fn name(&self) -> String {
        "query".into()
    }

    fn centralized(&self) -> Option<Box<dyn CentralizedView + '_>> {
        Some(Box::new(QueryView(self)))
    }
}

struct QueryView<'j, 'a>(&'j QueryJob<'a>);

impl CentralizedView for QueryView<'_, '_> {
    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError> {
        let out = self.0.proto.run(session)?;
        *self.0.captured.borrow_mut() = Some(out);
        Ok(())
    }
}

struct QueryProtocol<'a> {
    catalog: &'a Catalog,
    plan: &'a LogicalPlan,
    options: ExecOptions,
}

impl Protocol for QueryProtocol<'_> {
    type Output = (Fragments, Marks, Option<QueryError>);

    fn name(&self) -> String {
        "query".into()
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let mut marks = Vec::new();
        match exec_node(self.catalog, self.plan, self.options, session, &mut marks) {
            Ok((_, fragments)) => Ok((fragments, marks, None)),
            Err(Error::Sim(e)) => Err(e),
            Err(Error::Query(e)) => Ok((Vec::new(), marks, Some(e))),
        }
    }
}

/// Internal error: simulator failures abort the run; query errors are
/// carried out to the caller.
enum Error {
    Sim(SimError),
    Query(QueryError),
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<QueryError> for Error {
    fn from(e: QueryError) -> Self {
        Error::Query(e)
    }
}

fn mark(marks: &mut Marks, name: impl Into<String>, session: &Session<'_>) {
    marks.push((name.into(), session.rounds_executed()));
}

fn exec_node(
    catalog: &Catalog,
    plan: &LogicalPlan,
    options: ExecOptions,
    session: &mut Session<'_>,
    marks: &mut Marks,
) -> Result<(Schema, Fragments), Error> {
    let tree = session.tree();
    match plan {
        LogicalPlan::Scan { table } => {
            let t = catalog.table(table).map_err(Error::Query)?;
            mark(marks, format!("Scan {table}"), session);
            Ok((t.schema.clone(), t.fragments.clone()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let (schema, mut frags) = exec_node(catalog, input, options, session, marks)?;
            let bound = predicate.bind(&schema).map_err(Error::Query)?;
            for frag in &mut frags {
                let mut kept = Vec::with_capacity(frag.len());
                for row in frag.drain(..) {
                    if bound.matches(&row).map_err(Error::Query)? {
                        kept.push(row);
                    }
                }
                *frag = kept;
            }
            mark(marks, format!("Filter {predicate}"), session);
            Ok((schema, frags))
        }
        LogicalPlan::Project { input, exprs } => {
            let (schema, frags) = exec_node(catalog, input, options, session, marks)?;
            let bound: Vec<Expr> = exprs
                .iter()
                .map(|(_, e)| e.bind(&schema))
                .collect::<Result<_, _>>()
                .map_err(Error::Query)?;
            let mut out = vec![Vec::new(); frags.len()];
            for (i, frag) in frags.iter().enumerate() {
                for row in frag {
                    let projected: Result<Row, QueryError> =
                        bound.iter().map(|e| e.eval(row)).collect();
                    out[i].push(projected.map_err(Error::Query)?);
                }
            }
            let schema = Schema::new(exprs.iter().map(|(n, _)| n.clone()).collect())
                .map_err(Error::Query)?;
            mark(marks, "Project", session);
            Ok((schema, out))
        }
        LogicalPlan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let (ls, lfrags) = exec_node(catalog, left, options, session, marks)?;
            let (rs, rfrags) = exec_node(catalog, right, options, session, marks)?;
            let li = ls.index_of(left_key).map_err(Error::Query)?;
            let ri = rs.index_of(right_key).map_err(Error::Query)?;
            let out_schema = ls.join(&rs, "r_").map_err(Error::Query)?;
            let frags = exec_hash_join(
                tree,
                session,
                options,
                lfrags,
                rfrags,
                li,
                ri,
                ls.width(),
                rs.width(),
            )?;
            mark(marks, format!("HashJoin {left_key}={right_key}"), session);
            Ok((out_schema, frags))
        }
        LogicalPlan::CrossJoin { left, right } => {
            let (ls, lfrags) = exec_node(catalog, left, options, session, marks)?;
            let (rs, rfrags) = exec_node(catalog, right, options, session, marks)?;
            let out_schema = ls.join(&rs, "r_").map_err(Error::Query)?;
            let frags = exec_cross_join(tree, session, lfrags, rfrags, ls.width(), rs.width())?;
            mark(marks, "CrossJoin", session);
            Ok((out_schema, frags))
        }
        LogicalPlan::OrderBy { input, key } => {
            let (schema, frags) = exec_node(catalog, input, options, session, marks)?;
            let ki = schema.index_of(key).map_err(Error::Query)?;
            let frags = exec_order_by(tree, session, options, frags, ki, schema.width())?;
            mark(marks, format!("OrderBy {key}"), session);
            Ok((schema, frags))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            agg,
            measure,
        } => {
            let (schema, frags) = exec_node(catalog, input, options, session, marks)?;
            let gi = schema.index_of(group_by).map_err(Error::Query)?;
            let mi = schema.index_of(measure).map_err(Error::Query)?;
            let frags = exec_aggregate(tree, session, options, frags, gi, mi, *agg)?;
            let out = Schema::new(vec![
                group_by.clone(),
                format!("{}_{}", agg.name(), measure),
            ])
            .map_err(Error::Query)?;
            mark(marks, format!("Aggregate {}", agg.name()), session);
            Ok((out, frags))
        }
        LogicalPlan::Limit { input, n } => {
            let order_preserving = crate::reference::preserves_order(input);
            let (schema, frags) = exec_node(catalog, input, options, session, marks)?;
            let frags = exec_limit(tree, session, frags, *n, schema.width(), order_preserving)?;
            mark(marks, format!("Limit {n}"), session);
            Ok((schema, frags))
        }
        LogicalPlan::Distinct { input } => {
            let (schema, frags) = exec_node(catalog, input, options, session, marks)?;
            let frags = exec_distinct(tree, session, options, frags, schema.width())?;
            mark(marks, "Distinct", session);
            Ok((schema, frags))
        }
        LogicalPlan::UnionAll { left, right } => {
            let (ls, lfrags) = exec_node(catalog, left, options, session, marks)?;
            let (rs, mut rfrags) = exec_node(catalog, right, options, session, marks)?;
            if ls != rs {
                return Err(Error::Query(QueryError::Plan(format!(
                    "UNION ALL schema mismatch: {ls} vs {rs}"
                ))));
            }
            // Bag union is free: fragments concatenate in place.
            let mut frags = lfrags;
            for (f, r) in frags.iter_mut().zip(rfrags.iter_mut()) {
                f.append(r);
            }
            mark(marks, "UnionAll", session);
            Ok((ls, frags))
        }
    }
}

/// Current per-node row counts, as weights for distribution-aware hashing.
fn frag_weights(tree: &Tree, frags: &[Vec<Row>], extra: &[Vec<Row>]) -> Vec<(NodeId, u64)> {
    tree.compute_nodes()
        .iter()
        .map(|&v| (v, (frags[v.index()].len() + extra[v.index()].len()) as u64))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn exec_hash_join(
    tree: &Tree,
    session: &mut Session<'_>,
    options: ExecOptions,
    lfrags: Fragments,
    rfrags: Fragments,
    li: usize,
    ri: usize,
    lw: usize,
    rw: usize,
) -> Result<Fragments, Error> {
    let l_total: usize = lfrags.iter().map(Vec::len).sum();
    let r_total: usize = rfrags.iter().map(Vec::len).sum();
    let k = tree.num_compute();
    let strategy = match options.join {
        JoinStrategy::Auto => {
            // Broadcast pays |small|·|V_C| in the worst case; repartition
            // pays about |small| + |big|. Mirror Algorithm 1's V_β test.
            if l_total.min(r_total).saturating_mul(k) <= l_total.max(r_total) {
                JoinStrategy::BroadcastSmall
            } else {
                JoinStrategy::Weighted
            }
        }
        s => s,
    };

    let (l_new, r_new) = match strategy {
        JoinStrategy::BroadcastSmall => {
            let left_is_small = l_total <= r_total;
            let (small_frags, small_w, big_frags) = if left_is_small {
                (&lfrags, lw, &rfrags)
            } else {
                (&rfrags, rw, &lfrags)
            };
            // Replicate the small side to every node holding big rows.
            let holders: Vec<NodeId> = tree
                .compute_nodes()
                .iter()
                .copied()
                .filter(|&v| !big_frags[v.index()].is_empty())
                .collect();
            let mut small_new: Fragments = vec![Vec::new(); tree.num_nodes()];
            session.round(|round| {
                for &v in tree.compute_nodes() {
                    let local = &small_frags[v.index()];
                    if local.is_empty() || holders.is_empty() {
                        continue;
                    }
                    round.send(v, &holders, Rel::R, &flatten(local, small_w))?;
                }
                Ok(())
            })?;
            for &h in &holders {
                for frag in small_frags.iter() {
                    small_new[h.index()].extend(frag.iter().cloned());
                }
            }
            if left_is_small {
                (small_new, rfrags)
            } else {
                (lfrags, small_new)
            }
        }
        JoinStrategy::Weighted | JoinStrategy::Uniform => {
            let router: Box<dyn Fn(u64) -> NodeId> = match strategy {
                JoinStrategy::Weighted => {
                    let weights = frag_weights(tree, &lfrags, &rfrags);
                    match WeightedHash::new(options.seed, &weights) {
                        Some(h) => Box::new(move |key| h.pick(key)),
                        None => return Ok(vec![Vec::new(); tree.num_nodes()]),
                    }
                }
                _ => {
                    let vc: Vec<NodeId> = tree.compute_nodes().to_vec();
                    let seed = options.seed;
                    Box::new(move |key| vc[(mix64(key ^ seed) % vc.len() as u64) as usize])
                }
            };
            let l_new = shuffle_by_key(tree, session, &lfrags, li, lw, Rel::R, &router)?;
            let r_new = shuffle_by_key(tree, session, &rfrags, ri, rw, Rel::S, &router)?;
            (l_new, r_new)
        }
        JoinStrategy::Auto => unreachable!("resolved above"),
    };

    // Local probe join.
    let mut out: Fragments = vec![Vec::new(); tree.num_nodes()];
    for &v in tree.compute_nodes() {
        let mut by_key: HashMap<u64, Vec<&Row>> = HashMap::new();
        for row in &r_new[v.index()] {
            by_key.entry(row[ri]).or_default().push(row);
        }
        for lrow in &l_new[v.index()] {
            if let Some(matches) = by_key.get(&lrow[li]) {
                for rrow in matches {
                    let mut joined = lrow.clone();
                    joined.extend_from_slice(rrow);
                    out[v.index()].push(joined);
                }
            }
        }
    }
    Ok(out)
}

/// One-round repartition of row fragments by a key router. Both relations
/// of a join shuffle in the *same* round (callers invoke this twice before
/// the round seals — see note below), so this helper runs its own round.
fn shuffle_by_key(
    tree: &Tree,
    session: &mut Session<'_>,
    frags: &Fragments,
    key_idx: usize,
    width: usize,
    rel: Rel,
    router: &dyn Fn(u64) -> NodeId,
) -> Result<Fragments, SimError> {
    let mut new_frags: Fragments = vec![Vec::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in tree.compute_nodes() {
        let mut by_dst: HashMap<NodeId, Vec<Row>> = HashMap::new();
        for row in &frags[v.index()] {
            let dst = router(row[key_idx]);
            if dst == v {
                new_frags[v.index()].push(row.clone());
            } else {
                by_dst.entry(dst).or_default().push(row.clone());
            }
        }
        for (dst, rows) in by_dst {
            outgoing.push((v, dst, flatten(&rows, width)));
            new_frags[dst.index()].extend(rows);
        }
    }
    session.round(|round| {
        for (src, dst, buf) in &outgoing {
            round.send(*src, &[*dst], rel, buf)?;
        }
        Ok(())
    })?;
    Ok(new_frags)
}

fn exec_cross_join(
    tree: &Tree,
    session: &mut Session<'_>,
    lfrags: Fragments,
    rfrags: Fragments,
    lw: usize,
    rw: usize,
) -> Result<Fragments, Error> {
    let l_total: usize = lfrags.iter().map(Vec::len).sum();
    let r_total: usize = rfrags.iter().map(Vec::len).sum();
    let left_is_small = l_total * lw <= r_total * rw;
    let (small_frags, small_w, big_frags) = if left_is_small {
        (&lfrags, lw, &rfrags)
    } else {
        (&rfrags, rw, &lfrags)
    };
    let holders: Vec<NodeId> = tree
        .compute_nodes()
        .iter()
        .copied()
        .filter(|&v| !big_frags[v.index()].is_empty())
        .collect();
    session.round(|round| {
        for &v in tree.compute_nodes() {
            let local = &small_frags[v.index()];
            if local.is_empty() || holders.is_empty() {
                continue;
            }
            round.send(v, &holders, Rel::R, &flatten(local, small_w))?;
        }
        Ok(())
    })?;
    let small_all: Vec<Row> = small_frags.iter().flatten().cloned().collect();
    let mut out: Fragments = vec![Vec::new(); tree.num_nodes()];
    for &h in &holders {
        for big_row in &big_frags[h.index()] {
            for small_row in &small_all {
                let joined = if left_is_small {
                    let mut j = small_row.clone();
                    j.extend_from_slice(big_row);
                    j
                } else {
                    let mut j = big_row.clone();
                    j.extend_from_slice(small_row);
                    j
                };
                out[h.index()].push(joined);
            }
        }
    }
    Ok(out)
}

fn exec_order_by(
    tree: &Tree,
    session: &mut Session<'_>,
    options: ExecOptions,
    frags: Fragments,
    ki: usize,
    width: usize,
) -> Result<Fragments, Error> {
    let order = valid_order(tree);
    let total: usize = frags.iter().map(Vec::len).sum();
    if total == 0 {
        return Ok(frags);
    }
    let coordinator = order[0];
    let rho = sample_rate(order.len(), total as u64);

    // Round 1: sample keys to the coordinator (width-1 messages).
    let mut all_samples: Vec<u64> = Vec::new();
    let mut sampled: Vec<(NodeId, Vec<u64>)> = Vec::new();
    for &v in &order {
        let samples: Vec<u64> = frags[v.index()]
            .iter()
            .map(|r| r[ki])
            .filter(|&x| coin(options.seed, x, rho))
            .collect();
        all_samples.extend_from_slice(&samples);
        sampled.push((v, samples));
    }
    session.round(|round| {
        for (v, samples) in &sampled {
            round.send(*v, &[coordinator], Rel::S, samples)?;
        }
        Ok(())
    })?;

    // Coordinator picks splitters proportional to current node loads.
    all_samples.sort_unstable();
    let weights: Vec<u64> = order
        .iter()
        .map(|&v| frags[v.index()].len() as u64)
        .collect();
    let wsum: u64 = weights.iter().sum();
    let mut splitters: Vec<u64> = Vec::with_capacity(order.len().saturating_sub(1));
    let mut acc = 0u64;
    for &w in weights.iter().take(order.len() - 1) {
        acc += w;
        if all_samples.is_empty() {
            splitters.push(u64::MAX);
            continue;
        }
        let idx = ((acc as u128 * all_samples.len() as u128) / wsum.max(1) as u128) as usize;
        splitters.push(if idx == 0 {
            u64::MIN
        } else {
            all_samples.get(idx - 1).copied().unwrap_or(u64::MAX)
        });
    }

    // Round 2: broadcast splitters.
    session.round(|round| round.send(coordinator, &order, Rel::S, &splitters))?;

    // Round 3: range shuffle by splitter buckets.
    let mut new_frags: Fragments = vec![Vec::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in &order {
        let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); order.len()];
        for row in &frags[v.index()] {
            let b = splitters
                .partition_point(|&s| s <= row[ki])
                .min(order.len() - 1);
            buckets[b].push(row.clone());
        }
        for (j, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            if order[j] == v {
                new_frags[v.index()].extend(bucket);
            } else {
                outgoing.push((v, order[j], flatten(&bucket, width)));
                new_frags[order[j].index()].extend(bucket);
            }
        }
    }
    session.round(|round| {
        for (src, dst, buf) in &outgoing {
            round.send(*src, &[*dst], Rel::R, buf)?;
        }
        Ok(())
    })?;
    for &v in &order {
        new_frags[v.index()].sort_by_key(|r| (r[ki], r.clone()));
    }
    // Re-emit fragments in valid-order position so concatenation by node
    // order yields the global order: store bucket i at order[i], which is
    // already the case.
    Ok(new_frags)
}

fn exec_aggregate(
    tree: &Tree,
    session: &mut Session<'_>,
    options: ExecOptions,
    frags: Fragments,
    gi: usize,
    mi: usize,
    agg: AggFunc,
) -> Result<Fragments, Error> {
    use std::collections::BTreeMap;
    let weights = frag_weights(tree, &frags, &vec![Vec::new(); frags.len()]);
    let Some(hash) = WeightedHash::new(options.seed, &weights) else {
        return Ok(vec![Vec::new(); tree.num_nodes()]);
    };
    let mut owned: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in tree.compute_nodes() {
        let mut partials: BTreeMap<u64, u64> = BTreeMap::new();
        for row in &frags[v.index()] {
            let lifted = agg.lift(row[mi]);
            partials
                .entry(row[gi])
                .and_modify(|p| *p = agg.combine(*p, lifted))
                .or_insert(lifted);
        }
        let mut by_owner: HashMap<NodeId, Vec<Row>> = HashMap::new();
        for (g, m) in partials {
            let owner = hash.pick(g);
            if owner == v {
                owned[v.index()]
                    .entry(g)
                    .and_modify(|p| *p = agg.combine(*p, m))
                    .or_insert(m);
            } else {
                by_owner.entry(owner).or_default().push(vec![g, m]);
            }
        }
        for (owner, rows) in by_owner {
            outgoing.push((v, owner, flatten(&rows, 2)));
            for row in rows {
                owned[owner.index()]
                    .entry(row[0])
                    .and_modify(|p| *p = agg.combine(*p, row[1]))
                    .or_insert(row[1]);
            }
        }
    }
    session.round(|round| {
        for (src, dst, buf) in &outgoing {
            round.send(*src, &[*dst], Rel::S, buf)?;
        }
        Ok(())
    })?;
    Ok(owned
        .into_iter()
        .map(|m| m.into_iter().map(|(g, v)| vec![g, v]).collect())
        .collect())
}

/// Duplicate rows co-locate under a whole-row hash shuffle (weighted by
/// current loads, like the join shuffle), then dedup locally.
fn exec_distinct(
    tree: &Tree,
    session: &mut Session<'_>,
    options: ExecOptions,
    frags: Fragments,
    width: usize,
) -> Result<Fragments, Error> {
    let weights = frag_weights(tree, &frags, &vec![Vec::new(); frags.len()]);
    let Some(hash) = WeightedHash::new(options.seed ^ 0xD157, &weights) else {
        return Ok(vec![Vec::new(); tree.num_nodes()]);
    };
    let row_key = |row: &Row| {
        row.iter()
            .fold(0xCBF29CE484222325u64, |h, &c| mix64(h ^ mix64(c)))
    };
    let mut new_frags: Fragments = vec![Vec::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in tree.compute_nodes() {
        let mut by_dst: HashMap<NodeId, Vec<Row>> = HashMap::new();
        // Dedup locally first: duplicates never need to travel twice.
        let mut local = frags[v.index()].clone();
        canonicalize(&mut local);
        local.dedup();
        for row in local {
            let dst = hash.pick(row_key(&row));
            if dst == v {
                new_frags[v.index()].push(row);
            } else {
                by_dst.entry(dst).or_default().push(row);
            }
        }
        for (dst, rows) in by_dst {
            outgoing.push((v, dst, flatten(&rows, width)));
            new_frags[dst.index()].extend(rows);
        }
    }
    session.round(|round| {
        for (src, dst, buf) in &outgoing {
            round.send(*src, &[*dst], Rel::R, buf)?;
        }
        Ok(())
    })?;
    for frag in &mut new_frags {
        canonicalize(frag);
        frag.dedup();
    }
    Ok(new_frags)
}

fn exec_limit(
    tree: &Tree,
    session: &mut Session<'_>,
    frags: Fragments,
    n: usize,
    width: usize,
    order_preserving: bool,
) -> Result<Fragments, Error> {
    let order = valid_order(tree);
    let target = order[0];
    // Each node contributes at most n rows (its first n in local order).
    let mut contributions: Vec<(NodeId, Vec<Row>)> = Vec::new();
    for &v in &order {
        let mut local = frags[v.index()].clone();
        if !order_preserving {
            canonicalize(&mut local);
        }
        local.truncate(n);
        contributions.push((v, local));
    }
    session.round(|round| {
        for (v, rows) in &contributions {
            if *v != target && !rows.is_empty() {
                round.send(*v, &[target], Rel::R, &flatten(rows, width))?;
            }
        }
        Ok(())
    })?;
    // Concatenate in node order (global order for order-preserving
    // inputs), else canonicalize, then cut.
    let mut all: Vec<Row> = contributions.into_iter().flat_map(|(_, r)| r).collect();
    if !order_preserving {
        canonicalize(&mut all);
    }
    all.truncate(n);
    let mut out: Fragments = vec![Vec::new(); tree.num_nodes()];
    out[target.index()] = all;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::AggFunc;
    use crate::reference;
    use crate::table::DistributedTable;
    use tamp_topology::builders;

    fn catalog(tree: Tree, n: u64) -> Catalog {
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..n).map(|i| vec![i, i % 7, mix64(i) % 1000]).collect();
        let t = DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        );
        c.register(t).unwrap();
        let dims: Vec<Row> = (0..7).map(|g| vec![g, 100 + g]).collect();
        let d = DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            dims,
            c.tree(),
        );
        c.register(d).unwrap();
        c
    }

    fn check_against_reference(c: &Catalog, q: &LogicalPlan, opts: ExecOptions) -> QueryResult {
        let res = execute(c, q, opts).unwrap();
        let got = res.rows(reference::preserves_order(q));
        let want = reference::evaluate(q, c).unwrap();
        assert_eq!(got, want, "plan:\n{q}");
        res
    }

    #[test]
    fn filter_project_are_free() {
        let c = catalog(builders::star(4, 1.0), 50);
        let q = LogicalPlan::scan("facts")
            .filter(col("g").lt(lit(3)))
            .project(vec![("id", col("id")), ("y", col("x").add(lit(1)))]);
        let res = check_against_reference(&c, &q, ExecOptions::default());
        assert_eq!(res.cost.tuple_cost(), 0.0);
    }

    #[test]
    fn hash_join_all_strategies_agree() {
        let c = catalog(
            builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0),
            80,
        );
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        for join in [
            JoinStrategy::Auto,
            JoinStrategy::Weighted,
            JoinStrategy::Uniform,
            JoinStrategy::BroadcastSmall,
        ] {
            check_against_reference(&c, &q, ExecOptions { join, seed: 3 });
        }
    }

    #[test]
    fn cross_join_matches_reference() {
        let c = catalog(builders::star(3, 1.0), 20);
        let q = LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims"));
        let res = check_against_reference(&c, &q, ExecOptions::default());
        assert_eq!(res.num_rows(), 49);
    }

    #[test]
    fn order_by_produces_global_order() {
        let c = catalog(builders::star(4, 1.0), 200);
        let q = LogicalPlan::scan("facts").order_by("x");
        let res = check_against_reference(&c, &q, ExecOptions::default());
        // Fragment concatenation in node order is globally sorted by x.
        let rows = res.rows(true);
        assert!(rows.windows(2).all(|w| w[0][2] <= w[1][2]));
    }

    #[test]
    fn aggregate_matches_reference() {
        let c = catalog(builders::caterpillar(3, 2, 1.0), 120);
        for agg in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let q = LogicalPlan::scan("facts").aggregate("g", agg, "x");
            check_against_reference(&c, &q, ExecOptions::default());
        }
    }

    #[test]
    fn limit_after_order_by() {
        let c = catalog(builders::star(3, 1.0), 90);
        let q = LogicalPlan::scan("facts").order_by("x").limit(10);
        let res = check_against_reference(&c, &q, ExecOptions::default());
        assert_eq!(res.num_rows(), 10);
    }

    #[test]
    fn composite_analytics_query() {
        let c = catalog(
            builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 4.0)], 1.0),
            150,
        );
        let q = LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(100)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("label", AggFunc::Count, "id")
            .order_by("label");
        let res = check_against_reference(&c, &q, ExecOptions::default());
        // Cost attribution covers every operator, in post-order.
        let names: Vec<&str> = res.operator_costs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Scan facts",
                "Filter (x > 100)",
                "Scan dims",
                "HashJoin g=g",
                "Aggregate count",
                "OrderBy label"
            ]
        );
        let total: f64 = res.operator_costs.iter().map(|(_, c)| c).sum();
        assert!((total - res.cost.tuple_cost()).abs() < 1e-9);
    }

    #[test]
    fn weighted_join_beats_uniform_on_skew() {
        // All fact rows on one node behind a thin uplink; dims tiny.
        // Weighted hashing keeps fact rows where they are; uniform hashing
        // ships ~everything across the thin link.
        let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0]);
        let heavy = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..400).map(|i| vec![i, i % 5, i * 2]).collect();
        let t = DistributedTable::single_node(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
            heavy,
        );
        c.register(t).unwrap();
        let dims: Vec<Row> = (0..5).map(|g| vec![g, g + 50]).collect();
        let d = DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            dims,
            c.tree(),
        );
        c.register(d).unwrap();

        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        let weighted = check_against_reference(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Weighted,
                seed: 1,
            },
        );
        let uniform = check_against_reference(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Uniform,
                seed: 1,
            },
        );
        assert!(
            weighted.cost.tuple_cost() * 2.0 < uniform.cost.tuple_cost(),
            "weighted {} vs uniform {}",
            weighted.cost.tuple_cost(),
            uniform.cost.tuple_cost()
        );
    }

    #[test]
    fn errors_surface_cleanly() {
        let c = catalog(builders::star(2, 1.0), 10);
        let q = LogicalPlan::scan("nope");
        assert!(matches!(
            execute(&c, &q, ExecOptions::default()),
            Err(QueryError::UnknownTable(_))
        ));
        let q = LogicalPlan::scan("facts").filter(col("id").div(lit(0)).gt(lit(0)));
        assert_eq!(
            execute(&c, &q, ExecOptions::default()).unwrap_err(),
            QueryError::DivideByZero
        );
    }

    #[test]
    fn backend_selection_goes_through_one_api() {
        let c = catalog(builders::star(3, 1.0), 60);
        let q = LogicalPlan::scan("facts")
            .filter(col("g").lt(lit(5)))
            .aggregate("g", AggFunc::Count, "x");
        // The default engine and an explicitly selected simulator backend
        // are the same path.
        let a = execute(&c, &q, ExecOptions::default()).unwrap();
        let b = execute_on(
            &c,
            &q,
            ExecOptions::default(),
            &tamp_runtime::SimulatorBackend,
        )
        .unwrap();
        assert_eq!(a.rows(false), b.rows(false));
        assert_eq!(a.cost.edge_totals, b.cost.edge_totals);
        assert_eq!(a.rounds, b.rounds);
        // A backend without a centralized view rejects the job with a
        // typed error instead of silently running a different path.
        let err = execute_on(
            &c,
            &q,
            ExecOptions::default(),
            &tamp_runtime::PooledClusterBackend::default(),
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::Backend(_)), "got {err:?}");
    }

    #[test]
    fn empty_inputs_run_clean() {
        let tree = builders::star(3, 1.0);
        let mut c = Catalog::new(tree);
        let t = DistributedTable::round_robin(
            "e",
            Schema::new(vec!["a", "b"]).unwrap(),
            Vec::new(),
            c.tree(),
        );
        c.register(t).unwrap();
        for q in [
            LogicalPlan::scan("e").order_by("a"),
            LogicalPlan::scan("e").aggregate("a", AggFunc::Sum, "b"),
            LogicalPlan::scan("e").join_on(LogicalPlan::scan("e"), "a", "a"),
            LogicalPlan::scan("e").limit(5),
        ] {
            let res = execute(&c, &q, ExecOptions::default()).unwrap();
            assert_eq!(res.num_rows(), 0);
            assert_eq!(res.cost.tuple_cost(), 0.0);
        }
    }
}

#[cfg(test)]
mod distinct_union_tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::reference;
    use crate::table::DistributedTable;
    use tamp_topology::builders;

    fn dup_catalog() -> Catalog {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0);
        let mut c = Catalog::new(tree);
        // Every row appears three times, scattered across nodes.
        let mut rows: Vec<Row> = Vec::new();
        for rep in 0..3u64 {
            rows.extend((0..40).map(|i| vec![i, i % 5]));
            let _ = rep;
        }
        let t = DistributedTable::round_robin(
            "d",
            Schema::new(vec!["k", "g"]).unwrap(),
            rows,
            c.tree(),
        );
        c.register(t).unwrap();
        c
    }

    #[test]
    fn distinct_removes_scattered_duplicates() {
        let c = dup_catalog();
        let q = LogicalPlan::scan("d").distinct();
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        assert_eq!(res.num_rows(), 40);
        assert_eq!(res.rows(false), reference::evaluate(&q, &c).unwrap());
        // Duplicates of a row co-locate, so at most one copy per row moves
        // beyond local dedup: cost well below shipping all 120 rows.
        assert!(res.cost.tuple_cost() > 0.0);
    }

    #[test]
    fn distinct_composes_with_filter_and_union() {
        let c = dup_catalog();
        let q = LogicalPlan::scan("d")
            .filter(col("g").lt(lit(3)))
            .union_all(LogicalPlan::scan("d").filter(col("g").ge(lit(3))))
            .distinct();
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        assert_eq!(res.rows(false), reference::evaluate(&q, &c).unwrap());
        assert_eq!(res.num_rows(), 40);
    }

    #[test]
    fn union_all_is_free_and_keeps_duplicates() {
        let c = dup_catalog();
        let q = LogicalPlan::scan("d").union_all(LogicalPlan::scan("d"));
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        assert_eq!(res.num_rows(), 240);
        assert_eq!(res.cost.tuple_cost(), 0.0);
        assert_eq!(res.rows(false), reference::evaluate(&q, &c).unwrap());
    }

    #[test]
    fn union_all_rejects_schema_mismatch() {
        let mut c = dup_catalog();
        let t = DistributedTable::round_robin(
            "other",
            Schema::new(vec!["a", "b", "c"]).unwrap(),
            vec![vec![1, 2, 3]],
            c.tree(),
        );
        c.register(t).unwrap();
        let q = LogicalPlan::scan("d").union_all(LogicalPlan::scan("other"));
        assert!(matches!(
            execute(&c, &q, ExecOptions::default()),
            Err(QueryError::Plan(_))
        ));
    }

    #[test]
    fn empty_distinct_is_free() {
        let tree = builders::star(2, 1.0);
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::round_robin(
            "e",
            Schema::new(vec!["a"]).unwrap(),
            Vec::new(),
            c.tree(),
        ))
        .unwrap();
        let res = execute(
            &c,
            &LogicalPlan::scan("e").distinct(),
            ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(res.num_rows(), 0);
        assert_eq!(res.cost.tuple_cost(), 0.0);
    }
}
