//! Rows and their wire encoding.
//!
//! A row is a fixed-width vector of `u64` values. The simulator transports
//! single `u64` elements, so a shipped row is *flattened*: a row of width
//! `w` costs `w` transported tuples, which keeps the metered cost
//! proportional to the actual bytes a real system would move.

use tamp_simulator::Value;

/// A row: one `u64` per column.
pub type Row = Vec<Value>;

/// Flatten rows of width `width` into a wire buffer.
pub fn flatten(rows: &[Row], width: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(rows.len() * width);
    for row in rows {
        debug_assert_eq!(row.len(), width);
        out.extend_from_slice(row);
    }
    out
}

/// Rebuild rows of width `width` from a wire buffer.
///
/// # Panics
///
/// Panics if the buffer length is not a multiple of `width` (corrupt
/// framing — a protocol bug, not a data condition).
pub fn unflatten(buf: &[Value], width: usize) -> Vec<Row> {
    if width == 0 {
        assert!(buf.is_empty(), "zero-width rows cannot carry data");
        return Vec::new();
    }
    assert_eq!(
        buf.len() % width,
        0,
        "wire buffer length {} is not a multiple of row width {width}",
        buf.len()
    );
    buf.chunks_exact(width).map(|c| c.to_vec()).collect()
}

/// Sort rows lexicographically — the canonical order used when comparing
/// result sets.
pub fn canonicalize(rows: &mut [Row]) {
    rows.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let rows = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let buf = flatten(&rows, 3);
        assert_eq!(buf, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(unflatten(&buf, 3), rows);
    }

    #[test]
    fn empty() {
        let rows: Vec<Row> = Vec::new();
        assert!(flatten(&rows, 4).is_empty());
        assert!(unflatten(&[], 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn corrupt_framing_panics() {
        unflatten(&[1, 2, 3], 2);
    }

    #[test]
    fn canonical_order() {
        let mut rows = vec![vec![2, 1], vec![1, 9], vec![1, 2]];
        canonicalize(&mut rows);
        assert_eq!(rows, vec![vec![1, 2], vec![1, 9], vec![2, 1]]);
    }
}
