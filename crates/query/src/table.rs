//! Distributed base tables and the catalog.
//!
//! A [`DistributedTable`] holds per-compute-node row fragments — the
//! `{X_0(v)}` partition of §2, at row granularity. Partitioning helpers
//! cover the placements the experiments need: round-robin (uniform),
//! hash-by-column (co-location), skewed (one node holds a share `α`), and
//! single-node (maximally lopsided).

use tamp_core::hashing::mix64;
use tamp_topology::{EdgeId, NodeId, Tree};

use crate::batch::{fragments_to_batches, RecordBatch};
use crate::error::QueryError;
use crate::row::Row;
use crate::schema::Schema;

/// A named table partitioned across compute nodes.
#[derive(Clone, Debug)]
pub struct DistributedTable {
    /// Table name (catalog key).
    pub name: String,
    /// Column schema.
    pub schema: Schema,
    /// Row fragments, indexed by node id (router slots stay empty).
    pub fragments: Vec<Vec<Row>>,
    // Columnar mirror of `fragments` — one whole-fragment record batch
    // per node, (re)built by `Catalog::register` so the batch engine's
    // scans are refcount bumps, never per-row transposes. Empty until
    // registration; `scan_batches` falls back to converting on the fly.
    columnar: Vec<Vec<RecordBatch>>,
}

impl DistributedTable {
    fn empty_fragments(tree: &Tree) -> Vec<Vec<Row>> {
        vec![Vec::new(); tree.num_nodes()]
    }

    /// (Re)build the columnar mirror from the row fragments.
    pub(crate) fn build_columnar(&mut self) {
        self.columnar = fragments_to_batches(&self.fragments, self.schema.width(), usize::MAX);
    }

    /// The table as batch fragments: the prebuilt columnar mirror when
    /// registration has built one (a per-node `Arc` clone), otherwise a
    /// fresh conversion.
    pub(crate) fn scan_batches(&self) -> Vec<Vec<RecordBatch>> {
        if self.columnar.len() == self.fragments.len() {
            self.columnar.clone()
        } else {
            fragments_to_batches(&self.fragments, self.schema.width(), usize::MAX)
        }
    }

    fn validated(name: &str, schema: Schema, rows: &[Row]) -> Result<(String, Schema), QueryError> {
        for row in rows {
            if row.len() != schema.width() {
                return Err(QueryError::WidthMismatch {
                    expected: schema.width(),
                    actual: row.len(),
                });
            }
        }
        Ok((name.to_string(), schema))
    }

    /// Partition `rows` round-robin over the compute nodes.
    pub fn round_robin(name: &str, schema: Schema, rows: Vec<Row>, tree: &Tree) -> Self {
        let (name, schema) =
            Self::validated(name, schema, &rows).expect("rows must match the schema");
        let mut fragments = Self::empty_fragments(tree);
        let vc = tree.compute_nodes();
        for (i, row) in rows.into_iter().enumerate() {
            fragments[vc[i % vc.len()].index()].push(row);
        }
        DistributedTable {
            name,
            schema,
            fragments,
            columnar: Vec::new(),
        }
    }

    /// Partition `rows` by hashing the named column — co-locates equal
    /// keys, the classic pre-partitioned layout.
    pub fn hash_partitioned(
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
        column: &str,
        tree: &Tree,
        seed: u64,
    ) -> Result<Self, QueryError> {
        let idx = schema.index_of(column)?;
        let (name, schema) = Self::validated(name, schema, &rows)?;
        let mut fragments = Self::empty_fragments(tree);
        let vc = tree.compute_nodes();
        for row in rows {
            let h = mix64(row[idx] ^ seed) % vc.len() as u64;
            fragments[vc[h as usize].index()].push(row);
        }
        Ok(DistributedTable {
            name,
            schema,
            fragments,
            columnar: Vec::new(),
        })
    }

    /// Skewed placement: node `heavy` receives a fraction `alpha` of the
    /// rows, the rest round-robin over the other compute nodes.
    pub fn skewed(
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
        tree: &Tree,
        heavy: NodeId,
        alpha: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        let (name, schema) =
            Self::validated(name, schema, &rows).expect("rows must match the schema");
        let mut fragments = Self::empty_fragments(tree);
        let others: Vec<NodeId> = tree
            .compute_nodes()
            .iter()
            .copied()
            .filter(|&v| v != heavy)
            .collect();
        let cut = (rows.len() as f64 * alpha).round() as usize;
        for (i, row) in rows.into_iter().enumerate() {
            if i < cut || others.is_empty() {
                fragments[heavy.index()].push(row);
            } else {
                fragments[others[(i - cut) % others.len()].index()].push(row);
            }
        }
        DistributedTable {
            name,
            schema,
            fragments,
            columnar: Vec::new(),
        }
    }

    /// All rows on a single node.
    pub fn single_node(name: &str, schema: Schema, rows: Vec<Row>, tree: &Tree, v: NodeId) -> Self {
        Self::skewed(name, schema, rows, tree, v, 1.0)
    }

    /// Total number of rows.
    pub fn num_rows(&self) -> usize {
        self.fragments.iter().map(Vec::len).sum()
    }

    /// All rows, concatenated in node-id order.
    pub fn all_rows(&self) -> Vec<Row> {
        self.fragments.iter().flatten().cloned().collect()
    }

    /// Per-node row counts (the `|X_0(v)|` statistics).
    pub fn row_counts(&self) -> Vec<u64> {
        self.fragments.iter().map(|f| f.len() as u64).collect()
    }
}

/// A set of named tables bound to one topology.
#[derive(Clone, Debug)]
pub struct Catalog {
    tree: Tree,
    tables: Vec<DistributedTable>,
}

impl Catalog {
    /// An empty catalog over `tree`.
    pub fn new(tree: Tree) -> Self {
        Catalog {
            tree,
            tables: Vec::new(),
        }
    }

    /// The topology this catalog's tables live on.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Re-weight edge `e` of the bound topology in place, dividing both
    /// directed bandwidths by `factor` — the degraded-link serving
    /// mutation. Table fragments are untouched (rows do not move when a
    /// link slows down); only subsequent plan pricing observes the new
    /// weights. Invalid targets (unknown edge, non-finite or non-positive
    /// factor) surface as [`QueryError::InvalidFaultTarget`].
    pub fn scale_bandwidth(&mut self, e: EdgeId, factor: f64) -> Result<(), QueryError> {
        self.tree
            .scale_bandwidth(e, factor)
            .map_err(|err| QueryError::InvalidFaultTarget(err.to_string()))
    }

    /// Register a table. Replaces any table with the same name.
    pub fn register(&mut self, table: DistributedTable) -> Result<(), QueryError> {
        if table.fragments.len() != self.tree.num_nodes() {
            return Err(QueryError::Plan(format!(
                "table `{}` has {} fragments for a {}-node topology",
                table.name,
                table.fragments.len(),
                self.tree.num_nodes()
            )));
        }
        for (i, frag) in table.fragments.iter().enumerate() {
            if !frag.is_empty() && !self.tree.is_compute(NodeId(i as u32)) {
                return Err(QueryError::Plan(format!(
                    "table `{}` places rows on router node {i}",
                    table.name
                )));
            }
        }
        self.tables.retain(|t| t.name != table.name);
        let mut table = table;
        table.build_columnar();
        self.tables.push(table);
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&DistributedTable, QueryError> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    fn rows(n: u64) -> Vec<Row> {
        (0..n).map(|i| vec![i, i * 10]).collect()
    }

    fn schema() -> Schema {
        Schema::new(vec!["k", "v"]).unwrap()
    }

    #[test]
    fn round_robin_balances() {
        let tree = builders::star(4, 1.0);
        let t = DistributedTable::round_robin("t", schema(), rows(40), &tree);
        assert_eq!(t.num_rows(), 40);
        for &v in tree.compute_nodes() {
            assert_eq!(t.fragments[v.index()].len(), 10);
        }
    }

    #[test]
    fn hash_partition_colocates_keys() {
        let tree = builders::star(3, 1.0);
        let mut dup = rows(20);
        dup.extend(rows(20)); // every key twice
        let t = DistributedTable::hash_partitioned("t", schema(), dup, "k", &tree, 7).unwrap();
        // Equal keys land on equal nodes.
        for frag_a in &t.fragments {
            for row in frag_a {
                let home: Vec<usize> = t
                    .fragments
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.iter().any(|r| r[0] == row[0]))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(home.len(), 1, "key {} on nodes {home:?}", row[0]);
            }
        }
    }

    #[test]
    fn skewed_gives_heavy_its_share() {
        let tree = builders::star(4, 1.0);
        let heavy = tree.compute_nodes()[1];
        let t = DistributedTable::skewed("t", schema(), rows(100), &tree, heavy, 0.7);
        assert_eq!(t.fragments[heavy.index()].len(), 70);
        assert_eq!(t.num_rows(), 100);
    }

    #[test]
    fn single_node_is_lopsided() {
        let tree = builders::star(3, 1.0);
        let v = tree.compute_nodes()[2];
        let t = DistributedTable::single_node("t", schema(), rows(10), &tree, v);
        assert_eq!(t.fragments[v.index()].len(), 10);
    }

    #[test]
    fn catalog_register_and_lookup() {
        let tree = builders::star(2, 1.0);
        let mut c = Catalog::new(tree);
        let t = DistributedTable::round_robin("t", schema(), rows(4), c.tree());
        c.register(t).unwrap();
        assert_eq!(c.table("t").unwrap().num_rows(), 4);
        assert!(c.table("u").is_err());
        assert_eq!(c.table_names(), vec!["t"]);
        // Re-registering replaces.
        let t2 = DistributedTable::round_robin("t", schema(), rows(8), c.tree());
        c.register(t2).unwrap();
        assert_eq!(c.table("t").unwrap().num_rows(), 8);
    }

    #[test]
    fn catalog_rejects_rows_on_routers() {
        let tree = builders::star(2, 1.0); // node 2 is the hub
        let mut c = Catalog::new(tree.clone());
        let mut t = DistributedTable::round_robin("t", schema(), rows(2), &tree);
        t.fragments[2].push(vec![1, 2]);
        assert!(matches!(c.register(t), Err(QueryError::Plan(_))));
    }

    #[test]
    #[should_panic(expected = "rows must match the schema")]
    fn width_mismatch_is_rejected() {
        let tree = builders::star(2, 1.0);
        DistributedTable::round_robin("t", schema(), vec![vec![1, 2, 3]], &tree);
    }
}
