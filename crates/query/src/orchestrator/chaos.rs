//! Seeded chaos schedules: deterministic fault-plan generation for the
//! chaos harness.
//!
//! A chaos run arms a queue of single-fault [`FaultPlan`]s drawn from a
//! seeded RNG over the topology's *valid* targets — worker kills,
//! subtree detaches, link degradations and worker stalls — then serves
//! queries through the orchestrator's recovery loop. Because the
//! injector is a FIFO, one armed plan is consumed per execution attempt:
//! arming several plans re-arms faults *across recovery retries*, which
//! is exactly the adversarial shape the retry bound exists for.
//!
//! Two properties make the harness assertable:
//!
//! - **Determinism per seed.** [`schedule`] is a pure function of
//!   `(tree, spec)`; the same seed generates the same fault sequence, so
//!   a failing chaos case replays exactly.
//! - **Bit-identical recovery.** Every generated fault is either
//!   recoverable (kill/detach/degrade abort the superstep; recovery
//!   replays the pinned deterministic schedule) or harmless (a stall
//!   without a watchdog), so a served query's rows and `edge_totals`
//!   must equal the fault-free run's — the proptests and the `x-chaos`
//!   release gate assert this across many seeds.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tamp_runtime::FaultPlan;
use tamp_topology::{EdgeId, Tree};

/// Shape of one seeded chaos schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed of the deterministic fault sequence.
    pub seed: u64,
    /// Fault plans to generate (the injector consumes one per execution
    /// attempt, so this is also the number of attempts the schedule can
    /// disturb).
    pub plans: usize,
    /// Fault trigger supersteps are drawn from `0..max_round` (floored
    /// at 1).
    pub max_round: usize,
}

impl ChaosSpec {
    /// A 3-plan schedule over supersteps `0..3` for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosSpec {
            seed,
            plans: 3,
            max_round: 3,
        }
    }

    /// Builder-style: set the number of generated plans.
    pub fn with_plans(mut self, plans: usize) -> Self {
        self.plans = plans;
        self
    }

    /// Builder-style: set the exclusive upper bound on trigger
    /// supersteps.
    pub fn with_max_round(mut self, max_round: usize) -> Self {
        self.max_round = max_round;
        self
    }
}

/// Generate the deterministic fault schedule for `spec` over `tree`:
/// `spec.plans` single-fault plans, each drawn uniformly over the valid
/// targets. Every returned plan passes
/// [`FaultPlan::validate`] for `tree` by construction.
pub fn schedule(tree: &Tree, spec: &ChaosSpec) -> Vec<FaultPlan> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.plans)
        .map(|_| one_plan(tree, &mut rng, spec.max_round.max(1)))
        .collect()
}

fn one_plan(tree: &Tree, rng: &mut StdRng, max_round: usize) -> FaultPlan {
    let computes = tree.compute_nodes();
    let victim = computes[rng.random_range(0..computes.len())];
    let round = rng.random_range(0..max_round);
    match rng.random_range(0..4u32) {
        0 => FaultPlan::new().kill_worker(victim, round),
        // Detaching a compute leaf's (singleton) subtree is always a
        // valid detach and never severs the whole cluster.
        1 => FaultPlan::new().detach_subtree(victim, round),
        2 => {
            let edge = EdgeId(rng.random_range(0..tree.num_edges() as u32));
            let factor = [2.0, 4.0, 8.0][rng.random_range(0..3usize)];
            FaultPlan::new().degrade_edge(edge, round, factor)
        }
        _ => {
            let delay = Duration::from_micros(rng.random_range(50..500u64));
            FaultPlan::new().stall_worker(victim, round, delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    #[test]
    fn schedules_are_deterministic_per_seed_and_always_valid() {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0);
        for seed in 0..32 {
            let spec = ChaosSpec::new(seed).with_plans(5).with_max_round(4);
            let a = schedule(&tree, &spec);
            let b = schedule(&tree, &spec);
            assert_eq!(a, b, "seed {seed} must replay");
            assert_eq!(a.len(), 5);
            for plan in &a {
                plan.validate(&tree)
                    .unwrap_or_else(|e| panic!("seed {seed} generated invalid plan: {e}"));
            }
        }
        // Different seeds diverge (collision over 32 seeds would mean a
        // broken generator, not bad luck).
        let all: Vec<_> = (0..32)
            .map(|seed| schedule(&tree, &ChaosSpec::new(seed).with_plans(5)))
            .collect();
        assert!(all.windows(2).any(|w| w[0] != w[1]));
    }
}
