//! The orchestration layer: elastic autoscaling, weighted-fair
//! multi-tenant admission, and fault injection with deterministic replay
//! recovery, in one control plane over [`QueryService`].
//!
//! ```text
//!        submit(tenant, plan)
//!              │
//!              ▼
//!   ┌─────────────────────┐  reject: UnknownTenant / TenantQueueFull
//!   │  WeightedAdmission   │  grant order: strict priority, then
//!   │  (DRR over tenants)  │  deficit-weighted round-robin
//!   └─────────┬───────────┘
//!             │ grant (ticket, queue time)
//!             ▼
//!   ┌─────────────────────┐   observe {queue depth, inflight, width,
//!   │  scaling tick        │──▶ rolling latency} → decide(spec, obs)
//!   │  (pure decide())     │   → resize ElasticPool, log ScalingEvent
//!   └─────────┬───────────┘
//!             │
//!             ▼
//!   ┌─────────────────────┐   FaultInjected error?
//!   │  QueryService        │──▶ replay the deterministic schedule on
//!   │  (plan cache + exec) │   the now-healthy crew, log RecoveryEvent
//!   └─────────┬───────────┘   (rows + edge_totals bit-identical)
//!             │
//!             ▼
//!        ServedQuery + per-tenant stats
//! ```
//!
//! The three guarantees, and where they come from:
//!
//! - **No starvation.** Admission is deficit-weighted round-robin within
//!   strict priority classes ([`crate::admission`]): every backlogged
//!   tenant is visited once per DRR rotation, so a weight-`w` tenant in
//!   a system of total weight `W` waits at most ~`W/w` foreign grants
//!   per queued position — a structural bound, asserted by tests, that
//!   no adversarial burst can break.
//! - **Deterministic scaling log.** Every resize records the full
//!   [`ScalingObservation`] it was decided on, and
//!   [`decide`] is pure — replaying the log reproduces every decision
//!   (see [`scaling`]).
//! - **Bit-identical recovery.** Queries compile to deterministic
//!   exchange schedules, so after an injected fault
//!   ([`FaultPlan`] → typed
//!   [`QueryError::FaultInjected`]) the orchestrator simply re-executes
//!   the schedule on the (auto-disarmed, hence healthy) crew: rows *and*
//!   metered `edge_totals` equal the fault-free run by construction.
//!
//! # Serving three tenants
//!
//! ```
//! use tamp_query::prelude::*;
//! use tamp_topology::builders;
//!
//! let mut ctx = QueryContext::new(builders::star(4, 1.0)).with_seed(7);
//! let rows: Vec<Vec<u64>> = (0..90).map(|i| vec![i, i % 4, i * 3]).collect();
//! ctx.register(DistributedTable::round_robin(
//!     "t",
//!     Schema::new(vec!["id", "g", "x"]).unwrap(),
//!     rows,
//!     ctx.tree(),
//! ))
//! .unwrap();
//!
//! let orch = Orchestrator::builder(ctx)
//!     .tenant(TenantSpec::new("dashboards", 4, 16).with_priority(Priority::Interactive))
//!     .tenant(TenantSpec::new("analysts", 2, 16))
//!     .tenant(TenantSpec::new("batch", 1, 16))
//!     .scaling(ScalingSpec::new(1, 4))
//!     .build()
//!     .unwrap();
//!
//! let q = LogicalPlan::scan("t").aggregate("g", AggFunc::Sum, "x");
//! let served = orch.serve_as("analysts", &q).unwrap();
//! assert!(!served.result.rows(false).is_empty());
//! let stats = orch.stats();
//! assert_eq!(stats.len(), 3);
//! assert_eq!(stats.iter().find(|t| t.tenant == "analysts").unwrap().served, 1);
//! ```

pub mod chaos;
pub mod scaling;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use tamp_runtime::{
    CheckpointSpec, CheckpointStats, CheckpointStore, ElasticPool, FaultEvent, FaultInjector,
    FaultKind, FaultPlan, PooledClusterBackend, RuntimeError,
};
use tamp_topology::{EdgeId, Tree};

use crate::admission::{Priority, TenantSpec, WeightedAdmission};
use crate::context::QueryContext;
use crate::error::QueryError;
use crate::iterative::{IterativeJob, IterativeOutcome};
use crate::plan::LogicalPlan;
use crate::service::{QueryService, ServedQuery, ServiceStats};

pub use scaling::{decide, ScaleDecision, ScalingEvent, ScalingObservation, ScalingSpec};

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Recent queue waits feeding the rolling-latency scaling signal.
const ROLLING_WINDOW: usize = 32;

/// Backoff between recovery attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backoff {
    /// Retry immediately (the default — replay on the healthy crew is
    /// the recovery, there is usually nothing to wait out).
    #[default]
    None,
    /// A fixed delay before every retry.
    Fixed(Duration),
    /// `base · 2^(attempt-1)`: doubling delays for flaky environments
    /// where back-to-back retries would hit the same transient fault.
    Exponential {
        /// Delay before the first retry.
        base: Duration,
    },
}

impl Backoff {
    /// Delay before retry number `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        match *self {
            Backoff::None => Duration::ZERO,
            Backoff::Fixed(d) => d,
            Backoff::Exponential { base } => base.saturating_mul(
                1u32.checked_shl(attempt.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            ),
        }
    }
}

/// Bound and pacing for replay recovery — replaces the old hardcoded
/// four-recovery loop. `max_attempts` counts *total executions* (initial
/// run included), so an adversarial re-arming loop terminates with a
/// typed [`QueryError::RecoveryExhausted`] after exactly `max_attempts`
/// failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executions allowed per query (floored at 1).
    pub max_attempts: u32,
    /// Delay policy between attempts.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // The historical behavior: one initial run plus four recoveries.
        RetryPolicy {
            max_attempts: 5,
            backoff: Backoff::None,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total executions (floored at 1),
    /// with no backoff.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff: Backoff::None,
        }
    }

    /// Builder-style: set the backoff between attempts.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }
}

/// One recoverable fault hitting a served query, in arrival order. The
/// replay bookkeeping fields (`resumed_from`, `replayed_supersteps`,
/// `skipped_supersteps`) describe the *following* attempt and are filled
/// in when it succeeds; they stay empty/zero if that attempt also
/// faulted (the next fault gets its own event) or recovery was
/// exhausted.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// The tenant whose query was hit.
    pub tenant: String,
    /// The query's admission ticket.
    pub ticket: u64,
    /// The fault that killed the attempt (kind + attributed node +
    /// superstep).
    pub fault: FaultEvent,
    /// 1-based execution attempt that the fault killed.
    pub attempt: u32,
    /// Checkpoint superstep the successful replay resumed from (`None`
    /// for a from-scratch replay).
    pub resumed_from: Option<usize>,
    /// Supersteps the successful replay actually executed
    /// (`total - skipped`); with checkpointing enabled this is strictly
    /// fewer than a whole-query replay whenever a snapshot existed.
    pub replayed_supersteps: Option<usize>,
    /// Supersteps the successful replay skipped thanks to the checkpoint
    /// (= `resumed_from`, or 0 without one).
    pub skipped_supersteps: usize,
}

/// A served iterative fixpoint job: the [`IterativeOutcome`] (values,
/// per-iteration cost table, metered ledger) plus the same serving
/// telemetry a relational query gets. Iterative jobs are long
/// multi-round batch work — declare their tenant with
/// [`Priority::Batch`] so the weighted-fair admission keeps interactive
/// queries ahead of them.
#[derive(Clone, Debug)]
pub struct ServedIterative {
    /// The fixpoint result — bit-identical to a standalone
    /// `PreparedIterative::run_on` of the same job.
    pub outcome: IterativeOutcome,
    /// Queue/plan/exec timings (`plan` covers the local fixpoint
    /// preparation; iterative plans are never cached).
    pub stats: ServiceStats,
}

/// Per-tenant serving report returned by [`Orchestrator::stats`].
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Configured DRR weight.
    pub weight: u32,
    /// Configured priority class.
    pub priority: Priority,
    /// Queries served to completion.
    pub served: u64,
    /// Submits rejected at the tenant's quota.
    pub rejected: u64,
    /// Queries that needed replay recovery after an injected fault.
    pub recovered: u64,
    /// Straggler watchdog timeouts hit by this tenant's queries (each
    /// also counts toward `recovered` when the replay succeeds).
    pub timeouts: u64,
    /// Supersteps this tenant's replays skipped thanks to checkpoint
    /// resume (0 without checkpointing).
    pub supersteps_skipped: u64,
    /// Served queries whose plan came from the cache.
    pub cache_hits: u64,
    /// Iterative jobs rejected because their fixpoint failed to converge
    /// within `max_iters` ([`QueryError::IterationLimit`]). These are
    /// deterministic non-convergences, not faults: they are never
    /// retried.
    pub iteration_limits: u64,
    /// Queries currently queued.
    pub queued_now: usize,
    /// Queries currently executing.
    pub running_now: usize,
    /// Median queue wait across served queries.
    pub queue_p50: Duration,
    /// 99th-percentile queue wait across served queries.
    pub queue_p99: Duration,
    /// Total time spent planning (≈0 on cache hits).
    pub plan_total: Duration,
    /// Total time spent executing.
    pub exec_total: Duration,
    /// Largest number of foreign grants any of this tenant's queries
    /// waited through — the structural no-starvation bound.
    pub max_waited_grants: u64,
}

/// Per-tenant timing accumulators (wall-clock side of [`TenantStats`]).
#[derive(Default)]
struct TenantTimings {
    queue_us: Vec<u64>,
    plan: Duration,
    exec: Duration,
    served: u64,
    recovered: u64,
    timeouts: u64,
    supersteps_skipped: u64,
    cache_hits: u64,
    iteration_limits: u64,
    max_waited_grants: u64,
}

struct ScalerState {
    tick: u64,
    ticks_since_change: u64,
    rolling: VecDeque<u64>,
    events: Vec<ScalingEvent>,
}

/// The orchestration control plane. Build one with
/// [`Orchestrator::builder`]; see the [module docs](self) for the
/// control-flow diagram and guarantees.
pub struct Orchestrator {
    service: QueryService,
    admission: WeightedAdmission,
    pool: Arc<ElasticPool>,
    injector: Arc<FaultInjector>,
    checkpoints: Option<Arc<CheckpointStore>>,
    retry: RetryPolicy,
    scaling: Option<ScalingSpec>,
    scaler: Mutex<ScalerState>,
    /// Straggler timeouts since the last scaling tick — drained into
    /// `ScalingObservation::recent_timeouts`.
    pending_timeouts: AtomicUsize,
    timings: Mutex<Vec<TenantTimings>>,
    specs: Vec<TenantSpec>,
    recoveries: Mutex<Vec<RecoveryEvent>>,
}

impl std::fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("tenants", &self.specs.len())
            .field("capacity", &self.admission.capacity())
            .field("pool_width", &self.pool.width())
            .field("scaling", &self.scaling)
            .finish()
    }
}

/// Builder for [`Orchestrator`] — declare tenants, the scaling policy
/// and the admission capacity, then [`build`](Self::build).
pub struct OrchestratorBuilder {
    ctx: QueryContext,
    tenants: Vec<TenantSpec>,
    scaling: Option<ScalingSpec>,
    capacity: Option<usize>,
    retry: RetryPolicy,
    checkpoint_every: Option<usize>,
    superstep_deadline: Option<Duration>,
}

impl OrchestratorBuilder {
    /// Declare one tenant (builder-style).
    pub fn tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Declare many tenants at once.
    pub fn tenants(mut self, specs: impl IntoIterator<Item = TenantSpec>) -> Self {
        self.tenants.extend(specs);
        self
    }

    /// Attach an autoscaling policy for the elastic crew. Without one
    /// the crew stays at its initial width.
    pub fn scaling(mut self, spec: ScalingSpec) -> Self {
        self.scaling = Some(spec);
        self
    }

    /// Global concurrent-queries bound across all tenants (defaults to
    /// the initial crew width, floored at 2).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Replay-recovery bound and backoff (default:
    /// [`RetryPolicy::default`], five total executions, no backoff).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Enable superstep checkpointing: snapshot every `every`-th
    /// superstep boundary so replay recovery resumes from the last
    /// completed checkpoint instead of superstep 0 (floored at 1; see
    /// [`tamp_runtime::checkpoint`]).
    pub fn checkpoints(mut self, every: usize) -> Self {
        self.checkpoint_every = Some(every);
        self
    }

    /// Arm the superstep watchdog: a superstep exceeding `deadline`
    /// aborts with a recoverable
    /// [`QueryError::SuperstepTimeout`] naming the straggler, feeding
    /// both the recovery loop and the scaling observation
    /// (`recent_timeouts`).
    pub fn superstep_deadline(mut self, deadline: Duration) -> Self {
        self.superstep_deadline = Some(deadline);
        self
    }

    /// Validate every spec and assemble the orchestrator: an
    /// [`ElasticPool`] crew, a [`FaultInjector`], a
    /// [`PooledClusterBackend`] wired to both, and a [`QueryService`]
    /// over that backend.
    pub fn build(self) -> Result<Orchestrator, QueryError> {
        if self.tenants.is_empty() {
            return Err(QueryError::InvalidTenantSpec(
                "an orchestrator needs at least one tenant".into(),
            ));
        }
        for (i, spec) in self.tenants.iter().enumerate() {
            spec.validate()?;
            if self.tenants[..i].iter().any(|s| s.name == spec.name) {
                return Err(QueryError::InvalidTenantSpec(format!(
                    "duplicate tenant name `{}`",
                    spec.name
                )));
            }
        }
        if let Some(scaling) = &self.scaling {
            scaling.validate()?;
        }
        if self.capacity == Some(0) {
            return Err(QueryError::InvalidAdmissionLimit);
        }
        let width = self.scaling.as_ref().map(|s| s.min).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        });
        let capacity = self.capacity.unwrap_or_else(|| width.max(2));
        let pool = Arc::new(ElasticPool::new(width));
        let injector = Arc::new(FaultInjector::new());
        let mut backend = PooledClusterBackend::with_elastic_pool(Arc::clone(&pool))
            .with_fault_injector(Arc::clone(&injector));
        backend.options.superstep_deadline = self.superstep_deadline;
        let checkpoints = self.checkpoint_every.map(|every| {
            (
                Arc::new(CheckpointStore::new()),
                CheckpointSpec::every(every),
            )
        });
        if let Some((store, spec)) = &checkpoints {
            backend = backend.with_checkpoints(Arc::clone(store), *spec);
        }
        let n_tenants = self.tenants.len();
        Ok(Orchestrator {
            service: QueryService::new(self.ctx, Arc::new(backend)),
            admission: WeightedAdmission::new(capacity, self.tenants.clone()),
            pool,
            injector,
            checkpoints: checkpoints.map(|(store, _)| store),
            retry: RetryPolicy {
                max_attempts: self.retry.max_attempts.max(1),
                ..self.retry
            },
            scaling: self.scaling,
            pending_timeouts: AtomicUsize::new(0),
            scaler: Mutex::new(ScalerState {
                tick: 0,
                ticks_since_change: 0,
                rolling: VecDeque::with_capacity(ROLLING_WINDOW),
                events: Vec::new(),
            }),
            timings: Mutex::new((0..n_tenants).map(|_| TenantTimings::default()).collect()),
            specs: self.tenants,
            recoveries: Mutex::new(Vec::new()),
        })
    }
}

/// Releases the tenant's admission slot even if the query errors or the
/// serving thread panics.
struct SlotGuard<'a> {
    admission: &'a WeightedAdmission,
    tenant: &'a str,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(self.tenant);
    }
}

impl Orchestrator {
    /// Start declaring an orchestrator over `ctx` (see
    /// [`OrchestratorBuilder`]).
    pub fn builder(ctx: QueryContext) -> OrchestratorBuilder {
        OrchestratorBuilder {
            ctx,
            tenants: Vec::new(),
            scaling: None,
            capacity: None,
            retry: RetryPolicy::default(),
            checkpoint_every: None,
            superstep_deadline: None,
        }
    }

    /// Serve one query on behalf of `tenant`: weighted-fair admission →
    /// scaling tick → plan (cached) + execute, with replay recovery if
    /// an injected fault kills the run.
    ///
    /// Results are bit-identical (rows **and** metered `edge_totals`) to
    /// a fault-free single-session execution of the same plan.
    pub fn serve_as(&self, tenant: &str, plan: &LogicalPlan) -> Result<ServedQuery, QueryError> {
        let tenant_ix = self
            .specs
            .iter()
            .position(|s| s.name == tenant)
            .ok_or_else(|| QueryError::UnknownTenant(tenant.to_string()))?;
        let grant = self.admission.acquire(tenant)?;
        let _slot = SlotGuard {
            admission: &self.admission,
            tenant,
        };
        {
            // The structural fairness metric: grants to other queries
            // between this one's enqueue and its own grant.
            let mut timings = lock_ok(&self.timings);
            let t = &mut timings[tenant_ix];
            t.max_waited_grants = t.max_waited_grants.max(grant.waited_grants);
        }
        self.scale_tick(grant.queued);

        // Pin the plan AND the catalog snapshot once: every recovery
        // attempt replays the exact same deterministic schedule, so
        // recovered results are bit-identical even if a concurrent
        // `register`/`degrade_link` swaps the serving generation
        // mid-recovery.
        let pinned = match self.service.prepare_pinned(plan) {
            Ok(p) => p,
            Err(e) => {
                // A plan armed for this query would otherwise leak into
                // the next, unrelated execution: drop it with the query.
                self.injector.clear_armed();
                return Err(e);
            }
        };
        let mut attempt = 1u32;
        let outcome = loop {
            match self
                .service
                .execute_pinned(&pinned, grant.ticket, grant.queued)
            {
                Err(e) if e.is_recoverable() => {
                    if matches!(e, QueryError::SuperstepTimeout { .. }) {
                        self.pending_timeouts.fetch_add(1, Ordering::Relaxed);
                        lock_ok(&self.timings)[tenant_ix].timeouts += 1;
                    }
                    lock_ok(&self.recoveries).push(RecoveryEvent {
                        tenant: tenant.to_string(),
                        ticket: grant.ticket,
                        fault: fault_event_of(&e, self.service.context().tree()),
                        attempt,
                        resumed_from: None,
                        replayed_supersteps: None,
                        skipped_supersteps: 0,
                    });
                    if attempt >= self.retry.max_attempts {
                        // Total loss (or an adversarial re-arming loop):
                        // give up with a typed error after exactly
                        // `max_attempts` executions, dropping any
                        // still-armed chaos plans with the query.
                        self.injector.clear_armed();
                        break Err(QueryError::RecoveryExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    let delay = self.retry.backoff.delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    // The faulted run consumed its armed plan (FIFO
                    // one-shot), so this replay sees the next armed plan
                    // if the chaos schedule re-armed, or a healthy crew.
                    attempt += 1;
                    continue;
                }
                Err(e) => {
                    // Non-recoverable: drop any plan armed for this query
                    // instead of leaking it into the next execution.
                    self.injector.clear_armed();
                    break Err(e);
                }
                Ok(served) => break Ok(served),
            }
        };
        if let Ok(served) = &outcome {
            if attempt > 1 {
                // Patch the replay bookkeeping onto this query's last
                // fault event, now that the successful attempt is known.
                let resumed = served.result.resumed_from;
                let skipped = resumed.unwrap_or(0);
                let mut recs = lock_ok(&self.recoveries);
                if let Some(last) = recs
                    .iter_mut()
                    .rev()
                    .find(|r| r.ticket == grant.ticket && r.tenant == tenant)
                {
                    last.resumed_from = resumed;
                    last.replayed_supersteps = Some(served.result.supersteps - skipped);
                    last.skipped_supersteps = skipped;
                }
                lock_ok(&self.timings)[tenant_ix].supersteps_skipped += skipped as u64;
            }
            let mut timings = lock_ok(&self.timings);
            let t = &mut timings[tenant_ix];
            t.served += 1;
            t.recovered += u64::from(attempt > 1);
            t.cache_hits += u64::from(served.stats.cache_hit);
            t.queue_us.push(served.stats.queued.as_micros() as u64);
            t.plan += served.stats.plan;
            t.exec += served.stats.exec;
        }
        outcome
    }

    /// Serve one iterative fixpoint job (see [`crate::iterative`]) on
    /// behalf of `tenant`, through the same control plane as relational
    /// queries: weighted-fair admission → scaling tick → local fixpoint
    /// preparation → schedule replay on the serving backend, with replay
    /// recovery if an injected fault kills the run. With checkpointing
    /// enabled (`OrchestratorBuilder::checkpoints` at the job's
    /// `rounds_per_iteration`), a killed fixpoint resumes from the last
    /// iteration barrier instead of round 0.
    ///
    /// Iterative jobs are multi-round batch work: admit them under a
    /// [`Priority::Batch`] tenant so interactive queries keep jumping
    /// the queue. A fixpoint that does not converge surfaces as
    /// [`QueryError::IterationLimit`] — counted in the tenant's
    /// [`TenantStats::iteration_limits`], never retried (replay would
    /// re-diverge identically).
    pub fn serve_iterative(
        &self,
        tenant: &str,
        job: &IterativeJob,
    ) -> Result<ServedIterative, QueryError> {
        let tenant_ix = self
            .specs
            .iter()
            .position(|s| s.name == tenant)
            .ok_or_else(|| QueryError::UnknownTenant(tenant.to_string()))?;
        let grant = self.admission.acquire(tenant)?;
        let _slot = SlotGuard {
            admission: &self.admission,
            tenant,
        };
        {
            let mut timings = lock_ok(&self.timings);
            let t = &mut timings[tenant_ix];
            t.max_waited_grants = t.max_waited_grants.max(grant.waited_grants);
        }
        self.scale_tick(grant.queued);

        // Prepare once: the whole fixpoint is computed locally and
        // deterministically, so every recovery attempt replays the exact
        // same schedule (the same pinning argument as `serve_as`).
        let plan_start = Instant::now();
        let prepared = match job.prepare(self.service.context().tree()) {
            Ok(p) => p,
            Err(e) => {
                if matches!(e, QueryError::IterationLimit { .. }) {
                    lock_ok(&self.timings)[tenant_ix].iteration_limits += 1;
                }
                // Drop any chaos plan armed for this job with the job.
                self.injector.clear_armed();
                return Err(e);
            }
        };
        let plan_time = plan_start.elapsed();

        let backend = self.service.backend();
        let mut attempt = 1u32;
        let exec_start = Instant::now();
        let outcome = loop {
            match prepared.run_on(self.service.context().tree(), backend) {
                Err(e) if e.is_recoverable() => {
                    if matches!(e, QueryError::SuperstepTimeout { .. }) {
                        self.pending_timeouts.fetch_add(1, Ordering::Relaxed);
                        lock_ok(&self.timings)[tenant_ix].timeouts += 1;
                    }
                    lock_ok(&self.recoveries).push(RecoveryEvent {
                        tenant: tenant.to_string(),
                        ticket: grant.ticket,
                        fault: fault_event_of(&e, self.service.context().tree()),
                        attempt,
                        resumed_from: None,
                        replayed_supersteps: None,
                        skipped_supersteps: 0,
                    });
                    if attempt >= self.retry.max_attempts {
                        self.injector.clear_armed();
                        break Err(QueryError::RecoveryExhausted {
                            attempts: attempt,
                            last: Box::new(e),
                        });
                    }
                    let delay = self.retry.backoff.delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                    continue;
                }
                Err(e) => {
                    self.injector.clear_armed();
                    break Err(e);
                }
                Ok(outcome) => break Ok(outcome),
            }
        };
        let exec_time = exec_start.elapsed();

        match outcome {
            Ok(outcome) => {
                if attempt > 1 {
                    let resumed = outcome.resumed_from;
                    let skipped = resumed.unwrap_or(0);
                    let mut recs = lock_ok(&self.recoveries);
                    if let Some(last) = recs
                        .iter_mut()
                        .rev()
                        .find(|r| r.ticket == grant.ticket && r.tenant == tenant)
                    {
                        last.resumed_from = resumed;
                        last.replayed_supersteps = Some(outcome.supersteps - skipped);
                        last.skipped_supersteps = skipped;
                    }
                    lock_ok(&self.timings)[tenant_ix].supersteps_skipped += skipped as u64;
                }
                let mut timings = lock_ok(&self.timings);
                let t = &mut timings[tenant_ix];
                t.served += 1;
                t.recovered += u64::from(attempt > 1);
                t.queue_us.push(grant.queued.as_micros() as u64);
                t.plan += plan_time;
                t.exec += exec_time;
                Ok(ServedIterative {
                    outcome,
                    stats: ServiceStats {
                        ticket: grant.ticket,
                        queued: grant.queued,
                        plan: plan_time,
                        exec: exec_time,
                        cache_hit: false,
                    },
                })
            }
            Err(e) => Err(e),
        }
    }

    /// One pass of the autoscaling control loop (runs between a query's
    /// admission and its execution — never on the execution hot path of
    /// an already-running query).
    fn scale_tick(&self, last_queued: Duration) {
        let Some(spec) = &self.scaling else { return };
        let mut st = lock_ok(&self.scaler);
        st.tick += 1;
        if st.rolling.len() == ROLLING_WINDOW {
            st.rolling.pop_front();
        }
        st.rolling.push_back(last_queued.as_micros() as u64);
        let rolling_mean = st.rolling.iter().sum::<u64>() / st.rolling.len().max(1) as u64;
        let observation = ScalingObservation {
            tick: st.tick,
            queue_depth: self.admission.queue_depth(),
            inflight: self.admission.inflight(),
            width: self.pool.width(),
            ticks_since_change: st.ticks_since_change,
            rolling_queue_latency: Duration::from_micros(rolling_mean),
            recent_timeouts: self.pending_timeouts.swap(0, Ordering::Relaxed),
        };
        let (decision, reason) = scaling::decide(spec, &observation);
        match decision {
            ScaleDecision::Hold => {
                st.ticks_since_change = st.ticks_since_change.saturating_add(1);
            }
            ScaleDecision::Grow(width) | ScaleDecision::Shrink(width) => {
                self.pool.resize(width);
                st.ticks_since_change = 0;
                st.events.push(ScalingEvent {
                    observation,
                    decision,
                    reason,
                });
            }
        }
    }

    /// Arm a [`FaultPlan`] for the next query execution. Plans queue
    /// FIFO: arming several queues one per execution attempt, which is
    /// how the chaos harness re-arms faults across recovery retries.
    ///
    /// The plan is validated against the serving topology first — a
    /// kill/stall naming a router or out-of-range node, or a degrade
    /// naming an unknown edge, is a typed
    /// [`QueryError::InvalidFaultTarget`], never a silent no-op.
    pub fn inject_faults(&self, plan: FaultPlan) -> Result<(), QueryError> {
        plan.validate(self.service.context().tree())
            .map_err(|e| match e {
                RuntimeError::InvalidFaultTarget { fault } => QueryError::InvalidFaultTarget(fault),
                other => QueryError::Backend(other.to_string()),
            })?;
        self.injector.arm(plan);
        Ok(())
    }

    /// Degrade one link of the serving topology (divide both directed
    /// bandwidths of `edge` by `factor`): plan-cache invalidation via the
    /// topology fingerprint, catalog version bump, re-pricing on every
    /// subsequent query — see
    /// [`QueryService::degrade_link`]. Returns the new catalog version.
    pub fn degrade_link(&self, edge: EdgeId, factor: f64) -> Result<u64, QueryError> {
        self.service.degrade_link(edge, factor)
    }

    /// Checkpoint counters (saved/resumed/retained), when checkpointing
    /// is enabled via [`OrchestratorBuilder::checkpoints`].
    pub fn checkpoint_stats(&self) -> Option<CheckpointStats> {
        self.checkpoints.as_ref().map(|store| store.stats())
    }

    /// The configured replay-recovery policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Every fault that actually fired, in firing order.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.injector.fired()
    }

    /// Every replay recovery, in arrival order.
    pub fn recovery_events(&self) -> Vec<RecoveryEvent> {
        lock_ok(&self.recoveries).clone()
    }

    /// The resize event log. Deterministic in the sense of the
    /// [`scaling`] module docs: `decide(spec, event.observation)`
    /// reproduces every `(decision, reason)` pair.
    pub fn scaling_events(&self) -> Vec<ScalingEvent> {
        lock_ok(&self.scaler).events.clone()
    }

    /// The attached scaling policy, if any.
    pub fn scaling_spec(&self) -> Option<&ScalingSpec> {
        self.scaling.as_ref()
    }

    /// Current elastic crew width.
    pub fn pool_width(&self) -> usize {
        self.pool.width()
    }

    /// Global concurrent-queries bound.
    pub fn capacity(&self) -> usize {
        self.admission.capacity()
    }

    /// Queries currently queued across all tenants.
    pub fn queue_depth(&self) -> usize {
        self.admission.queue_depth()
    }

    /// The underlying serving layer (plan cache, catalog versioning,
    /// `register` / `register_strategy`).
    pub fn service(&self) -> &QueryService {
        &self.service
    }

    /// Per-tenant serving report, in declaration order: queue/plan/exec
    /// timings, p50/p99 queue time, fairness and recovery counters.
    pub fn stats(&self) -> Vec<TenantStats> {
        let admission = self.admission.tenant_admission();
        let timings = lock_ok(&self.timings);
        self.specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let adm = &admission[i].1;
                let t = &timings[i];
                let mut sorted = t.queue_us.clone();
                sorted.sort_unstable();
                TenantStats {
                    tenant: spec.name.clone(),
                    weight: spec.weight,
                    priority: spec.priority,
                    served: t.served,
                    rejected: adm.rejected,
                    recovered: t.recovered,
                    timeouts: t.timeouts,
                    supersteps_skipped: t.supersteps_skipped,
                    cache_hits: t.cache_hits,
                    iteration_limits: t.iteration_limits,
                    queued_now: adm.queued,
                    running_now: adm.running,
                    queue_p50: percentile(&sorted, 50),
                    queue_p99: percentile(&sorted, 99),
                    plan_total: t.plan,
                    exec_total: t.exec,
                    max_waited_grants: t.max_waited_grants,
                }
            })
            .collect()
    }
}

/// Translate a recoverable [`QueryError`] into the [`FaultEvent`]
/// recorded on its [`RecoveryEvent`]. Degradations attribute the deeper
/// endpoint of the edge, matching the runtime's own fired-event log.
fn fault_event_of(e: &QueryError, tree: &Tree) -> FaultEvent {
    match *e {
        QueryError::FaultInjected { node, round } => FaultEvent {
            node,
            round,
            kind: FaultKind::WorkerKilled,
        },
        QueryError::LinkDegraded {
            edge,
            round,
            factor,
        } => FaultEvent {
            node: tree.deeper_endpoint(edge),
            round,
            kind: FaultKind::LinkDegraded { edge, factor },
        },
        QueryError::SuperstepTimeout { node, round, .. } => FaultEvent {
            node,
            round,
            kind: FaultKind::Straggler,
        },
        _ => unreachable!("fault_event_of is only called on recoverable errors"),
    }
}

/// `p`-th percentile of an ascending-sorted micros sample (nearest-rank
/// on the inclusive index scale; zero for an empty sample).
fn percentile(sorted_us: &[u64], p: u32) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted_us.len() - 1) * p as usize / 100;
    Duration::from_micros(sorted_us[rank])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggFunc;
    use crate::schema::Schema;
    use crate::table::DistributedTable;
    use tamp_topology::{builders, NodeId};

    fn ctx() -> QueryContext {
        let tree = builders::star(4, 1.0);
        let mut ctx = QueryContext::new(tree.clone()).with_seed(5);
        let rows: Vec<Vec<u64>> = (0..80).map(|i| vec![i, i % 4, i * 7 % 90]).collect();
        ctx.register(DistributedTable::round_robin(
            "t",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            &tree,
        ))
        .unwrap();
        ctx
    }

    fn query() -> LogicalPlan {
        LogicalPlan::scan("t").aggregate("g", AggFunc::Sum, "x")
    }

    #[test]
    fn builder_validates_everything() {
        let no_tenants = Orchestrator::builder(ctx()).build();
        assert!(matches!(no_tenants, Err(QueryError::InvalidTenantSpec(_))));
        let dup = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .tenant(TenantSpec::new("a", 2, 4))
            .build();
        assert!(matches!(dup, Err(QueryError::InvalidTenantSpec(_))));
        let bad_scale = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .scaling(ScalingSpec::new(8, 2))
            .build();
        assert!(matches!(bad_scale, Err(QueryError::InvalidScalingSpec(_))));
        let zero_cap = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .capacity(0)
            .build();
        assert!(matches!(zero_cap, Err(QueryError::InvalidAdmissionLimit)));
    }

    #[test]
    fn serves_unknown_tenants_a_typed_error_and_known_ones_their_rows() {
        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .build()
            .unwrap();
        assert!(matches!(
            orch.serve_as("nobody", &query()),
            Err(QueryError::UnknownTenant(_))
        ));
        let want = ctx().prepare(&query()).unwrap().run().unwrap();
        let served = orch.serve_as("a", &query()).unwrap();
        assert_eq!(served.result.rows(false), want.rows(false));
        assert_eq!(served.result.cost.edge_totals, want.cost.edge_totals);
        let stats = orch.stats();
        assert_eq!(stats[0].served, 1);
        assert_eq!(stats[0].recovered, 0);
    }

    #[test]
    fn injected_faults_recover_bit_identically_and_are_logged() {
        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .build()
            .unwrap();
        let want = orch.serve_as("a", &query()).unwrap(); // fault-free
        let victim = orch.service().context().tree().compute_nodes()[1];
        orch.inject_faults(FaultPlan::new().kill_worker(victim, 0))
            .unwrap();
        let recovered = orch.serve_as("a", &query()).unwrap();
        assert_eq!(recovered.result.rows(false), want.result.rows(false));
        assert_eq!(
            recovered.result.cost.edge_totals,
            want.result.cost.edge_totals
        );
        let recs = orch.recovery_events();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].fault.node, victim);
        assert_eq!(recs[0].attempt, 1);
        // No checkpointing configured: the successful replay ran from
        // scratch and the bookkeeping says so.
        assert_eq!(recs[0].resumed_from, None);
        assert_eq!(recs[0].skipped_supersteps, 0);
        assert_eq!(
            recs[0].replayed_supersteps,
            Some(recovered.result.supersteps)
        );
        let fired = orch.fault_events();
        assert_eq!(
            fired,
            vec![FaultEvent {
                node: victim,
                round: 0,
                kind: FaultKind::WorkerKilled
            }]
        );
        assert_eq!(orch.stats()[0].recovered, 1);
    }

    #[test]
    fn invalid_fault_targets_are_typed_errors_not_silent_noops() {
        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .build()
            .unwrap();
        // star(4): node 4 is the hub — a router with no program to kill.
        let hub = tamp_topology::NodeId(4);
        let err = orch
            .inject_faults(FaultPlan::new().kill_worker(hub, 0))
            .unwrap_err();
        assert!(matches!(err, QueryError::InvalidFaultTarget(_)), "{err}");
        assert!(err.to_string().contains("router"), "{err}");
        // Nothing was armed: the next serve runs fault-free.
        let served = orch.serve_as("a", &query()).unwrap();
        assert!(orch.fault_events().is_empty());
        assert!(!served.result.rows(false).is_empty());
    }

    #[test]
    fn recovery_exhausts_after_exactly_max_attempts() {
        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .retry(RetryPolicy::new(3))
            .build()
            .unwrap();
        let victim = orch.service().context().tree().compute_nodes()[0];
        // Queue more kill plans than the policy allows attempts: the
        // query must give up after exactly 3 executions, leaving no
        // armed plan behind to poison the next query.
        for _ in 0..5 {
            orch.inject_faults(FaultPlan::new().kill_worker(victim, 0))
                .unwrap();
        }
        let err = orch.serve_as("a", &query()).unwrap_err();
        match err {
            QueryError::RecoveryExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(matches!(*last, QueryError::FaultInjected { .. }));
            }
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
        assert_eq!(orch.recovery_events().len(), 3);
        assert_eq!(orch.fault_events().len(), 3);
        // The two surplus plans were dropped with the failed query.
        let served = orch.serve_as("a", &query()).unwrap();
        assert!(!served.result.rows(false).is_empty());
        assert_eq!(orch.fault_events().len(), 3, "no leaked fault plans");
    }

    #[test]
    fn checkpointed_recovery_replays_strictly_fewer_supersteps() {
        // A multi-round query (aggregate + order_by) with checkpoints
        // every superstep: a kill late in the schedule must resume from
        // the last boundary and replay strictly fewer supersteps than a
        // whole-query replay — asserted from the RecoveryEvent, with rows
        // and edge_totals bit-identical to the fault-free run.
        let q = LogicalPlan::scan("t")
            .aggregate("g", AggFunc::Sum, "x")
            .order_by("sum_x");
        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("a", 1, 4))
            .checkpoints(1)
            .build()
            .unwrap();
        let want = orch.serve_as("a", &q).unwrap();
        let total = want.result.supersteps;
        assert!(total >= 3, "need a multi-superstep schedule, got {total}");

        let victim = orch.service().context().tree().compute_nodes()[2];
        let kill_round = total - 2; // late: several boundaries behind it
        orch.inject_faults(FaultPlan::new().kill_worker(victim, kill_round))
            .unwrap();
        let recovered = orch.serve_as("a", &q).unwrap();
        assert_eq!(recovered.result.rows(false), want.result.rows(false));
        assert_eq!(
            recovered.result.cost.edge_totals,
            want.result.cost.edge_totals
        );
        let recs = orch.recovery_events();
        assert_eq!(recs.len(), 1);
        let rec = &recs[0];
        assert_eq!(rec.resumed_from, Some(kill_round));
        assert_eq!(rec.skipped_supersteps, kill_round);
        assert_eq!(rec.replayed_supersteps, Some(total - kill_round));
        assert!(
            rec.replayed_supersteps.unwrap() < total,
            "partial restart must replay strictly fewer supersteps than full replay"
        );
        let cp = orch.checkpoint_stats().unwrap();
        assert_eq!((cp.saved, cp.resumed, cp.retained), (1, 1, 0));
        assert_eq!(orch.stats()[0].supersteps_skipped, kill_round as u64);
    }

    #[test]
    fn checkpoint_resume_is_deterministic_across_strategy_paths() {
        // Exchange emission must be byte-identical across executions of
        // the same pinned plan (`drain_sorted` in the strategies):
        // otherwise the schedule-content checkpoint token differs per
        // attempt and the retry can never consume the snapshot its own
        // faulted run parked. A self-join and a grouped aggregate cover
        // the map-grouped emission paths; each must *resume*, not
        // merely recover.
        let plans = [
            LogicalPlan::scan("t").join_on(LogicalPlan::scan("t"), "id", "id"),
            LogicalPlan::scan("t")
                .aggregate("g", AggFunc::Sum, "x")
                .order_by("sum_x"),
        ];
        for q in plans {
            let orch = Orchestrator::builder(ctx())
                .tenant(TenantSpec::new("a", 1, 4))
                .checkpoints(1)
                .build()
                .unwrap();
            let want = orch.serve_as("a", &q).unwrap();
            let total = want.result.supersteps;
            if total < 2 {
                continue; // no boundary can sit behind the kill
            }
            let victim = orch.service().context().tree().compute_nodes()[0];
            orch.inject_faults(FaultPlan::new().kill_worker(victim, total - 1))
                .unwrap();
            let recovered = orch.serve_as("a", &q).unwrap();
            assert_eq!(recovered.result.rows(false), want.result.rows(false));
            assert_eq!(
                recovered.result.cost.edge_totals,
                want.result.cost.edge_totals
            );
            let recs = orch.recovery_events();
            let rec = recs.last().unwrap();
            assert_eq!(
                rec.resumed_from,
                Some(total - 1),
                "retry must hit the parked snapshot (token-stable schedule) for {q:?}"
            );
            let cp = orch.checkpoint_stats().unwrap();
            assert_eq!((cp.saved, cp.resumed, cp.retained), (1, 1, 0));
        }
    }

    #[test]
    fn scaling_events_replay_deterministically() {
        // min 1, aggressive targets and zero cooldown: a thread burst
        // must grow the crew, and the drain must shrink it back.
        let orch = Arc::new(
            Orchestrator::builder(ctx())
                .tenant(TenantSpec::new("a", 1, 64))
                .scaling(
                    ScalingSpec::new(1, 8)
                        .with_target_queue_depth(1)
                        .with_cooldown(0),
                )
                .capacity(4)
                .build()
                .unwrap(),
        );
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let orch = Arc::clone(&orch);
                scope.spawn(move || orch.serve_as("a", &query()).unwrap());
            }
        });
        // Serial tail with an empty queue: gives shrink a chance to fire.
        for _ in 0..4 {
            orch.serve_as("a", &query()).unwrap();
        }
        let events = orch.scaling_events();
        assert!(!events.is_empty(), "burst should trigger scaling");
        let spec = orch.scaling_spec().unwrap();
        for e in &events {
            assert_eq!(
                decide(spec, &e.observation),
                (e.decision, e.reason),
                "event log must replay: {e:?}"
            );
            let width = match e.decision {
                ScaleDecision::Grow(w) | ScaleDecision::Shrink(w) => w,
                ScaleDecision::Hold => unreachable!("only resizes are logged"),
            };
            assert!((spec.min..=spec.max).contains(&width));
        }
    }

    #[test]
    fn stats_report_all_tenants_with_percentiles() {
        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("fast", 4, 8).with_priority(Priority::Interactive))
            .tenant(TenantSpec::new("slow", 1, 8))
            .build()
            .unwrap();
        for _ in 0..5 {
            orch.serve_as("fast", &query()).unwrap();
        }
        orch.serve_as("slow", &query()).unwrap();
        let stats = orch.stats();
        assert_eq!(stats.len(), 2);
        let fast = &stats[0];
        assert_eq!((fast.served, fast.weight), (5, 4));
        assert_eq!(fast.priority, Priority::Interactive);
        assert!(fast.queue_p50 <= fast.queue_p99);
        assert_eq!(fast.cache_hits, 4); // first serve was the miss
        assert_eq!(stats[1].served, 1);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 99), Duration::ZERO);
        let us: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&us, 50), Duration::from_micros(50));
        assert_eq!(percentile(&us, 99), Duration::from_micros(99));
        assert_eq!(percentile(&us, 100), Duration::from_micros(100));
        assert_eq!(percentile(&[7], 99), Duration::from_micros(7));
    }

    /// A 6-cycle over the star's leaves (every vertex pair of adjacent
    /// owners exchanges), usable against the `ctx()` topology.
    fn cycle_graph(ctx: &QueryContext) -> (Vec<(u64, u64)>, Vec<NodeId>) {
        let vc = ctx.tree().compute_nodes().to_vec();
        let n = 6u64;
        let mut arcs = Vec::new();
        for u in 0..n {
            arcs.push((u, (u + 1) % n));
            arcs.push(((u + 1) % n, u));
        }
        let owners = (0..n).map(|u| vc[(u % 3) as usize]).collect();
        (arcs, owners)
    }

    #[test]
    fn serves_iterative_jobs_as_batch_sessions() {
        let c = ctx();
        let (arcs, owners) = cycle_graph(&c);
        let job = IterativeJob::bfs(
            arcs,
            owners,
            0,
            crate::iterative::IterativeSpec::frontier(10, 0.0),
        );
        let want = job.prepare(c.tree()).unwrap();

        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("graphs", 1, 4).with_priority(Priority::Batch))
            .build()
            .unwrap();
        assert!(matches!(
            orch.serve_iterative("nobody", &job),
            Err(QueryError::UnknownTenant(_))
        ));
        let served = orch.serve_iterative("graphs", &job).unwrap();
        // Bit-identical to a standalone run of the same prepared job.
        let standalone = want.run(c.tree()).unwrap();
        assert_eq!(served.outcome.values, standalone.values);
        assert_eq!(served.outcome.cost.edge_totals, standalone.cost.edge_totals);
        assert!(!served.stats.cache_hit, "iterative plans are never cached");
        let stats = orch.stats();
        assert_eq!(stats[0].served, 1);
        assert_eq!(stats[0].priority, Priority::Batch);
        assert_eq!(stats[0].iteration_limits, 0);
    }

    #[test]
    fn iteration_limits_roll_up_per_tenant() {
        let c = ctx();
        let (arcs, owners) = cycle_graph(&c);
        // BFS around the cycle needs 4 iterations; cap at 1.
        let job = IterativeJob::bfs(
            arcs,
            owners,
            0,
            crate::iterative::IterativeSpec::frontier(1, 0.0),
        );
        let orch = Orchestrator::builder(ctx())
            .tenant(TenantSpec::new("graphs", 1, 4).with_priority(Priority::Batch))
            .build()
            .unwrap();
        let err = orch.serve_iterative("graphs", &job).unwrap_err();
        assert!(matches!(err, QueryError::IterationLimit { limit: 1, .. }));
        let err = orch.serve_iterative("graphs", &job).unwrap_err();
        assert!(matches!(err, QueryError::IterationLimit { .. }));
        let stats = orch.stats();
        assert_eq!(stats[0].iteration_limits, 2);
        assert_eq!(stats[0].served, 0, "non-converged jobs are not served");
        assert_eq!(
            orch.recovery_events().len(),
            0,
            "non-convergence is not a fault and is never retried"
        );
    }
}
