//! The autoscaling control law: a **pure decision function** over
//! recorded observations.
//!
//! Wall-clock signals (queue latency) are inherently nondeterministic,
//! so the subsystem's determinism guarantee is placed one level up:
//! every scaling event records the full [`ScalingObservation`] it was
//! decided on, and [`decide`] is a pure function of `(spec,
//! observation)`. Replaying the log through `decide` must reproduce
//! every logged decision and reason bit for bit — the orchestrator tests
//! and the `x-tenant` release gate assert exactly that, which is what
//! "scaling decisions recorded in a deterministic event log" means here.

use std::time::Duration;

use crate::error::QueryError;

/// Declarative autoscaling policy for the elastic worker crew.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalingSpec {
    /// Smallest crew the loop will shrink to (≥ 1); also the initial
    /// width.
    pub min: usize,
    /// Largest crew the loop will grow to.
    pub max: usize,
    /// Queue depths above this trigger a grow (once cooldown allows).
    pub target_queue_depth: usize,
    /// Decision ticks that must pass after a resize before the next
    /// resize (hysteresis against flapping).
    pub cooldown: u64,
    /// Optional rolling-latency target: a rolling mean queue wait above
    /// it triggers a grow even while the queue depth target holds.
    pub target_queue_latency: Option<Duration>,
}

impl ScalingSpec {
    /// A policy between `min` and `max` workers with a queue-depth
    /// target of 2 and a cooldown of 4 decision ticks.
    pub fn new(min: usize, max: usize) -> Self {
        ScalingSpec {
            min,
            max,
            target_queue_depth: 2,
            cooldown: 4,
            target_queue_latency: None,
        }
    }

    /// Builder-style: set the queue-depth grow trigger.
    pub fn with_target_queue_depth(mut self, depth: usize) -> Self {
        self.target_queue_depth = depth;
        self
    }

    /// Builder-style: set the resize cooldown (in decision ticks).
    pub fn with_cooldown(mut self, ticks: u64) -> Self {
        self.cooldown = ticks;
        self
    }

    /// Builder-style: set the rolling queue-latency grow trigger.
    pub fn with_target_queue_latency(mut self, target: Duration) -> Self {
        self.target_queue_latency = Some(target);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), QueryError> {
        if self.min == 0 {
            return Err(QueryError::InvalidScalingSpec(
                "min width 0 (need \u{2265} 1)".into(),
            ));
        }
        if self.min > self.max {
            return Err(QueryError::InvalidScalingSpec(format!(
                "min width {} exceeds max width {}",
                self.min, self.max
            )));
        }
        Ok(())
    }
}

/// Everything a scaling decision was based on — recorded in full so the
/// decision replays (see the [module docs](self)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScalingObservation {
    /// Decision tick (one per served query).
    pub tick: u64,
    /// Queries queued across all tenants at decision time.
    pub queue_depth: usize,
    /// Queries executing at decision time.
    pub inflight: usize,
    /// Current crew width.
    pub width: usize,
    /// Decision ticks since the last resize (hysteresis input).
    pub ticks_since_change: u64,
    /// Rolling mean queue wait over the recent window.
    pub rolling_queue_latency: Duration,
    /// Straggler (superstep-watchdog) timeouts observed since the last
    /// decision tick — a degraded-mode pressure signal: a crew that keeps
    /// missing deadlines needs more parallel slack, not less.
    pub recent_timeouts: usize,
}

/// What the control law decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the current width.
    Hold,
    /// Grow the crew to this width.
    Grow(usize),
    /// Shrink the crew to this width.
    Shrink(usize),
}

/// One resize recorded in the orchestrator's event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScalingEvent {
    /// The inputs the decision was made on.
    pub observation: ScalingObservation,
    /// The decision ([`decide`] of the observation — replayable).
    pub decision: ScaleDecision,
    /// Human-readable decision rationale (also replayable).
    pub reason: &'static str,
}

/// The pure control law: geometric grow when the queue (or its rolling
/// latency) is above target, geometric shrink when idle and
/// under-utilized, hysteresis via `cooldown`. Deterministic in `(spec,
/// obs)` by construction — no clocks, no state.
pub fn decide(spec: &ScalingSpec, obs: &ScalingObservation) -> (ScaleDecision, &'static str) {
    if obs.ticks_since_change < spec.cooldown {
        return (ScaleDecision::Hold, "cooldown");
    }
    let over_depth = obs.queue_depth > spec.target_queue_depth;
    let over_latency = spec
        .target_queue_latency
        .is_some_and(|target| obs.rolling_queue_latency > target);
    let stragglers = obs.recent_timeouts > 0;
    if (over_depth || over_latency || stragglers) && obs.width < spec.max {
        let next = obs.width.saturating_mul(2).min(spec.max);
        let reason = if over_depth {
            "queue depth above target"
        } else if over_latency {
            "rolling queue latency above target"
        } else {
            "straggler timeouts"
        };
        return (ScaleDecision::Grow(next), reason);
    }
    if obs.queue_depth == 0 && obs.inflight * 2 <= obs.width && obs.width > spec.min {
        return (
            ScaleDecision::Shrink((obs.width / 2).max(spec.min)),
            "idle crew under-utilized",
        );
    }
    (ScaleDecision::Hold, "steady")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(queue: usize, inflight: usize, width: usize, since: u64) -> ScalingObservation {
        ScalingObservation {
            tick: 1,
            queue_depth: queue,
            inflight,
            width,
            ticks_since_change: since,
            rolling_queue_latency: Duration::ZERO,
            recent_timeouts: 0,
        }
    }

    #[test]
    fn specs_validate() {
        assert!(ScalingSpec::new(1, 8).validate().is_ok());
        assert!(matches!(
            ScalingSpec::new(0, 8).validate(),
            Err(QueryError::InvalidScalingSpec(_))
        ));
        assert!(matches!(
            ScalingSpec::new(9, 8).validate(),
            Err(QueryError::InvalidScalingSpec(_))
        ));
    }

    #[test]
    fn control_law_grows_shrinks_and_holds() {
        let spec = ScalingSpec::new(2, 16).with_cooldown(3);
        // Cooldown gates everything.
        assert_eq!(
            decide(&spec, &obs(100, 2, 2, 2)),
            (ScaleDecision::Hold, "cooldown")
        );
        // Deep queue: geometric grow, capped at max.
        assert_eq!(decide(&spec, &obs(5, 2, 2, 3)).0, ScaleDecision::Grow(4));
        assert_eq!(decide(&spec, &obs(5, 2, 12, 3)).0, ScaleDecision::Grow(16));
        // At max: hold even with a deep queue.
        assert_eq!(decide(&spec, &obs(50, 16, 16, 9)).0, ScaleDecision::Hold);
        // Idle + under-utilized: geometric shrink, floored at min.
        assert_eq!(decide(&spec, &obs(0, 2, 8, 3)).0, ScaleDecision::Shrink(4));
        assert_eq!(decide(&spec, &obs(0, 0, 3, 3)).0, ScaleDecision::Shrink(2));
        // Busy crew at target: hold.
        assert_eq!(decide(&spec, &obs(1, 8, 8, 9)).0, ScaleDecision::Hold);
    }

    #[test]
    fn latency_target_triggers_growth_without_queue_depth() {
        let spec = ScalingSpec::new(2, 8)
            .with_target_queue_depth(100)
            .with_target_queue_latency(Duration::from_millis(5));
        let mut o = obs(1, 2, 2, 9);
        o.rolling_queue_latency = Duration::from_millis(50);
        let (d, reason) = decide(&spec, &o);
        assert_eq!(d, ScaleDecision::Grow(4));
        assert_eq!(reason, "rolling queue latency above target");
    }

    #[test]
    fn straggler_timeouts_trigger_growth() {
        let spec = ScalingSpec::new(2, 8);
        let mut o = obs(0, 2, 2, 9); // empty queue, would otherwise hold
        o.recent_timeouts = 1;
        assert_eq!(
            decide(&spec, &o),
            (ScaleDecision::Grow(4), "straggler timeouts")
        );
        // At max width the signal cannot act (busy crew: no shrink either).
        o.width = 8;
        o.inflight = 8;
        assert_eq!(decide(&spec, &o).0, ScaleDecision::Hold);
    }

    #[test]
    fn decisions_replay_from_recorded_observations() {
        // The determinism contract: (spec, observation) reproduces the
        // decision — the property the orchestrator's event-log gate
        // leans on.
        let spec = ScalingSpec::new(1, 32);
        for o in [obs(9, 1, 4, 8), obs(0, 0, 4, 8), obs(2, 4, 4, 8)] {
            let first = decide(&spec, &o);
            for _ in 0..3 {
                assert_eq!(decide(&spec, &o), first);
            }
        }
    }
}
