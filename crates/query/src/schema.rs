//! Relation schemas: named, fixed-width columns of `u64` values.

use std::fmt;

use crate::error::QueryError;

/// A relation schema: an ordered list of column names. All columns hold
/// `u64` values (the simulator's element domain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Build a schema from column names.
    ///
    /// # Errors
    ///
    /// Rejects duplicate or empty column names.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Result<Self, QueryError> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            if c.is_empty() {
                return Err(QueryError::EmptyColumnName);
            }
            if columns[..i].contains(c) {
                return Err(QueryError::DuplicateColumn(c.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns (the row width).
    #[inline]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    #[inline]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize, QueryError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| QueryError::UnknownColumn(name.to_string()))
    }

    /// Name of the column at `idx`.
    pub fn name_of(&self, idx: usize) -> Option<&str> {
        self.columns.get(idx).map(String::as_str)
    }

    /// The schema of `self × other`, prefixing clashing right-side names
    /// with `right_prefix`.
    pub fn join(&self, other: &Schema, right_prefix: &str) -> Result<Schema, QueryError> {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            if cols.contains(c) {
                cols.push(format!("{right_prefix}{c}"));
            } else {
                cols.push(c.clone());
            }
        }
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_lookup() {
        let s = Schema::new(vec!["a", "b", "c"]).unwrap();
        assert_eq!(s.width(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.name_of(2), Some("c"));
        assert!(s.index_of("z").is_err());
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(matches!(
            Schema::new(vec!["a", "a"]),
            Err(QueryError::DuplicateColumn(_))
        ));
        assert!(matches!(
            Schema::new(vec![""]),
            Err(QueryError::EmptyColumnName)
        ));
    }

    #[test]
    fn join_prefixes_clashes() {
        let l = Schema::new(vec!["id", "x"]).unwrap();
        let r = Schema::new(vec!["id", "y"]).unwrap();
        let j = l.join(&r, "r_").unwrap();
        assert_eq!(j.columns(), &["id", "x", "r_id", "y"]);
    }

    #[test]
    fn display() {
        let s = Schema::new(vec!["a", "b"]).unwrap();
        assert_eq!(s.to_string(), "(a, b)");
    }
}
