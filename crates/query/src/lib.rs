//! # tamp-query
//!
//! A distributed relational query layer executing on the topology-aware
//! massively parallel computation cost model of Hu, Koutris and Blanas
//! (PODS 2021).
//!
//! The paper motivates its three tasks — set intersection, cartesian
//! product, sorting — as "the essential building blocks for evaluating any
//! complex analytical query", and its central claim is that the
//! *communication strategy* should be chosen from the topology and the
//! data distribution. This crate makes that choice a first-class planning
//! decision. Queries flow through three layers:
//!
//! 1. **[`LogicalPlan`]** ([`plan`]) — the relational algebra (filter /
//!    project / equi-join / cross join / order-by / group-by / limit /
//!    distinct / union-all) over named [`DistributedTable`]s, with
//!    schema inference and a rewrite [`optimizer`] (constant folding,
//!    conjunction splitting, filter pushdown).
//! 2. **[`PhysicalPlan`]** ([`physical`]) — the same operators with
//!    every exchange *explicit, strategy-chosen and priced*: each
//!    operator asks the session's
//!    [`StrategyRegistry`] for all
//!    registered [`PhysicalStrategy`]
//!    candidates — the paper's algorithms (Alg-2 weighted hash, §3
//!    `TreeIntersect` routing, §4/A.1 wHC rectangles, §5.2
//!    weighted-TeraSort splitters, in-network combining) next to their
//!    topology-agnostic baselines — prices them on the §2 functional and
//!    against the task's per-edge **lower bound**, and keeps the
//!    cheapest; `EXPLAIN` shows every candidate's estimate and Table-1
//!    ratio. Third-party strategies plug in via
//!    [`QueryContext::register_strategy`](context::QueryContext::register_strategy).
//! 3. **Backend-generic execution** ([`exec`]) — each winning strategy
//!    emits its exchange schedule once, and the whole plan's schedule
//!    replays through any
//!    [`ExecBackend`](tamp_runtime::backend::ExecBackend): the
//!    centralized simulator and the pooled BSP cluster move — and meter —
//!    bit-identical traffic.
//!
//! The session API ([`context`]) ties the layers together:
//!
//! ```
//! use tamp_query::prelude::*;
//! use tamp_topology::builders;
//!
//! let mut ctx = QueryContext::new(builders::star(4, 1.0));
//! let rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i % 3, i * 2]).collect();
//! ctx.register(DistributedTable::round_robin(
//!     "t",
//!     Schema::new(vec!["id", "g", "x"]).unwrap(),
//!     rows,
//!     ctx.tree(),
//! ))
//! .unwrap();
//!
//! // DataFrame-style chaining, collected on the default engine:
//! let result = ctx
//!     .table("t")
//!     .filter(col("x").gt(lit(50)))
//!     .aggregate("g", AggFunc::Count, "id")
//!     .collect()
//!     .unwrap();
//! assert_eq!(result.schema.columns(), &["g", "count_id"]);
//!
//! // Or prepare once, inspect the EXPLAIN, run anywhere:
//! let q = LogicalPlan::scan("t").join_on(LogicalPlan::scan("t"), "g", "g");
//! let prepared = ctx.prepare(&q).unwrap();
//! println!("{}", prepared.explain()); // per-exchange estimated costs
//! let on_cluster = prepared
//!     .run_on(&tamp_runtime::PooledClusterBackend::default())
//!     .unwrap();
//! let on_sim = prepared.run().unwrap();
//! assert_eq!(on_sim.cost.edge_totals, on_cluster.cost.edge_totals);
//! ```
//!
//! Results carry per-operator *estimated vs. metered* cost pairs
//! ([`QueryResult::operator_costs`]), so planning quality is observable
//! on every run; the `x-plan` experiment suite tracks it across
//! topologies.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod batch;
pub mod context;
pub mod error;
pub mod exec;
pub mod expr;
pub mod iterative;
pub mod optimizer;
pub mod orchestrator;
pub mod physical;
pub mod plan;
pub mod reference;
pub mod row;
pub mod schema;
pub mod service;
pub mod table;

/// Everything needed to build and run queries.
pub mod prelude {
    pub use crate::admission::{Priority, TenantSpec};
    pub use crate::batch::RecordBatch;
    pub use crate::context::{DataFrame, PreparedQuery, QueryContext};
    pub use crate::exec::{
        execute, execute_on, ExecMode, ExecOptions, JoinStrategy, OperatorCost, QueryResult,
        StrategyForce,
    };
    pub use crate::expr::{col, lit, Expr};
    pub use crate::iterative::{
        IterMode, IterValues, IterationCost, IterativeJob, IterativeOutcome, IterativeSpec,
        PreparedIterative,
    };
    pub use crate::optimizer::optimize;
    pub use crate::orchestrator::{
        Backoff, Orchestrator, RetryPolicy, ScalingSpec, ServedIterative, TenantStats,
    };
    pub use crate::physical::strategy::{
        Candidate, CostEstimate, OperatorKind, PhysicalStrategy, StrategyRegistry,
    };
    pub use crate::physical::{lower, Exchange, PhysicalPlan};
    pub use crate::plan::{AggFunc, LogicalPlan};
    pub use crate::schema::Schema;
    pub use crate::service::{AdmissionStats, CacheStats, QueryService, ServedQuery, ServiceStats};
    pub use crate::table::{Catalog, DistributedTable};
}

pub use admission::{Priority, TenantSpec};
pub use batch::RecordBatch;
pub use context::{DataFrame, PreparedQuery, QueryContext};
pub use error::QueryError;
pub use exec::{
    execute, execute_on, ExecMode, ExecOptions, JoinStrategy, OperatorCost, QueryResult,
    StrategyForce,
};
pub use iterative::{
    IterMode, IterValues, IterationCost, IterativeJob, IterativeOutcome, IterativeSpec,
    PreparedIterative,
};
pub use orchestrator::{
    Backoff, Orchestrator, RecoveryEvent, RetryPolicy, ScalingSpec, ServedIterative, TenantStats,
};
pub use physical::strategy::{OperatorKind, PhysicalStrategy, StrategyRegistry};
pub use physical::{Exchange, PhysicalPlan};
pub use plan::{AggFunc, LogicalPlan};
pub use schema::Schema;
pub use service::{AdmissionStats, CacheStats, QueryService, ServedQuery, ServiceStats};
pub use table::{Catalog, DistributedTable};
