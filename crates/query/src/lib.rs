//! # tamp-query
//!
//! A distributed relational query layer executing on the topology-aware
//! massively parallel computation cost model of Hu, Koutris and Blanas
//! (PODS 2021).
//!
//! The paper motivates its three tasks — set intersection, cartesian
//! product, sorting — as "the essential building blocks for evaluating any
//! complex analytical query". This crate closes the loop: it provides
//! named distributed tables, scalar expressions, a logical plan algebra
//! (filter / project / equi-join / cross join / order-by / group-by /
//! limit / distinct / union-all), a cost-oriented optimizer, and an
//! executor that maps each
//! operator onto the paper's topology-aware primitives with every shipped
//! row metered on the §2 cost functional:
//!
//! - equi-joins repartition with the *distribution-aware weighted hash* of
//!   Algorithm 2 (with the uniform MPC hash and small-side broadcast as
//!   selectable baselines);
//! - `ORDER BY` runs the weighted-TeraSort sample/split/shuffle of §5.2;
//! - `GROUP BY` shuffles pre-aggregated partials under the same weighted
//!   hash;
//! - cross joins broadcast the smaller side, the star-case strategy of
//!   §4.5.
//!
//! ```
//! use tamp_query::prelude::*;
//! use tamp_topology::builders;
//!
//! let tree = builders::star(4, 1.0);
//! let mut catalog = Catalog::new(tree);
//! let rows: Vec<Vec<u64>> = (0..100).map(|i| vec![i, i % 3, i * 2]).collect();
//! catalog
//!     .register(DistributedTable::round_robin(
//!         "t",
//!         Schema::new(vec!["id", "g", "x"]).unwrap(),
//!         rows,
//!         catalog.tree(),
//!     ))
//!     .unwrap();
//!
//! let query = LogicalPlan::scan("t")
//!     .filter(col("x").gt(lit(50)))
//!     .aggregate("g", AggFunc::Count, "id");
//! let result = execute(&catalog, &query, ExecOptions::default()).unwrap();
//! assert_eq!(result.schema.columns(), &["g", "count_id"]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod exec;
pub mod expr;
pub mod optimizer;
pub mod plan;
pub mod reference;
pub mod row;
pub mod schema;
pub mod table;

/// Everything needed to build and run queries.
pub mod prelude {
    pub use crate::exec::{execute, ExecOptions, JoinStrategy, QueryResult};
    pub use crate::expr::{col, lit, Expr};
    pub use crate::optimizer::optimize;
    pub use crate::plan::{AggFunc, LogicalPlan};
    pub use crate::schema::Schema;
    pub use crate::table::{Catalog, DistributedTable};
}

pub use error::QueryError;
pub use exec::{execute, execute_on, ExecOptions, JoinStrategy, QueryResult};
pub use plan::{AggFunc, LogicalPlan};
pub use schema::Schema;
pub use table::{Catalog, DistributedTable};
