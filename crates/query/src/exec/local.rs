//! Communication-free operators: filter, project, union-all.
//!
//! Local computation is free under the §2 cost functional, so these
//! operators rewrite fragments in place and record no rounds.

use crate::error::QueryError;
use crate::exec::Fragments;
use crate::expr::Expr;
use crate::row::Row;
use crate::schema::Schema;

/// Keep rows matching `predicate` (bound against `schema`).
pub(crate) fn filter(
    schema: &Schema,
    mut frags: Fragments,
    predicate: &Expr,
) -> Result<Fragments, QueryError> {
    let bound = predicate.bind(schema)?;
    for frag in &mut frags {
        let mut kept = Vec::with_capacity(frag.len());
        for row in frag.drain(..) {
            if bound.matches(&row)? {
                kept.push(row);
            }
        }
        *frag = kept;
    }
    Ok(frags)
}

/// Evaluate named expressions per row.
pub(crate) fn project(
    schema: &Schema,
    frags: &Fragments,
    exprs: &[(String, Expr)],
) -> Result<(Schema, Fragments), QueryError> {
    let bound: Vec<Expr> = exprs
        .iter()
        .map(|(_, e)| e.bind(schema))
        .collect::<Result<_, _>>()?;
    let mut out = vec![Vec::new(); frags.len()];
    for (i, frag) in frags.iter().enumerate() {
        for row in frag {
            let projected: Row = bound
                .iter()
                .map(|e| e.eval(row))
                .collect::<Result<_, _>>()?;
            out[i].push(projected);
        }
    }
    let out_schema = Schema::new(exprs.iter().map(|(n, _)| n.clone()).collect())?;
    Ok((out_schema, out))
}

/// Reject union inputs with mismatched schemas (shared by both engines
/// so they surface the identical typed error).
pub(crate) fn check_union(ls: &Schema, rs: &Schema) -> Result<(), QueryError> {
    if ls != rs {
        return Err(QueryError::Plan(format!(
            "UNION ALL schema mismatch: {ls} vs {rs}"
        )));
    }
    Ok(())
}

/// Bag union: fragments concatenate in place (free).
pub(crate) fn union_all(
    ls: &Schema,
    rs: &Schema,
    mut lfrags: Fragments,
    mut rfrags: Fragments,
) -> Result<Fragments, QueryError> {
    check_union(ls, rs)?;
    for (f, r) in lfrags.iter_mut().zip(rfrags.iter_mut()) {
        f.append(r);
    }
    Ok(lfrags)
}
