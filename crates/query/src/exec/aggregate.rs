//! Grouped aggregation: local partials plus a weighted hash shuffle.
//!
//! Each node pre-aggregates its fragment (one partial per group), then
//! ships `(group, partial)` pairs to the group's owner under the
//! distribution-aware weighted hash — the
//! [`HashGroupBy`](tamp_core::aggregate::HashGroupBy) idea at the row
//! level.

use std::collections::{BTreeMap, HashMap};

use tamp_core::hashing::WeightedHash;
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::exec::{frag_weights, ExecCtx, Fragments};
use crate::plan::AggFunc;
use crate::row::{flatten, Row};

pub(crate) fn aggregate(
    ctx: &mut ExecCtx<'_>,
    frags: Fragments,
    gi: usize,
    mi: usize,
    agg: AggFunc,
) -> Fragments {
    let tree = ctx.tree;
    let weights = frag_weights(tree, &frags, &vec![Vec::new(); frags.len()]);
    let Some(hash) = WeightedHash::new(ctx.seed, &weights) else {
        return vec![Vec::new(); tree.num_nodes()];
    };
    let mut owned: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in tree.compute_nodes() {
        let mut partials: BTreeMap<u64, u64> = BTreeMap::new();
        for row in &frags[v.index()] {
            let lifted = agg.lift(row[mi]);
            partials
                .entry(row[gi])
                .and_modify(|p| *p = agg.combine(*p, lifted))
                .or_insert(lifted);
        }
        let mut by_owner: HashMap<NodeId, Vec<Row>> = HashMap::new();
        for (g, m) in partials {
            let owner = hash.pick(g);
            if owner == v {
                owned[v.index()]
                    .entry(g)
                    .and_modify(|p| *p = agg.combine(*p, m))
                    .or_insert(m);
            } else {
                by_owner.entry(owner).or_default().push(vec![g, m]);
            }
        }
        for (owner, rows) in by_owner {
            outgoing.push((v, owner, flatten(&rows, 2)));
            for row in rows {
                owned[owner.index()]
                    .entry(row[0])
                    .and_modify(|p| *p = agg.combine(*p, row[1]))
                    .or_insert(row[1]);
            }
        }
    }
    ctx.trace.round(|round| {
        for (src, dst, buf) in outgoing {
            round.send(src, &[dst], Rel::S, buf);
        }
    });
    owned
        .into_iter()
        .map(|m| m.into_iter().map(|(g, v)| vec![g, v]).collect())
        .collect()
}
