//! Duplicate elimination: co-locate equal rows, dedup locally.
//!
//! Rows dedup locally first (a duplicate never travels twice), then
//! shuffle under a whole-row hash weighted by current loads, and dedup
//! again at the destination.

use std::collections::HashMap;

use tamp_core::hashing::{mix64, WeightedHash};
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::exec::{frag_weights, ExecCtx, Fragments};
use crate::row::{canonicalize, flatten, Row};

pub(crate) fn distinct(ctx: &mut ExecCtx<'_>, frags: Fragments, width: usize) -> Fragments {
    let tree = ctx.tree;
    let weights = frag_weights(tree, &frags, &vec![Vec::new(); frags.len()]);
    let Some(hash) = WeightedHash::new(ctx.seed ^ 0xD157, &weights) else {
        return vec![Vec::new(); tree.num_nodes()];
    };
    let row_key = |row: &Row| {
        row.iter()
            .fold(0xCBF29CE484222325u64, |h, &c| mix64(h ^ mix64(c)))
    };
    let mut new_frags: Fragments = vec![Vec::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in tree.compute_nodes() {
        let mut by_dst: HashMap<NodeId, Vec<Row>> = HashMap::new();
        // Dedup locally first: duplicates never need to travel twice.
        let mut local = frags[v.index()].clone();
        canonicalize(&mut local);
        local.dedup();
        for row in local {
            let dst = hash.pick(row_key(&row));
            if dst == v {
                new_frags[v.index()].push(row);
            } else {
                by_dst.entry(dst).or_default().push(row);
            }
        }
        for (dst, rows) in by_dst {
            outgoing.push((v, dst, flatten(&rows, width)));
            new_frags[dst.index()].extend(rows);
        }
    }
    ctx.trace.round(|round| {
        for (src, dst, buf) in outgoing {
            round.send(src, &[dst], Rel::R, buf);
        }
    });
    for frag in &mut new_frags {
        canonicalize(frag);
        frag.dedup();
    }
    new_frags
}
