//! Query results: output fragments plus the metered cost breakdown.

use tamp_simulator::cost::Cost;
use tamp_topology::NodeId;

use crate::row::{canonicalize, Row};
use crate::schema::Schema;

/// Estimated-vs-metered cost of one operator, in plan post-order.
#[derive(Clone, Debug, PartialEq)]
pub struct OperatorCost {
    /// Operator label (e.g. `HashJoin g=g`).
    pub op: String,
    /// The strategy that executed the operator's exchange (`None` for
    /// local operators).
    pub strategy: Option<&'static str>,
    /// The planner's §2 estimate for the operator's exchange (0 for
    /// local operators).
    pub estimated: f64,
    /// The metered tuple cost actually charged to the operator's rounds.
    pub actual: f64,
    /// The task's per-edge lower bound on the estimated placement, when
    /// evaluated.
    pub lower_bound: Option<f64>,
    /// Communication rounds the operator used.
    pub rounds: usize,
}

/// The result of a distributed query execution.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// Output row fragments, indexed by node id.
    pub fragments: Vec<Vec<Row>>,
    /// Total metered cost.
    pub cost: Cost,
    /// Per-operator estimated-vs-actual cost, in execution order
    /// (post-order of the plan); operators with no communication report
    /// `0`.
    pub operator_costs: Vec<OperatorCost>,
    /// The planner's total estimated §2 cost for the plan.
    pub estimated_cost: f64,
    /// Communication rounds used.
    pub rounds: usize,
    /// BSP supersteps the backend executed (the cluster adds a terminal
    /// silent superstep on top of `rounds`; the simulator reports
    /// `rounds`). A checkpoint-resumed run counts from superstep 0, so
    /// the value stays comparable with a fault-free run.
    pub supersteps: usize,
    /// `Some(r)` when the execution resumed from a parked checkpoint at
    /// superstep `r` — supersteps `0..r` were *skipped*, only
    /// `supersteps - r` were replayed. `None` for a from-scratch run.
    pub resumed_from: Option<usize>,
    /// The compute-node order along which `OrderBy` range-partitions (the
    /// tree's valid left-to-right order); order-preserving row collection
    /// concatenates fragments along it.
    pub node_order: Vec<NodeId>,
}

impl QueryResult {
    /// All output rows. Order-preserving plans (`OrderBy`, `Limit` above
    /// one) concatenate fragments in execution order; anything else is
    /// canonicalized for stable comparisons.
    pub fn rows(&self, order_preserving: bool) -> Vec<Row> {
        let mut rows: Vec<Row> = self
            .node_order
            .iter()
            .flat_map(|&v| self.fragments[v.index()].iter().cloned())
            .collect();
        if !order_preserving {
            canonicalize(&mut rows);
        }
        rows
    }

    /// Total number of output rows.
    pub fn num_rows(&self) -> usize {
        self.fragments.iter().map(Vec::len).sum()
    }
}
