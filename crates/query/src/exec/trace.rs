//! The exchange trace: the bridge from plan execution to any backend.
//!
//! Executing a [`PhysicalPlan`](crate::physical::PhysicalPlan) is a
//! deterministic function of the catalog, the plan and the seed — §2
//! grants every node the model knowledge (topology, cardinalities) the
//! planner used, so *every* engine can derive the same exchange schedule.
//! The executor exploits that: it first computes the full run as an
//! [`ExecTrace`] — per round, the multiset of `(src, dsts, rel, payload)`
//! sends — and then replays that trace through an
//! [`ExecBackend`](tamp_runtime::backend::ExecBackend):
//!
//! - the **centralized** view drives a simulator [`Session`], one
//!   metered round per trace round;
//! - the **distributed** view hands each compute node a replay
//!   [`NodeProgram`] that emits exactly the trace sends originating at
//!   that node, superstep by superstep.
//!
//! Payloads are recorded once as shared `Arc<[Value]>` slices and flow
//! through both engines without another copy: the centralized replay
//! delivers `Arc` clones per destination
//! ([`RoundCtx::send_shared`](tamp_simulator::RoundCtx::send_shared)),
//! and the distributed replay queues `Arc` clones into each
//! [`Outbox`] — a broadcast to 4096 nodes is one allocation, not 4096.
//!
//! Both engines meter on the shared per-directed-edge ledger, so the two
//! views produce bit-identical [`Cost`](tamp_simulator::cost::Cost)s —
//! the query parity tests assert exactly that.

use std::sync::Arc;

use tamp_runtime::backend::{CentralizedView, ExecJob};
use tamp_runtime::{NodeCtx, NodeProgram, Outbox, Step};
use tamp_simulator::{NodeState, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

/// One multicast recorded by the executor.
#[derive(Clone, Debug)]
pub(crate) struct TraceSend {
    /// Sending compute node.
    pub src: NodeId,
    /// Destination compute nodes (charged along the union of paths).
    pub dsts: Vec<NodeId>,
    /// Relation tag.
    pub rel: Rel,
    /// Shared payload values; every replay and delivery clones the `Arc`,
    /// never the data.
    pub values: Arc<[Value]>,
}

/// The complete, backend-independent communication schedule of one query
/// execution: every send of every round, in order.
#[derive(Clone, Debug, Default)]
pub(crate) struct ExecTrace {
    /// Rounds in execution order; a round may be empty (silent rounds are
    /// still metered, matching the engines).
    pub rounds: Vec<Vec<TraceSend>>,
}

/// Records rounds while the executor walks the physical plan.
#[derive(Debug, Default)]
pub(crate) struct TraceRecorder {
    rounds: Vec<Vec<TraceSend>>,
}

impl TraceRecorder {
    /// Record one communication round; `f` queues the round's sends.
    pub fn round<F: FnOnce(&mut RoundRec)>(&mut self, f: F) {
        let mut rec = RoundRec { sends: Vec::new() };
        f(&mut rec);
        self.rounds.push(rec.sends);
    }

    /// Rounds recorded so far (used for operator cost attribution).
    pub fn rounds_len(&self) -> usize {
        self.rounds.len()
    }

    /// Finish recording.
    pub fn into_trace(self) -> ExecTrace {
        ExecTrace {
            rounds: self.rounds,
        }
    }
}

/// Collects the sends of one round.
pub(crate) struct RoundRec {
    sends: Vec<TraceSend>,
}

impl RoundRec {
    /// Queue a multicast; the payload is captured as one shared
    /// allocation. Empty payloads and destination sets are dropped,
    /// mirroring both engines.
    pub fn send(&mut self, src: NodeId, dsts: &[NodeId], rel: Rel, values: Vec<Value>) {
        if dsts.is_empty() || values.is_empty() {
            return;
        }
        self.sends.push(TraceSend {
            src,
            dsts: dsts.to_vec(),
            rel,
            values: values.into(),
        });
    }
}

/// Flat CSR index over a trace: for `(node, round)`, the indices of the
/// sends originating at `node` in that round. Replaces the previous
/// `Vec<Vec<Vec<u32>>>` — O(nodes × rounds) heap `Vec`s even when almost
/// every cell was empty — with two flat arrays and a single pass to
/// build.
#[derive(Debug)]
struct SrcIndex {
    n_rounds: usize,
    /// `offsets[node * n_rounds + round] .. offsets[.. + 1]` bounds the
    /// cell's slice in `items`.
    offsets: Vec<u32>,
    /// Send indices into `trace.rounds[round]`, grouped by cell.
    items: Vec<u32>,
}

impl SrcIndex {
    fn build(num_nodes: usize, trace: &ExecTrace) -> Self {
        let n_rounds = trace.rounds.len();
        let cells = num_nodes * n_rounds;
        // Counting sort: sizes, prefix sums, then fill.
        let mut offsets = vec![0u32; cells + 1];
        for (r, round) in trace.rounds.iter().enumerate() {
            for send in round {
                offsets[send.src.index() * n_rounds + r + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut items = vec![0u32; *offsets.last().unwrap() as usize];
        let mut cursor = offsets.clone();
        for (r, round) in trace.rounds.iter().enumerate() {
            for (i, send) in round.iter().enumerate() {
                let cell = send.src.index() * n_rounds + r;
                items[cursor[cell] as usize] = i as u32;
                cursor[cell] += 1;
            }
        }
        SrcIndex {
            n_rounds,
            offsets,
            items,
        }
    }

    /// The sends of `node` in `round` (indices into the round's send
    /// list, in issue order).
    fn sends_of(&self, node: NodeId, round: usize) -> &[u32] {
        let cell = node.index() * self.n_rounds + round;
        let (lo, hi) = (self.offsets[cell] as usize, self.offsets[cell + 1] as usize);
        &self.items[lo..hi]
    }
}

/// An [`ExecJob`] replaying an [`ExecTrace`] on either engine.
pub(crate) struct TraceJob {
    name: String,
    trace: Arc<ExecTrace>,
    /// Per-`(node, round)` send index, precomputed once so each replay
    /// program touches only its own sends instead of scanning the whole
    /// round every superstep.
    by_src: Arc<SrcIndex>,
}

impl TraceJob {
    pub fn new(name: impl Into<String>, num_nodes: usize, trace: ExecTrace) -> Self {
        let by_src = SrcIndex::build(num_nodes, &trace);
        TraceJob {
            name: name.into(),
            trace: Arc::new(trace),
            by_src: Arc::new(by_src),
        }
    }
}

impl ExecJob for TraceJob {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn centralized(&self) -> Option<Box<dyn CentralizedView + '_>> {
        Some(Box::new(CentralReplay(&self.trace)))
    }

    fn distributed(&self, v: NodeId) -> Option<Box<dyn NodeProgram>> {
        Some(Box::new(NodeReplay {
            trace: Arc::clone(&self.trace),
            by_src: Arc::clone(&self.by_src),
            node: v,
        }))
    }
}

/// Centralized replay: one [`Session`] round per trace round.
struct CentralReplay<'t>(&'t ExecTrace);

impl CentralizedView for CentralReplay<'_> {
    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError> {
        for round in &self.0.rounds {
            session.round(|r| {
                for s in round {
                    r.send_shared(s.src, &s.dsts, s.rel, Arc::clone(&s.values))?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

/// Distributed replay: node `node` emits its own sends each superstep and
/// halts once the trace is exhausted.
struct NodeReplay {
    trace: Arc<ExecTrace>,
    by_src: Arc<SrcIndex>,
    node: NodeId,
}

impl NodeProgram for NodeReplay {
    fn round(&mut self, ctx: &NodeCtx<'_>, _state: &mut NodeState, out: &mut Outbox) -> Step {
        if ctx.round < self.trace.rounds.len() {
            for &i in self.by_src.sends_of(self.node, ctx.round) {
                let s = &self.trace.rounds[ctx.round][i as usize];
                out.send(&s.dsts, s.rel, Arc::clone(&s.values));
            }
            Step::Continue
        } else {
            Step::Halt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_index_groups_by_node_and_round() {
        let mk = |src: u32, n: usize| TraceSend {
            src: NodeId(src),
            dsts: vec![NodeId(0)],
            rel: Rel::R,
            values: vec![n as u64].into(),
        };
        let trace = ExecTrace {
            rounds: vec![vec![mk(2, 0), mk(0, 1), mk(2, 2)], vec![], vec![mk(1, 3)]],
        };
        let idx = SrcIndex::build(3, &trace);
        assert_eq!(idx.sends_of(NodeId(2), 0), &[0, 2]);
        assert_eq!(idx.sends_of(NodeId(0), 0), &[1]);
        assert_eq!(idx.sends_of(NodeId(1), 0), &[] as &[u32]);
        assert_eq!(idx.sends_of(NodeId(0), 1), &[] as &[u32]);
        assert_eq!(idx.sends_of(NodeId(1), 2), &[0]);
    }
}
