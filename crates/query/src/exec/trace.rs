//! The exchange trace: the bridge from plan execution to any backend.
//!
//! Executing a [`PhysicalPlan`](crate::physical::PhysicalPlan) is a
//! deterministic function of the catalog, the plan and the seed — §2
//! grants every node the model knowledge (topology, cardinalities) the
//! planner used, so *every* engine can derive the same exchange schedule.
//! The executor exploits that: it first computes the full run as an
//! [`ExecTrace`] — per round, the multiset of `(src, dsts, rel, payload)`
//! sends — and then replays that trace through an
//! [`ExecBackend`](tamp_runtime::backend::ExecBackend):
//!
//! - the **centralized** view drives a simulator [`Session`], one
//!   metered round per trace round;
//! - the **distributed** view hands each compute node a replay
//!   [`NodeProgram`] that emits exactly the trace sends originating at
//!   that node, superstep by superstep.
//!
//! Both engines meter on the shared per-directed-edge ledger, so the two
//! views produce bit-identical [`Cost`](tamp_simulator::cost::Cost)s —
//! the query parity tests assert exactly that.

use std::sync::Arc;

use tamp_runtime::backend::{CentralizedView, ExecJob};
use tamp_runtime::{NodeCtx, NodeProgram, Outbox, Step};
use tamp_simulator::{NodeState, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

/// One multicast recorded by the executor.
#[derive(Clone, Debug)]
pub(crate) struct TraceSend {
    /// Sending compute node.
    pub src: NodeId,
    /// Destination compute nodes (charged along the union of paths).
    pub dsts: Vec<NodeId>,
    /// Relation tag.
    pub rel: Rel,
    /// Payload values.
    pub values: Vec<Value>,
}

/// The complete, backend-independent communication schedule of one query
/// execution: every send of every round, in order.
#[derive(Clone, Debug, Default)]
pub(crate) struct ExecTrace {
    /// Rounds in execution order; a round may be empty (silent rounds are
    /// still metered, matching the engines).
    pub rounds: Vec<Vec<TraceSend>>,
}

/// Records rounds while the executor walks the physical plan.
#[derive(Debug, Default)]
pub(crate) struct TraceRecorder {
    rounds: Vec<Vec<TraceSend>>,
}

impl TraceRecorder {
    /// Record one communication round; `f` queues the round's sends.
    pub fn round<F: FnOnce(&mut RoundRec)>(&mut self, f: F) {
        let mut rec = RoundRec { sends: Vec::new() };
        f(&mut rec);
        self.rounds.push(rec.sends);
    }

    /// Rounds recorded so far (used for operator cost attribution).
    pub fn rounds_len(&self) -> usize {
        self.rounds.len()
    }

    /// Finish recording.
    pub fn into_trace(self) -> ExecTrace {
        ExecTrace {
            rounds: self.rounds,
        }
    }
}

/// Collects the sends of one round.
pub(crate) struct RoundRec {
    sends: Vec<TraceSend>,
}

impl RoundRec {
    /// Queue a multicast. Empty payloads and destination sets are
    /// dropped, mirroring both engines.
    pub fn send(&mut self, src: NodeId, dsts: &[NodeId], rel: Rel, values: &[Value]) {
        if dsts.is_empty() || values.is_empty() {
            return;
        }
        self.sends.push(TraceSend {
            src,
            dsts: dsts.to_vec(),
            rel,
            values: values.to_vec(),
        });
    }
}

/// An [`ExecJob`] replaying an [`ExecTrace`] on either engine.
pub(crate) struct TraceJob {
    name: String,
    trace: Arc<ExecTrace>,
    /// `by_src[node][round]` = indices into `trace.rounds[round]` of the
    /// sends originating at `node`, precomputed once so each replay
    /// program touches only its own sends instead of scanning the whole
    /// round every superstep.
    by_src: Arc<Vec<Vec<Vec<u32>>>>,
}

impl TraceJob {
    pub fn new(name: impl Into<String>, num_nodes: usize, trace: ExecTrace) -> Self {
        let mut by_src = vec![vec![Vec::new(); trace.rounds.len()]; num_nodes];
        for (r, round) in trace.rounds.iter().enumerate() {
            for (i, send) in round.iter().enumerate() {
                by_src[send.src.index()][r].push(i as u32);
            }
        }
        TraceJob {
            name: name.into(),
            trace: Arc::new(trace),
            by_src: Arc::new(by_src),
        }
    }
}

impl ExecJob for TraceJob {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn centralized(&self) -> Option<Box<dyn CentralizedView + '_>> {
        Some(Box::new(CentralReplay(&self.trace)))
    }

    fn distributed(&self, v: NodeId) -> Option<Box<dyn NodeProgram>> {
        Some(Box::new(NodeReplay {
            trace: Arc::clone(&self.trace),
            by_src: Arc::clone(&self.by_src),
            node: v,
        }))
    }
}

/// Centralized replay: one [`Session`] round per trace round.
struct CentralReplay<'t>(&'t ExecTrace);

impl CentralizedView for CentralReplay<'_> {
    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError> {
        for round in &self.0.rounds {
            session.round(|r| {
                for s in round {
                    r.send(s.src, &s.dsts, s.rel, &s.values)?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

/// Distributed replay: node `node` emits its own sends each superstep and
/// halts once the trace is exhausted.
struct NodeReplay {
    trace: Arc<ExecTrace>,
    by_src: Arc<Vec<Vec<Vec<u32>>>>,
    node: NodeId,
}

impl NodeProgram for NodeReplay {
    fn round(&mut self, ctx: &NodeCtx<'_>, _state: &mut NodeState, out: &mut Outbox) -> Step {
        if ctx.round < self.trace.rounds.len() {
            for &i in &self.by_src[self.node.index()][ctx.round] {
                let s = &self.trace.rounds[ctx.round][i as usize];
                out.send(&s.dsts, s.rel, s.values.clone());
            }
            Step::Continue
        } else {
            Step::Halt
        }
    }
}
