//! Join operators: the exchange chosen at plan time, then a local probe.
//!
//! The equi-join executes whichever exchange the planner selected —
//! weighted repartition (Algorithm 2), uniform repartition (the MPC
//! baseline) or small-side broadcast (the `V_β` idea) — and the cross
//! join always broadcasts the smaller side to the big side's holders
//! (the star-case strategy of §4.5).

use std::collections::HashMap;

use tamp_core::hashing::{mix64, WeightedHash};
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::exec::{frag_weights, ExecCtx, Fragments};
use crate::physical::ExchangeKind;
use crate::row::{flatten, Row};

/// The nodes holding rows of `frags` — the broadcast destinations.
fn holders_of(ctx: &ExecCtx<'_>, frags: &Fragments) -> Vec<NodeId> {
    ctx.tree
        .compute_nodes()
        .iter()
        .copied()
        .filter(|&v| !frags[v.index()].is_empty())
        .collect()
}

/// One-round replication of `small_frags` (rows of `small_w` values) to
/// every holder: records the multicast round and returns the replicated
/// fragments (every holder ends up with the full small side).
fn broadcast_small(
    ctx: &mut ExecCtx<'_>,
    small_frags: &Fragments,
    small_w: usize,
    holders: &[NodeId],
) -> Fragments {
    let tree = ctx.tree;
    ctx.trace.round(|round| {
        for &v in tree.compute_nodes() {
            let local = &small_frags[v.index()];
            if local.is_empty() || holders.is_empty() {
                continue;
            }
            round.send(v, holders, Rel::R, flatten(local, small_w));
        }
    });
    let mut small_new: Fragments = vec![Vec::new(); tree.num_nodes()];
    for &h in holders {
        for frag in small_frags.iter() {
            small_new[h.index()].extend(frag.iter().cloned());
        }
    }
    small_new
}

/// Execute a hash join: exchange both sides per `kind`, then probe
/// locally.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_join(
    ctx: &mut ExecCtx<'_>,
    kind: ExchangeKind,
    lfrags: Fragments,
    rfrags: Fragments,
    li: usize,
    ri: usize,
    lw: usize,
    rw: usize,
) -> Fragments {
    let tree = ctx.tree;
    let (l_new, r_new) = match kind {
        ExchangeKind::BroadcastSmall => {
            let l_total: usize = lfrags.iter().map(Vec::len).sum();
            let r_total: usize = rfrags.iter().map(Vec::len).sum();
            let left_is_small = l_total <= r_total;
            let (small_frags, small_w, big_frags) = if left_is_small {
                (&lfrags, lw, &rfrags)
            } else {
                (&rfrags, rw, &lfrags)
            };
            // Replicate the small side to every node holding big rows.
            let holders = holders_of(ctx, big_frags);
            let small_new = broadcast_small(ctx, small_frags, small_w, &holders);
            if left_is_small {
                (small_new, rfrags)
            } else {
                (lfrags, small_new)
            }
        }
        ExchangeKind::WeightedRepartition | ExchangeKind::UniformRepartition => {
            let router: Box<dyn Fn(u64) -> NodeId> = match kind {
                ExchangeKind::WeightedRepartition => {
                    let weights = frag_weights(tree, &lfrags, &rfrags);
                    match WeightedHash::new(ctx.seed, &weights) {
                        Some(h) => Box::new(move |key| h.pick(key)),
                        // No rows anywhere: the join output is empty.
                        None => return vec![Vec::new(); tree.num_nodes()],
                    }
                }
                _ => {
                    let vc: Vec<NodeId> = tree.compute_nodes().to_vec();
                    let seed = ctx.seed;
                    Box::new(move |key| vc[(mix64(key ^ seed) % vc.len() as u64) as usize])
                }
            };
            let l_new = shuffle_by_key(ctx, &lfrags, li, lw, Rel::R, &router);
            let r_new = shuffle_by_key(ctx, &rfrags, ri, rw, Rel::S, &router);
            (l_new, r_new)
        }
        other => unreachable!("{other} is not a join exchange"),
    };

    // Local probe join.
    let mut out: Fragments = vec![Vec::new(); tree.num_nodes()];
    for &v in tree.compute_nodes() {
        let mut by_key: HashMap<u64, Vec<&Row>> = HashMap::new();
        for row in &r_new[v.index()] {
            by_key.entry(row[ri]).or_default().push(row);
        }
        for lrow in &l_new[v.index()] {
            if let Some(matches) = by_key.get(&lrow[li]) {
                for rrow in matches {
                    let mut joined = lrow.clone();
                    joined.extend_from_slice(rrow);
                    out[v.index()].push(joined);
                }
            }
        }
    }
    out
}

/// One-round repartition of row fragments by a key router.
pub(crate) fn shuffle_by_key(
    ctx: &mut ExecCtx<'_>,
    frags: &Fragments,
    key_idx: usize,
    width: usize,
    rel: Rel,
    router: &dyn Fn(u64) -> NodeId,
) -> Fragments {
    let tree = ctx.tree;
    let mut new_frags: Fragments = vec![Vec::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in tree.compute_nodes() {
        let mut by_dst: HashMap<NodeId, Vec<Row>> = HashMap::new();
        for row in &frags[v.index()] {
            let dst = router(row[key_idx]);
            if dst == v {
                new_frags[v.index()].push(row.clone());
            } else {
                by_dst.entry(dst).or_default().push(row.clone());
            }
        }
        for (dst, rows) in by_dst {
            outgoing.push((v, dst, flatten(&rows, width)));
            new_frags[dst.index()].extend(rows);
        }
    }
    ctx.trace.round(|round| {
        for (src, dst, buf) in outgoing {
            round.send(src, &[dst], rel, buf);
        }
    });
    new_frags
}

/// Execute a cross join: broadcast the smaller side to the nodes holding
/// rows of the larger side, then pair locally.
pub(crate) fn cross_join(
    ctx: &mut ExecCtx<'_>,
    lfrags: Fragments,
    rfrags: Fragments,
    lw: usize,
    rw: usize,
) -> Fragments {
    let tree = ctx.tree;
    let l_total: usize = lfrags.iter().map(Vec::len).sum();
    let r_total: usize = rfrags.iter().map(Vec::len).sum();
    let left_is_small = l_total * lw <= r_total * rw;
    let (small_frags, small_w, big_frags) = if left_is_small {
        (&lfrags, lw, &rfrags)
    } else {
        (&rfrags, rw, &lfrags)
    };
    let holders = holders_of(ctx, big_frags);
    let small_new = broadcast_small(ctx, small_frags, small_w, &holders);
    let mut out: Fragments = vec![Vec::new(); tree.num_nodes()];
    for &h in &holders {
        for big_row in &big_frags[h.index()] {
            for small_row in &small_new[h.index()] {
                let joined = if left_is_small {
                    let mut j = small_row.clone();
                    j.extend_from_slice(big_row);
                    j
                } else {
                    let mut j = big_row.clone();
                    j.extend_from_slice(small_row);
                    j
                };
                out[h.index()].push(joined);
            }
        }
    }
    out
}
