//! Limit: a bounded gather to the first compute node.
//!
//! Each node contributes at most `n` rows (its first `n` in local order —
//! canonicalized unless the input preserves a global order), so the
//! gather ships `O(n·|V_C|)` rows regardless of input size.

use tamp_core::sorting::valid_order;
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::exec::{ExecCtx, Fragments};
use crate::row::{canonicalize, flatten, Row};

pub(crate) fn limit(
    ctx: &mut ExecCtx<'_>,
    frags: Fragments,
    n: usize,
    width: usize,
    order_preserving: bool,
) -> Fragments {
    let tree = ctx.tree;
    let order = valid_order(tree);
    let target = order[0];
    // Each node contributes at most n rows (its first n in local order).
    let mut contributions: Vec<(NodeId, Vec<Row>)> = Vec::new();
    for &v in &order {
        let mut local = frags[v.index()].clone();
        if !order_preserving {
            canonicalize(&mut local);
        }
        local.truncate(n);
        contributions.push((v, local));
    }
    ctx.trace.round(|round| {
        for (v, rows) in &contributions {
            if *v != target && !rows.is_empty() {
                round.send(*v, &[target], Rel::R, flatten(rows, width));
            }
        }
    });
    // Concatenate in node order (global order for order-preserving
    // inputs), else canonicalize, then cut.
    let mut all: Vec<Row> = contributions.into_iter().flat_map(|(_, r)| r).collect();
    if !order_preserving {
        canonicalize(&mut all);
    }
    all.truncate(n);
    let mut out: Fragments = vec![Vec::new(); tree.num_nodes()];
    out[target.index()] = all;
    out
}
