//! Execution options: strategy forcing, seeding, and the batch-engine
//! knobs.

/// The default [`ExecOptions::batch_size`]: 1024 rows per batch keeps a
/// typical batch's columns inside the L2 cache while amortizing the
/// per-batch kernel dispatch to well under a nanosecond per row.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Which engine evaluates the plan's operators. Both engines produce
/// bit-identical rows and metered `edge_totals` (the parity proptests
/// assert it); they differ only in speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Column-at-a-time kernels over
    /// [`RecordBatch`](crate::batch::RecordBatch)es — the default engine.
    #[default]
    Columnar,
    /// The row-at-a-time reference interpreter (one `Vec<Value>` per
    /// row). Kept as the oracle the batch engine is tested against.
    Tuple,
}

/// How equi-joins repartition their inputs — the legacy strategy knob,
/// kept as a shorthand for the common forced choices. Forcing *any*
/// registered strategy by name (including third-party ones) goes through
/// [`StrategyForce`] /
/// [`QueryContext::with_strategy`](crate::context::QueryContext::with_strategy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum JoinStrategy {
    /// Let the planner price every registered join strategy on the §2
    /// cost model and keep the cheapest (see [`crate::physical::lower`]).
    #[default]
    Auto,
    /// Force `weighted-repartition` (the distribution-aware choice).
    Weighted,
    /// Force `uniform-repartition` (the topology-agnostic MPC baseline).
    Uniform,
    /// Force `broadcast-small` (replicate the smaller side).
    BroadcastSmall,
}

/// Per-operator forced strategy names (`None` = cost-based choice). The
/// names resolve against the session's registry at plan time; unknown
/// names surface as
/// [`QueryError::UnknownStrategy`](crate::error::QueryError).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct StrategyForce {
    /// Force the equi-join strategy (overrides [`JoinStrategy`]).
    pub join: Option<&'static str>,
    /// Force the cross-join strategy.
    pub cross: Option<&'static str>,
    /// Force the sort strategy.
    pub sort: Option<&'static str>,
    /// Force the aggregate strategy.
    pub aggregate: Option<&'static str>,
}

/// Execution options.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExecOptions {
    /// Join strategy shorthand.
    pub join: JoinStrategy,
    /// Seed for hashing and sampling.
    pub seed: u64,
    /// Per-operator forced strategies (by registry name).
    pub force: StrategyForce,
    /// Rows per [`RecordBatch`](crate::batch::RecordBatch) on the batch
    /// engine, and the row granularity of exchange sends on both engines
    /// (defaults to [`DEFAULT_BATCH_SIZE`]). Zero is rejected at plan
    /// time as [`QueryError::InvalidBatchSize`](crate::error::QueryError)
    /// — metered costs are invariant to the value, so any positive size
    /// is safe.
    pub batch_size: usize,
    /// Which engine runs the plan (columnar batches by default).
    pub mode: ExecMode,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            join: JoinStrategy::default(),
            seed: 0,
            force: StrategyForce::default(),
            batch_size: DEFAULT_BATCH_SIZE,
            mode: ExecMode::default(),
        }
    }
}

impl ExecOptions {
    /// The effective forced join-strategy name: an explicit
    /// [`StrategyForce::join`] wins over the [`JoinStrategy`] shorthand.
    pub(crate) fn forced_join(&self) -> Option<&'static str> {
        self.force.join.or(match self.join {
            JoinStrategy::Auto => None,
            JoinStrategy::Weighted => Some("weighted-repartition"),
            JoinStrategy::Uniform => Some("uniform-repartition"),
            JoinStrategy::BroadcastSmall => Some("broadcast-small"),
        })
    }
}
