//! Vectorized expression evaluation with selection masking.
//!
//! Evaluates a bound [`Expr`] column-at-a-time over a [`RecordBatch`],
//! one tight loop per expression node instead of one interpreter
//! dispatch per row. The selection argument carries the rows a value is
//! demanded for, which preserves the tuple interpreter's short-circuit
//! semantics exactly:
//!
//! - `And` evaluates its right side only on rows whose left side is
//!   nonzero (`Or` only where it is zero), so errors in the skipped
//!   branch stay suppressed — just as `&&` / `||` skip them per row;
//! - `Div` / `Mod` evaluate the *divisor first* and raise
//!   [`QueryError::DivideByZero`] iff some selected row's divisor is
//!   zero, before touching the numerator — mirroring the tuple
//!   interpreter's evaluation order;
//! - an empty selection evaluates nothing (a filter over an empty
//!   fragment cannot error, on either engine).

use tamp_simulator::Value;

use crate::batch::RecordBatch;
use crate::error::QueryError;
use crate::expr::Expr;

/// The rows an expression value is demanded for, in batch row order.
pub(crate) enum Sel<'a> {
    /// Every row of the batch.
    All(usize),
    /// The rows at these batch indices (strictly increasing).
    Idx(&'a [usize]),
}

impl Sel<'_> {
    fn len(&self) -> usize {
        match self {
            Sel::All(n) => *n,
            Sel::Idx(idx) => idx.len(),
        }
    }

    /// The batch row index of the `k`-th selected row.
    fn row(&self, k: usize) -> usize {
        match self {
            Sel::All(_) => k,
            Sel::Idx(idx) => idx[k],
        }
    }
}

/// Evaluate a bound expression over the selected rows; the result is
/// dense, aligned with the selection (`out[k]` is the value on row
/// `sel.row(k)`).
pub(crate) fn eval(e: &Expr, batch: &RecordBatch, sel: &Sel<'_>) -> Result<Vec<Value>, QueryError> {
    let n = sel.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let bin = |l: &Expr, r: &Expr| -> Result<(Vec<Value>, Vec<Value>), QueryError> {
        Ok((eval(l, batch, sel)?, eval(r, batch, sel)?))
    };
    Ok(match e {
        Expr::Col(name) => {
            return Err(QueryError::UnknownColumn(format!("{name} (unbound)")));
        }
        Expr::ColIdx(i) => {
            if *i >= batch.width() {
                return Err(QueryError::ColumnOutOfRange {
                    index: *i,
                    width: batch.width(),
                });
            }
            let col = batch.col(*i);
            match sel {
                Sel::All(_) => col.to_vec(),
                Sel::Idx(idx) => idx.iter().map(|&k| col[k]).collect(),
            }
        }
        Expr::Lit(v) => vec![*v; n],
        Expr::Add(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| x.saturating_add(y))
        }
        Expr::Sub(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| x.saturating_sub(y))
        }
        Expr::Mul(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| x.saturating_mul(y))
        }
        Expr::Div(l, r) => {
            let d = eval(r, batch, sel)?;
            if d.contains(&0) {
                return Err(QueryError::DivideByZero);
            }
            let a = eval(l, batch, sel)?;
            zip(a, &d, |x, y| x / y)
        }
        Expr::Mod(l, r) => {
            let d = eval(r, batch, sel)?;
            if d.contains(&0) {
                return Err(QueryError::DivideByZero);
            }
            let a = eval(l, batch, sel)?;
            zip(a, &d, |x, y| x % y)
        }
        Expr::Eq(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| (x == y) as Value)
        }
        Expr::Ne(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| (x != y) as Value)
        }
        Expr::Lt(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| (x < y) as Value)
        }
        Expr::Le(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| (x <= y) as Value)
        }
        Expr::Gt(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| (x > y) as Value)
        }
        Expr::Ge(l, r) => {
            let (a, b) = bin(l, r)?;
            zip(a, &b, |x, y| (x >= y) as Value)
        }
        Expr::And(l, r) => {
            let lv = eval(l, batch, sel)?;
            // Right side is demanded only where the left is nonzero.
            let sub: Vec<usize> = (0..n).filter(|&k| lv[k] != 0).map(|k| sel.row(k)).collect();
            let rv = eval(r, batch, &Sel::Idx(&sub))?;
            let mut out = vec![0; n];
            let mut j = 0;
            for (k, &x) in lv.iter().enumerate() {
                if x != 0 {
                    out[k] = (rv[j] != 0) as Value;
                    j += 1;
                }
            }
            out
        }
        Expr::Or(l, r) => {
            let lv = eval(l, batch, sel)?;
            // Right side is demanded only where the left is zero.
            let sub: Vec<usize> = (0..n).filter(|&k| lv[k] == 0).map(|k| sel.row(k)).collect();
            let rv = eval(r, batch, &Sel::Idx(&sub))?;
            let mut out = vec![0; n];
            let mut j = 0;
            for (k, &x) in lv.iter().enumerate() {
                if x != 0 {
                    out[k] = 1;
                } else {
                    out[k] = (rv[j] != 0) as Value;
                    j += 1;
                }
            }
            out
        }
        Expr::Not(e) => {
            let v = eval(e, batch, sel)?;
            v.into_iter().map(|x| (x == 0) as Value).collect()
        }
    })
}

fn zip(mut a: Vec<Value>, b: &[Value], f: impl Fn(Value, Value) -> Value) -> Vec<Value> {
    for (x, &y) in a.iter_mut().zip(b) {
        *x = f(*x, y);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::row::Row;
    use crate::schema::Schema;

    fn batch() -> (Schema, RecordBatch) {
        let s = Schema::new(vec!["a", "b"]).unwrap();
        let rows: Vec<Row> = (0..8u64).map(|i| vec![i, 8 - i]).collect();
        (s, RecordBatch::from_rows(&rows, 2))
    }

    fn tuple_eval(e: &Expr, b: &RecordBatch) -> Vec<Result<Value, QueryError>> {
        b.to_rows().iter().map(|r| e.eval(r)).collect()
    }

    #[test]
    fn matches_the_tuple_interpreter_per_row() {
        let (s, b) = batch();
        for e in [
            col("a").add(lit(3)).mul(col("b")),
            col("a").sub(lit(4)),
            col("a").lt(col("b")).and(col("b").rem(lit(3)).eq(lit(0))),
            col("a").ge(lit(4)).or(col("b").le(lit(2))),
            col("a").eq(lit(2)).not(),
        ] {
            let bound = e.bind(&s).unwrap();
            let got = eval(&bound, &b, &Sel::All(b.num_rows())).unwrap();
            let want: Vec<Value> = tuple_eval(&bound, &b)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(got, want, "{e}");
        }
    }

    #[test]
    fn short_circuit_masks_suppress_divide_errors() {
        let (s, b) = batch();
        // `a != 0 AND b % a >= 0` divides by zero only where the guard
        // already rejected the row (a = 0), so neither engine errors.
        let e = col("a").ne(lit(0)).and(col("b").rem(col("a")).ge(lit(0)));
        let bound = e.bind(&s).unwrap();
        let got = eval(&bound, &b, &Sel::All(b.num_rows())).unwrap();
        let want: Vec<Value> = tuple_eval(&bound, &b)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(got, want);
        // Without the guard, both engines raise the typed error.
        let e = col("b").rem(col("a"));
        let bound = e.bind(&s).unwrap();
        assert_eq!(
            eval(&bound, &b, &Sel::All(b.num_rows())).unwrap_err(),
            QueryError::DivideByZero
        );
    }

    #[test]
    fn empty_selection_evaluates_nothing() {
        let (s, b) = batch();
        let bound = col("a").div(lit(0)).bind(&s).unwrap();
        assert_eq!(
            eval(&bound, &b, &Sel::Idx(&[])).unwrap(),
            Vec::<Value>::new()
        );
        assert!(eval(&bound, &b, &Sel::All(b.num_rows())).is_err());
    }

    #[test]
    fn out_of_range_columns_are_typed() {
        let (_, b) = batch();
        assert_eq!(
            eval(&Expr::ColIdx(5), &b, &Sel::All(b.num_rows())).unwrap_err(),
            QueryError::ColumnOutOfRange { index: 5, width: 2 }
        );
    }
}
