//! The columnar batch engine: the default plan walker.
//!
//! Fragments flow between operators as per-node lists of
//! [`RecordBatch`](crate::batch::RecordBatch)es. Local operators run the
//! per-operator kernels ([`filter`], [`project`]); communicating
//! operators hand batch fragments to their chosen strategy's
//! [`trace_batch`](crate::physical::strategy::PhysicalStrategy::trace_batch)
//! — columnar-native for the hash-join strategies, a lossless row shim
//! everywhere else — so the exchange schedule and the metered ledgers
//! are bit-identical to the tuple engine's.

pub(crate) mod eval;
pub(crate) mod filter;
pub(crate) mod project;

use crate::batch::BatchFragments;
use crate::error::QueryError;
use crate::exec::{local, ExecCtx};
use crate::physical::strategy::BatchInput;
use crate::physical::{PhysicalOp, PhysicalPlan};
use crate::schema::Schema;

/// Execute one physical operator (post-order) on batch fragments,
/// recording its rounds and mark.
pub(crate) fn exec_batches(
    ctx: &mut ExecCtx<'_>,
    plan: &PhysicalPlan,
) -> Result<(Schema, BatchFragments), QueryError> {
    let result = match &plan.op {
        PhysicalOp::TableScan { table } => {
            let t = ctx.catalog.table(table)?;
            // One whole-fragment batch per node, prebuilt at catalog
            // registration: the scan is a per-node `Arc` clone. Batch
            // granularity governs *exchange* chunking (`TraceBuilder`
            // splits every send at `batch_size` rows), not the in-memory
            // batch extent, so the ledgers are unaffected.
            (t.schema.clone(), t.scan_batches())
        }
        PhysicalOp::Filter { input, predicate } => {
            let (schema, frags) = exec_batches(ctx, input)?;
            let frags = filter::filter(&schema, frags, predicate)?;
            (schema, frags)
        }
        PhysicalOp::Project { input, exprs } => {
            let (schema, frags) = exec_batches(ctx, input)?;
            project::project(&schema, &frags, exprs)?
        }
        PhysicalOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            exchange,
        } => {
            let (ls, lfrags) = exec_batches(ctx, left)?;
            let (rs, rfrags) = exec_batches(ctx, right)?;
            let li = ls.index_of(left_key)?;
            let ri = rs.index_of(right_key)?;
            let out_schema = ls.join(&rs, "r_")?;
            let frags = ctx.run_strategy_batch(
                exchange,
                BatchInput::Join {
                    left: lfrags,
                    right: rfrags,
                    left_key: li,
                    right_key: ri,
                    left_width: ls.width(),
                    right_width: rs.width(),
                },
            )?;
            (out_schema, frags)
        }
        PhysicalOp::CrossJoin {
            left,
            right,
            exchange,
        } => {
            let (ls, lfrags) = exec_batches(ctx, left)?;
            let (rs, rfrags) = exec_batches(ctx, right)?;
            let out_schema = ls.join(&rs, "r_")?;
            let frags = ctx.run_strategy_batch(
                exchange,
                BatchInput::CrossJoin {
                    left: lfrags,
                    right: rfrags,
                    left_width: ls.width(),
                    right_width: rs.width(),
                },
            )?;
            (out_schema, frags)
        }
        PhysicalOp::Sort {
            input,
            key,
            exchange,
        } => {
            let (schema, frags) = exec_batches(ctx, input)?;
            let ki = schema.index_of(key)?;
            let frags = ctx.run_strategy_batch(
                exchange,
                BatchInput::Sort {
                    input: frags,
                    key: ki,
                    width: schema.width(),
                },
            )?;
            (schema, frags)
        }
        PhysicalOp::HashAggregate {
            input,
            group_by,
            agg,
            measure,
            exchange,
        } => {
            let (schema, frags) = exec_batches(ctx, input)?;
            let gi = schema.index_of(group_by)?;
            let mi = schema.index_of(measure)?;
            let frags = ctx.run_strategy_batch(
                exchange,
                BatchInput::Aggregate {
                    input: frags,
                    group: gi,
                    measure: mi,
                    agg: *agg,
                },
            )?;
            let out = Schema::new(vec![
                group_by.clone(),
                format!("{}_{}", agg.name(), measure),
            ])?;
            (out, frags)
        }
        PhysicalOp::Limit {
            input,
            n,
            order_preserving,
            exchange,
        } => {
            let (schema, frags) = exec_batches(ctx, input)?;
            let frags = ctx.run_strategy_batch(
                exchange,
                BatchInput::Limit {
                    input: frags,
                    n: *n,
                    width: schema.width(),
                    order_preserving: *order_preserving,
                },
            )?;
            (schema, frags)
        }
        PhysicalOp::Distinct { input, exchange } => {
            let (schema, frags) = exec_batches(ctx, input)?;
            let frags = ctx.run_strategy_batch(
                exchange,
                BatchInput::Distinct {
                    input: frags,
                    width: schema.width(),
                },
            )?;
            (schema, frags)
        }
        PhysicalOp::UnionAll { left, right } => {
            let (ls, mut lfrags) = exec_batches(ctx, left)?;
            let (rs, mut rfrags) = exec_batches(ctx, right)?;
            local::check_union(&ls, &rs)?;
            for (f, r) in lfrags.iter_mut().zip(rfrags.iter_mut()) {
                f.append(r);
            }
            (ls, lfrags)
        }
    };
    ctx.mark(plan);
    Ok(result)
}
