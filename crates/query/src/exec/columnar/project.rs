//! The columnar projection kernel.

use std::sync::Arc;

use tamp_simulator::Value;

use crate::batch::{BatchFragments, RecordBatch};
use crate::error::QueryError;
use crate::exec::columnar::eval::{eval, Sel};
use crate::expr::Expr;
use crate::schema::Schema;

/// Evaluate named expressions column-at-a-time: each output column is
/// one vectorized evaluation over the batch — no per-row allocation.
pub(crate) fn project(
    schema: &Schema,
    frags: &BatchFragments,
    exprs: &[(String, Expr)],
) -> Result<(Schema, BatchFragments), QueryError> {
    let bound: Vec<Expr> = exprs
        .iter()
        .map(|(_, e)| e.bind(schema))
        .collect::<Result<_, _>>()?;
    let mut out = Vec::with_capacity(frags.len());
    for node in frags {
        let mut batches = Vec::with_capacity(node.len());
        for b in node {
            let cols: Vec<Arc<[Value]>> = bound
                .iter()
                .map(|e| eval(e, b, &Sel::All(b.num_rows())).map(Arc::from))
                .collect::<Result<_, _>>()?;
            batches.push(RecordBatch::from_cols_rows(cols, b.num_rows()));
        }
        out.push(batches);
    }
    let out_schema = Schema::new(exprs.iter().map(|(n, _)| n.clone()).collect())?;
    Ok((out_schema, out))
}
