//! The columnar filter kernel.

use crate::batch::BatchFragments;
use crate::error::QueryError;
use crate::exec::columnar::eval::{eval, Sel};
use crate::expr::Expr;
use crate::schema::Schema;

/// Keep rows matching `predicate` (bound once against `schema`): one
/// vectorized predicate evaluation plus one gather per batch. Fully
/// selected batches pass through untouched (a refcount bump per column).
pub(crate) fn filter(
    schema: &Schema,
    frags: BatchFragments,
    predicate: &Expr,
) -> Result<BatchFragments, QueryError> {
    let bound = predicate.bind(schema)?;
    let mut out = Vec::with_capacity(frags.len());
    for node in frags {
        let mut kept = Vec::new();
        for b in node {
            let v = eval(&bound, &b, &Sel::All(b.num_rows()))?;
            let idx: Vec<usize> = (0..b.num_rows()).filter(|&k| v[k] != 0).collect();
            if idx.len() == b.num_rows() {
                if !idx.is_empty() {
                    kept.push(b);
                }
            } else if !idx.is_empty() {
                kept.push(b.gather(&idx));
            }
        }
        out.push(kept);
    }
    Ok(out)
}
