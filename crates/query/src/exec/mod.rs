//! The backend-generic distributed executor.
//!
//! Execution happens in two stages. First the executor walks a
//! [`PhysicalPlan`] over the catalog's fragments; every communicating
//! operator is executed by the [`PhysicalStrategy`] its exchange chose at
//! plan time, which computes the operator's output *and* emits its
//! communication schedule — per round, the exact `(src, dsts, rel,
//! payload)` sends (see [`crate::physical::strategy`]). Local operators
//! (`Filter` / `Project` / `UnionAll`) move no data and record no rounds.
//!
//! Two engines perform the walk, selected by [`ExecMode`]:
//!
//! - the **columnar batch engine** (the `columnar` module, the default)
//!   threads [`RecordBatch`](crate::batch::RecordBatch)es through
//!   vectorized per-operator kernels — one tight loop per expression
//!   node, no per-row allocation;
//! - the **tuple engine** (the `tuple` + `local` modules) interprets
//!   one `Vec<Value>` row at a time, and serves as the oracle the batch
//!   kernels are tested against.
//!
//! Then the concatenated schedule replays through any
//! [`ExecBackend`] as a [`tamp_runtime::ScheduleJob`] — the centralized
//! simulator or the pooled BSP cluster — which meters it on the shared
//! per-directed-edge ledger. Because the schedule is derived once from
//! shared model knowledge, both engines move bit-identical traffic; the
//! parity tests assert equal rows and `edge_totals` across backends
//! *and* across engines, for every batch size.
//!
//! This module drives the walk, attributes per-round costs to operators,
//! and keeps the legacy free-function API ([`execute`], [`execute_on`])
//! as a thin shim over [`QueryContext`](crate::context::QueryContext).
//!
//! [`PhysicalStrategy`]: crate::physical::strategy::PhysicalStrategy

pub(crate) mod columnar;
pub(crate) mod local;
mod options;
mod result;
pub(crate) mod tuple;

pub use options::{ExecMode, ExecOptions, JoinStrategy, StrategyForce, DEFAULT_BATCH_SIZE};
pub use result::{OperatorCost, QueryResult};

use tamp_core::sorting::valid_order;
use tamp_runtime::backend::{ExecBackend, SimulatorBackend};
use tamp_runtime::jobs::{Schedule, ScheduleJob, ScheduleSend};
use tamp_simulator::Placement;
use tamp_topology::Tree;

use crate::batch::batches_to_fragments;
use crate::context::prepare_with;
use crate::error::QueryError;
use crate::physical::strategy::{BatchInput, ExecArgs, OpInput};
use crate::physical::{Exchange, PhysicalPlan};
use crate::table::Catalog;

/// Execute `plan` over `catalog` with `options` on the default engine
/// (the centralized simulator backend).
///
/// Thin shim over the [`QueryContext`](crate::context::QueryContext)
/// pipeline: the plan is lowered to a [`PhysicalPlan`] against the
/// default strategy registry (resolving every exchange cost-based) and
/// run.
pub fn execute(
    catalog: &Catalog,
    plan: &crate::plan::LogicalPlan,
    options: ExecOptions,
) -> Result<QueryResult, QueryError> {
    execute_on(catalog, plan, options, &SimulatorBackend)
}

/// Execute `plan` over `catalog` with `options` on an explicit
/// [`ExecBackend`].
///
/// Prepared queries replay their exchange schedule through the backend,
/// so both the centralized simulator and the pooled cluster run the same
/// sends and meter bit-identical ledgers.
pub fn execute_on(
    catalog: &Catalog,
    plan: &crate::plan::LogicalPlan,
    options: ExecOptions,
    backend: &dyn ExecBackend,
) -> Result<QueryResult, QueryError> {
    prepare_with(catalog, plan.clone(), options)?.run_on(backend)
}

pub(crate) use crate::physical::strategy::Fragments;

/// Shared state of one plan walk: the catalog, the options, the schedule
/// being accumulated, and the operator marks for cost attribution.
pub(crate) struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub tree: &'a Tree,
    pub options: ExecOptions,
    rounds: Vec<Vec<ScheduleSend>>,
    marks: Vec<Mark>,
}

struct Mark {
    op: String,
    strategy: Option<&'static str>,
    estimated: f64,
    lower_bound: Option<f64>,
    upto: usize,
}

impl ExecCtx<'_> {
    fn exec_args(&self) -> ExecArgs<'_> {
        ExecArgs {
            tree: self.tree,
            seed: self.options.seed,
            batch: self.options.batch_size,
        }
    }

    /// Run `exchange`'s strategy on row-form `input`, appending its
    /// rounds to the query's schedule.
    pub(crate) fn run_strategy(
        &mut self,
        exchange: &Exchange,
        input: OpInput,
    ) -> Result<Fragments, QueryError> {
        let traced = exchange.strategy.trace(&self.exec_args(), input)?;
        self.rounds.extend(traced.rounds);
        Ok(traced.output)
    }

    /// Run `exchange`'s strategy on batch-form `input`, appending its
    /// rounds to the query's schedule.
    pub(crate) fn run_strategy_batch(
        &mut self,
        exchange: &Exchange,
        input: BatchInput,
    ) -> Result<crate::batch::BatchFragments, QueryError> {
        let traced = exchange.strategy.trace_batch(&self.exec_args(), input)?;
        self.rounds.extend(traced.rounds);
        Ok(traced.output)
    }

    /// Record that `plan`'s operator finished at the current round count.
    pub(crate) fn mark(&mut self, plan: &PhysicalPlan) {
        self.marks.push(Mark {
            op: plan.label(),
            strategy: plan.exchange().map(|x| x.name()),
            estimated: plan.exchange().map_or(0.0, |x| x.estimate.tuple_cost),
            lower_bound: plan
                .exchange()
                .and_then(|x| x.lower_bound.map(|b| b.value())),
            upto: self.rounds.len(),
        });
    }
}

/// Execute a physical plan: compute fragments and the exchange schedule
/// on the engine `options.mode` selects, then replay the schedule
/// through `backend` for metering.
pub(crate) fn run_physical(
    catalog: &Catalog,
    physical: &PhysicalPlan,
    options: ExecOptions,
    backend: &dyn ExecBackend,
) -> Result<QueryResult, QueryError> {
    let mut ctx = ExecCtx {
        catalog,
        tree: catalog.tree(),
        options,
        rounds: Vec::new(),
        marks: Vec::new(),
    };
    let (schema, fragments) = match options.mode {
        ExecMode::Columnar => {
            let (schema, batches) = columnar::exec_batches(&mut ctx, physical)?;
            (schema, batches_to_fragments(&batches))
        }
        ExecMode::Tuple => tuple::exec_physical(&mut ctx, physical)?,
    };
    let job = ScheduleJob::new(
        "query",
        catalog.tree().num_nodes(),
        Schedule { rounds: ctx.rounds },
    );
    let placement = Placement::empty(catalog.tree());
    let outcome = backend
        .execute(catalog.tree(), &placement, &job)
        .map_err(QueryError::from)?;
    // Attribute per-round costs to operators via the recorded marks.
    let mut operator_costs = Vec::with_capacity(ctx.marks.len());
    let mut prev = 0usize;
    for m in ctx.marks {
        let actual: f64 = outcome.cost.per_round[prev..m.upto]
            .iter()
            .map(|r| r.tuple_cost)
            .sum();
        operator_costs.push(OperatorCost {
            op: m.op,
            strategy: m.strategy,
            estimated: m.estimated,
            actual,
            lower_bound: m.lower_bound,
            rounds: m.upto - prev,
        });
        prev = m.upto;
    }
    Ok(QueryResult {
        schema,
        fragments,
        cost: outcome.cost,
        operator_costs,
        estimated_cost: physical.estimated_cost(),
        rounds: outcome.rounds,
        supersteps: outcome.supersteps,
        resumed_from: outcome.resumed_from,
        node_order: valid_order(catalog.tree()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::{AggFunc, LogicalPlan};
    use crate::reference;
    use crate::row::Row;
    use crate::schema::Schema;
    use crate::table::DistributedTable;
    use tamp_core::hashing::mix64;
    use tamp_topology::builders;

    fn catalog(tree: Tree, n: u64) -> Catalog {
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..n).map(|i| vec![i, i % 7, mix64(i) % 1000]).collect();
        let t = DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        );
        c.register(t).unwrap();
        let dims: Vec<Row> = (0..7).map(|g| vec![g, 100 + g]).collect();
        let d = DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            dims,
            c.tree(),
        );
        c.register(d).unwrap();
        c
    }

    fn check_against_reference(c: &Catalog, q: &LogicalPlan, opts: ExecOptions) -> QueryResult {
        let res = execute(c, q, opts).unwrap();
        let got = res.rows(reference::preserves_order(q));
        let want = reference::evaluate(q, c).unwrap();
        assert_eq!(got, want, "plan:\n{q}");
        // The tuple reference engine agrees bit-for-bit, rows and ledger.
        let tup = execute(
            c,
            q,
            ExecOptions {
                mode: ExecMode::Tuple,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(tup.rows(reference::preserves_order(q)), got, "plan:\n{q}");
        assert_eq!(tup.cost.edge_totals, res.cost.edge_totals, "plan:\n{q}");
        res
    }

    #[test]
    fn filter_project_are_free() {
        let c = catalog(builders::star(4, 1.0), 50);
        let q = LogicalPlan::scan("facts")
            .filter(col("g").lt(lit(3)))
            .project(vec![("id", col("id")), ("y", col("x").add(lit(1)))]);
        let res = check_against_reference(&c, &q, ExecOptions::default());
        assert_eq!(res.cost.tuple_cost(), 0.0);
        assert_eq!(res.estimated_cost, 0.0);
    }

    #[test]
    fn hash_join_all_strategies_agree() {
        let c = catalog(
            builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0),
            80,
        );
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        for join in [
            JoinStrategy::Auto,
            JoinStrategy::Weighted,
            JoinStrategy::Uniform,
            JoinStrategy::BroadcastSmall,
        ] {
            check_against_reference(
                &c,
                &q,
                ExecOptions {
                    join,
                    seed: 3,
                    ..ExecOptions::default()
                },
            );
        }
        // Every registered join strategy — including the §3 TreeIntersect
        // routing — produces the same rows.
        for name in [
            "weighted-repartition",
            "tree-partition",
            "broadcast-small",
            "uniform-repartition",
        ] {
            check_against_reference(
                &c,
                &q,
                ExecOptions {
                    seed: 3,
                    force: StrategyForce {
                        join: Some(name),
                        ..StrategyForce::default()
                    },
                    ..ExecOptions::default()
                },
            );
        }
    }

    #[test]
    fn cross_join_matches_reference_under_every_strategy() {
        let c = catalog(builders::star(3, 1.0), 20);
        let q = LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims"));
        let res = check_against_reference(&c, &q, ExecOptions::default());
        assert_eq!(res.num_rows(), 49);
        for name in ["whc-grid", "broadcast-small", "uniform-hypercube"] {
            let res = check_against_reference(
                &c,
                &q,
                ExecOptions {
                    force: StrategyForce {
                        cross: Some(name),
                        ..StrategyForce::default()
                    },
                    ..ExecOptions::default()
                },
            );
            assert_eq!(res.num_rows(), 49, "{name}");
        }
        // Unequal sides exercise the A.1 rectangle packing.
        let q = LogicalPlan::scan("facts").cross(LogicalPlan::scan("dims"));
        for name in ["whc-grid", "uniform-hypercube"] {
            check_against_reference(
                &c,
                &q,
                ExecOptions {
                    force: StrategyForce {
                        cross: Some(name),
                        ..StrategyForce::default()
                    },
                    ..ExecOptions::default()
                },
            );
        }
    }

    #[test]
    fn order_by_produces_global_order_under_both_policies() {
        let c = catalog(builders::star(4, 1.0), 200);
        let q = LogicalPlan::scan("facts").order_by("x");
        for name in ["weighted-range-shuffle", "uniform-range-shuffle"] {
            let res = check_against_reference(
                &c,
                &q,
                ExecOptions {
                    force: StrategyForce {
                        sort: Some(name),
                        ..StrategyForce::default()
                    },
                    ..ExecOptions::default()
                },
            );
            // Fragment concatenation in node order is globally sorted.
            let rows = res.rows(true);
            assert!(rows.windows(2).all(|w| w[0][2] <= w[1][2]), "{name}");
        }
    }

    #[test]
    fn aggregate_matches_reference_under_every_strategy() {
        let c = catalog(builders::caterpillar(3, 2, 1.0), 120);
        for agg in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let q = LogicalPlan::scan("facts").aggregate("g", agg, "x");
            check_against_reference(&c, &q, ExecOptions::default());
            for name in [
                "weighted-repartition",
                "combining-tree",
                "uniform-repartition",
            ] {
                check_against_reference(
                    &c,
                    &q,
                    ExecOptions {
                        force: StrategyForce {
                            aggregate: Some(name),
                            ..StrategyForce::default()
                        },
                        ..ExecOptions::default()
                    },
                );
            }
        }
    }

    #[test]
    fn limit_after_order_by() {
        let c = catalog(builders::star(3, 1.0), 90);
        let q = LogicalPlan::scan("facts").order_by("x").limit(10);
        let res = check_against_reference(&c, &q, ExecOptions::default());
        assert_eq!(res.num_rows(), 10);
    }

    #[test]
    fn composite_analytics_query() {
        let c = catalog(
            builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 4.0)], 1.0),
            150,
        );
        let q = LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(100)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("label", AggFunc::Count, "id")
            .order_by("label");
        let res = check_against_reference(&c, &q, ExecOptions::default());
        // Cost attribution covers every operator, in post-order.
        let names: Vec<&str> = res.operator_costs.iter().map(|c| c.op.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Scan facts",
                "Filter (x > 100)",
                "Scan dims",
                "HashJoin g=g",
                "Aggregate count",
                "OrderBy label"
            ]
        );
        let total: f64 = res.operator_costs.iter().map(|c| c.actual).sum();
        assert!((total - res.cost.tuple_cost()).abs() < 1e-9);
        // Every communicating operator carries a positive estimate and
        // names the strategy that executed it.
        for oc in &res.operator_costs {
            if oc.actual > 0.0 {
                assert!(oc.estimated > 0.0, "{} estimated 0", oc.op);
                assert!(oc.strategy.is_some(), "{} has no strategy", oc.op);
            }
        }
    }

    #[test]
    fn weighted_join_beats_uniform_on_skew() {
        // All fact rows on one node behind a thin uplink; dims tiny.
        // Weighted hashing keeps fact rows where they are; uniform hashing
        // ships ~everything across the thin link.
        let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0]);
        let heavy = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..400).map(|i| vec![i, i % 5, i * 2]).collect();
        let t = DistributedTable::single_node(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
            heavy,
        );
        c.register(t).unwrap();
        let dims: Vec<Row> = (0..5).map(|g| vec![g, g + 50]).collect();
        let d = DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            dims,
            c.tree(),
        );
        c.register(d).unwrap();

        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        let weighted = check_against_reference(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Weighted,
                seed: 1,
                ..ExecOptions::default()
            },
        );
        let uniform = check_against_reference(
            &c,
            &q,
            ExecOptions {
                join: JoinStrategy::Uniform,
                seed: 1,
                ..ExecOptions::default()
            },
        );
        assert!(
            weighted.cost.tuple_cost() * 2.0 < uniform.cost.tuple_cost(),
            "weighted {} vs uniform {}",
            weighted.cost.tuple_cost(),
            uniform.cost.tuple_cost()
        );
    }

    #[test]
    fn errors_surface_cleanly() {
        let c = catalog(builders::star(2, 1.0), 10);
        let q = LogicalPlan::scan("nope");
        assert!(matches!(
            execute(&c, &q, ExecOptions::default()),
            Err(QueryError::UnknownTable(_))
        ));
        let q = LogicalPlan::scan("facts").filter(col("id").div(lit(0)).gt(lit(0)));
        for mode in [ExecMode::Columnar, ExecMode::Tuple] {
            assert_eq!(
                execute(
                    &c,
                    &q,
                    ExecOptions {
                        mode,
                        ..ExecOptions::default()
                    }
                )
                .unwrap_err(),
                QueryError::DivideByZero
            );
        }
    }

    #[test]
    fn zero_batch_size_is_a_typed_plan_error() {
        let c = catalog(builders::star(2, 1.0), 10);
        let q = LogicalPlan::scan("facts");
        for mode in [ExecMode::Columnar, ExecMode::Tuple] {
            assert_eq!(
                execute(
                    &c,
                    &q,
                    ExecOptions {
                        batch_size: 0,
                        mode,
                        ..ExecOptions::default()
                    }
                )
                .unwrap_err(),
                QueryError::InvalidBatchSize
            );
        }
        // Any positive size runs.
        for batch_size in [1, 3, usize::MAX] {
            let res = execute(
                &c,
                &q,
                ExecOptions {
                    batch_size,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(res.num_rows(), 10);
        }
    }

    #[test]
    fn all_backends_run_the_same_prepared_query() {
        let c = catalog(builders::star(3, 1.0), 60);
        let q = LogicalPlan::scan("facts")
            .filter(col("g").lt(lit(5)))
            .aggregate("g", AggFunc::Count, "x");
        // The default engine and an explicitly selected simulator backend
        // are the same path.
        let a = execute(&c, &q, ExecOptions::default()).unwrap();
        let b = execute_on(
            &c,
            &q,
            ExecOptions::default(),
            &tamp_runtime::SimulatorBackend,
        )
        .unwrap();
        assert_eq!(a.rows(false), b.rows(false));
        assert_eq!(a.cost.edge_totals, b.cost.edge_totals);
        assert_eq!(a.rounds, b.rounds);
        // The pooled cluster replays the same exchange schedule and
        // meters a bit-identical ledger — queries are not simulator-only.
        let d = execute_on(
            &c,
            &q,
            ExecOptions::default(),
            &tamp_runtime::PooledClusterBackend::default(),
        )
        .unwrap();
        assert_eq!(a.rows(false), d.rows(false));
        assert_eq!(a.cost.edge_totals, d.cost.edge_totals);
        assert_eq!(a.rounds, d.rounds);
    }

    #[test]
    fn empty_inputs_run_clean() {
        let tree = builders::star(3, 1.0);
        let mut c = Catalog::new(tree);
        let t = DistributedTable::round_robin(
            "e",
            Schema::new(vec!["a", "b"]).unwrap(),
            Vec::new(),
            c.tree(),
        );
        c.register(t).unwrap();
        for q in [
            LogicalPlan::scan("e").order_by("a"),
            LogicalPlan::scan("e").aggregate("a", AggFunc::Sum, "b"),
            LogicalPlan::scan("e").join_on(LogicalPlan::scan("e"), "a", "a"),
            LogicalPlan::scan("e").limit(5),
            LogicalPlan::scan("e").cross(LogicalPlan::scan("e")),
        ] {
            let res = execute(&c, &q, ExecOptions::default()).unwrap();
            assert_eq!(res.num_rows(), 0);
            assert_eq!(res.cost.tuple_cost(), 0.0);
        }
    }
}

#[cfg(test)]
mod distinct_union_tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::LogicalPlan;
    use crate::reference;
    use crate::row::Row;
    use crate::schema::Schema;
    use crate::table::DistributedTable;
    use tamp_topology::builders;

    fn dup_catalog() -> Catalog {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0);
        let mut c = Catalog::new(tree);
        // Every row appears three times, scattered across nodes.
        let mut rows: Vec<Row> = Vec::new();
        for rep in 0..3u64 {
            rows.extend((0..40).map(|i| vec![i, i % 5]));
            let _ = rep;
        }
        let t = DistributedTable::round_robin(
            "d",
            Schema::new(vec!["k", "g"]).unwrap(),
            rows,
            c.tree(),
        );
        c.register(t).unwrap();
        c
    }

    #[test]
    fn distinct_removes_scattered_duplicates() {
        let c = dup_catalog();
        let q = LogicalPlan::scan("d").distinct();
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        assert_eq!(res.num_rows(), 40);
        assert_eq!(res.rows(false), reference::evaluate(&q, &c).unwrap());
        // Duplicates of a row co-locate, so at most one copy per row moves
        // beyond local dedup: cost well below shipping all 120 rows.
        assert!(res.cost.tuple_cost() > 0.0);
    }

    #[test]
    fn distinct_composes_with_filter_and_union() {
        let c = dup_catalog();
        let q = LogicalPlan::scan("d")
            .filter(col("g").lt(lit(3)))
            .union_all(LogicalPlan::scan("d").filter(col("g").ge(lit(3))))
            .distinct();
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        assert_eq!(res.rows(false), reference::evaluate(&q, &c).unwrap());
        assert_eq!(res.num_rows(), 40);
    }

    #[test]
    fn union_all_is_free_and_keeps_duplicates() {
        let c = dup_catalog();
        let q = LogicalPlan::scan("d").union_all(LogicalPlan::scan("d"));
        let res = execute(&c, &q, ExecOptions::default()).unwrap();
        assert_eq!(res.num_rows(), 240);
        assert_eq!(res.cost.tuple_cost(), 0.0);
        assert_eq!(res.rows(false), reference::evaluate(&q, &c).unwrap());
    }

    #[test]
    fn union_all_rejects_schema_mismatch() {
        let mut c = dup_catalog();
        let t = DistributedTable::round_robin(
            "other",
            Schema::new(vec!["a", "b", "c"]).unwrap(),
            vec![vec![1, 2, 3]],
            c.tree(),
        );
        c.register(t).unwrap();
        let q = LogicalPlan::scan("d").union_all(LogicalPlan::scan("other"));
        for mode in [ExecMode::Columnar, ExecMode::Tuple] {
            assert!(matches!(
                execute(
                    &c,
                    &q,
                    ExecOptions {
                        mode,
                        ..ExecOptions::default()
                    }
                ),
                Err(QueryError::Plan(_))
            ));
        }
    }

    #[test]
    fn empty_distinct_is_free() {
        let tree = builders::star(2, 1.0);
        let mut c = Catalog::new(tree);
        c.register(DistributedTable::round_robin(
            "e",
            Schema::new(vec!["a"]).unwrap(),
            Vec::new(),
            c.tree(),
        ))
        .unwrap();
        let res = execute(
            &c,
            &LogicalPlan::scan("e").distinct(),
            ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(res.num_rows(), 0);
        assert_eq!(res.cost.tuple_cost(), 0.0);
    }
}
