//! The row-at-a-time reference walker.
//!
//! One `Vec<Value>` per row, one interpreter dispatch per row and
//! expression node. This is the engine the columnar path is tested
//! against: `ExecMode::Tuple` runs it, and the parity proptests assert
//! its rows and metered `edge_totals` bit-identical to the batch
//! kernels'.

use crate::error::QueryError;
use crate::exec::{local, ExecCtx, Fragments};
use crate::physical::strategy::OpInput;
use crate::physical::{PhysicalOp, PhysicalPlan};
use crate::schema::Schema;

/// Execute one physical operator (post-order), recording its rounds and
/// mark.
pub(crate) fn exec_physical(
    ctx: &mut ExecCtx<'_>,
    plan: &PhysicalPlan,
) -> Result<(Schema, Fragments), QueryError> {
    let result = match &plan.op {
        PhysicalOp::TableScan { table } => {
            let t = ctx.catalog.table(table)?;
            (t.schema.clone(), t.fragments.clone())
        }
        PhysicalOp::Filter { input, predicate } => {
            let (schema, frags) = exec_physical(ctx, input)?;
            let frags = local::filter(&schema, frags, predicate)?;
            (schema, frags)
        }
        PhysicalOp::Project { input, exprs } => {
            let (schema, frags) = exec_physical(ctx, input)?;
            local::project(&schema, &frags, exprs)?
        }
        PhysicalOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            exchange,
        } => {
            let (ls, lfrags) = exec_physical(ctx, left)?;
            let (rs, rfrags) = exec_physical(ctx, right)?;
            let li = ls.index_of(left_key)?;
            let ri = rs.index_of(right_key)?;
            let out_schema = ls.join(&rs, "r_")?;
            let frags = ctx.run_strategy(
                exchange,
                OpInput::Join {
                    left: lfrags,
                    right: rfrags,
                    left_key: li,
                    right_key: ri,
                    left_width: ls.width(),
                    right_width: rs.width(),
                },
            )?;
            (out_schema, frags)
        }
        PhysicalOp::CrossJoin {
            left,
            right,
            exchange,
        } => {
            let (ls, lfrags) = exec_physical(ctx, left)?;
            let (rs, rfrags) = exec_physical(ctx, right)?;
            let out_schema = ls.join(&rs, "r_")?;
            let frags = ctx.run_strategy(
                exchange,
                OpInput::CrossJoin {
                    left: lfrags,
                    right: rfrags,
                    left_width: ls.width(),
                    right_width: rs.width(),
                },
            )?;
            (out_schema, frags)
        }
        PhysicalOp::Sort {
            input,
            key,
            exchange,
        } => {
            let (schema, frags) = exec_physical(ctx, input)?;
            let ki = schema.index_of(key)?;
            let frags = ctx.run_strategy(
                exchange,
                OpInput::Sort {
                    input: frags,
                    key: ki,
                    width: schema.width(),
                },
            )?;
            (schema, frags)
        }
        PhysicalOp::HashAggregate {
            input,
            group_by,
            agg,
            measure,
            exchange,
        } => {
            let (schema, frags) = exec_physical(ctx, input)?;
            let gi = schema.index_of(group_by)?;
            let mi = schema.index_of(measure)?;
            let frags = ctx.run_strategy(
                exchange,
                OpInput::Aggregate {
                    input: frags,
                    group: gi,
                    measure: mi,
                    agg: *agg,
                },
            )?;
            let out = Schema::new(vec![
                group_by.clone(),
                format!("{}_{}", agg.name(), measure),
            ])?;
            (out, frags)
        }
        PhysicalOp::Limit {
            input,
            n,
            order_preserving,
            exchange,
        } => {
            let (schema, frags) = exec_physical(ctx, input)?;
            let frags = ctx.run_strategy(
                exchange,
                OpInput::Limit {
                    input: frags,
                    n: *n,
                    width: schema.width(),
                    order_preserving: *order_preserving,
                },
            )?;
            (schema, frags)
        }
        PhysicalOp::Distinct { input, exchange } => {
            let (schema, frags) = exec_physical(ctx, input)?;
            let frags = ctx.run_strategy(
                exchange,
                OpInput::Distinct {
                    input: frags,
                    width: schema.width(),
                },
            )?;
            (schema, frags)
        }
        PhysicalOp::UnionAll { left, right } => {
            let (ls, lfrags) = exec_physical(ctx, left)?;
            let (rs, rfrags) = exec_physical(ctx, right)?;
            let frags = local::union_all(&ls, &rs, lfrags, rfrags)?;
            (ls, frags)
        }
    };
    ctx.mark(plan);
    Ok(result)
}
