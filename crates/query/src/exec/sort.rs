//! Global sort: the weighted-TeraSort range shuffle (§5.2).
//!
//! Three rounds: sample keys to a coordinator, broadcast splitters chosen
//! proportional to current node loads, then range-shuffle rows into the
//! tree's valid left-to-right compute order so fragment concatenation
//! yields the global order.

use tamp_core::sorting::{coin, sample_rate, valid_order};
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::exec::{ExecCtx, Fragments};
use crate::row::Row;

pub(crate) fn order_by(
    ctx: &mut ExecCtx<'_>,
    frags: Fragments,
    ki: usize,
    width: usize,
) -> Fragments {
    let tree = ctx.tree;
    let order = valid_order(tree);
    let total: usize = frags.iter().map(Vec::len).sum();
    if total == 0 {
        return frags;
    }
    let coordinator = order[0];
    let rho = sample_rate(order.len(), total as u64);

    // Round 1: sample keys to the coordinator (width-1 messages).
    let mut all_samples: Vec<u64> = Vec::new();
    let mut sampled: Vec<(NodeId, Vec<u64>)> = Vec::new();
    for &v in &order {
        let samples: Vec<u64> = frags[v.index()]
            .iter()
            .map(|r| r[ki])
            .filter(|&x| coin(ctx.seed, x, rho))
            .collect();
        all_samples.extend_from_slice(&samples);
        sampled.push((v, samples));
    }
    ctx.trace.round(|round| {
        for (v, samples) in sampled {
            round.send(v, &[coordinator], Rel::S, samples);
        }
    });

    // Coordinator picks splitters proportional to current node loads.
    all_samples.sort_unstable();
    let weights: Vec<u64> = order
        .iter()
        .map(|&v| frags[v.index()].len() as u64)
        .collect();
    let wsum: u64 = weights.iter().sum();
    let mut splitters: Vec<u64> = Vec::with_capacity(order.len().saturating_sub(1));
    let mut acc = 0u64;
    for &w in weights.iter().take(order.len() - 1) {
        acc += w;
        if all_samples.is_empty() {
            splitters.push(u64::MAX);
            continue;
        }
        let idx = ((acc as u128 * all_samples.len() as u128) / wsum.max(1) as u128) as usize;
        splitters.push(if idx == 0 {
            u64::MIN
        } else {
            all_samples.get(idx - 1).copied().unwrap_or(u64::MAX)
        });
    }

    // Round 2: broadcast splitters.
    ctx.trace
        .round(|round| round.send(coordinator, &order, Rel::S, splitters.clone()));

    // Round 3: range shuffle by splitter buckets.
    let mut new_frags: Fragments = vec![Vec::new(); tree.num_nodes()];
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in &order {
        let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); order.len()];
        for row in &frags[v.index()] {
            let b = splitters
                .partition_point(|&s| s <= row[ki])
                .min(order.len() - 1);
            buckets[b].push(row.clone());
        }
        for (j, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            if order[j] == v {
                new_frags[v.index()].extend(bucket);
            } else {
                outgoing.push((v, order[j], crate::row::flatten(&bucket, width)));
                new_frags[order[j].index()].extend(bucket);
            }
        }
    }
    ctx.trace.round(|round| {
        for (src, dst, buf) in outgoing {
            round.send(src, &[dst], Rel::R, buf);
        }
    });
    for &v in &order {
        new_frags[v.index()].sort_by_key(|r| (r[ki], r.clone()));
    }
    // Bucket i already lives at order[i], so concatenation by node order
    // yields the global order.
    new_frags
}
