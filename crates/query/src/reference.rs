//! Single-node reference evaluator.
//!
//! Evaluates a [`LogicalPlan`] directly over the catalog's gathered rows,
//! with no distribution and no cost model. The distributed executor's
//! results are checked against this oracle (up to row order — both sides
//! are canonicalized before comparison).

use std::collections::BTreeMap;

use crate::error::QueryError;
use crate::expr::Expr;
use crate::plan::LogicalPlan;
use crate::row::{canonicalize, Row};
use crate::table::Catalog;

/// Evaluate `plan` centrally and return its rows in canonical
/// (lexicographic) order — except [`LogicalPlan::OrderBy`] prefixes and
/// [`LogicalPlan::Limit`], whose semantic order is preserved.
pub fn evaluate(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<Row>, QueryError> {
    let mut rows = eval_inner(plan, catalog)?;
    if !preserves_order(plan) {
        canonicalize(&mut rows);
    }
    Ok(rows)
}

/// `true` if the plan's top operator defines a semantic row order.
pub fn preserves_order(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::OrderBy { .. } => true,
        LogicalPlan::Limit { input, .. } => preserves_order(input),
        _ => false,
    }
}

fn eval_inner(plan: &LogicalPlan, catalog: &Catalog) -> Result<Vec<Row>, QueryError> {
    match plan {
        LogicalPlan::Scan { table } => Ok(catalog.table(table)?.all_rows()),
        LogicalPlan::Filter { input, predicate } => {
            let schema = input.schema(catalog)?;
            let bound = predicate.bind(&schema)?;
            let rows = eval_inner(input, catalog)?;
            let mut out = Vec::new();
            for row in rows {
                if bound.matches(&row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        LogicalPlan::Project { input, exprs } => {
            let schema = input.schema(catalog)?;
            let bound: Vec<Expr> = exprs
                .iter()
                .map(|(_, e)| e.bind(&schema))
                .collect::<Result<_, _>>()?;
            let rows = eval_inner(input, catalog)?;
            rows.into_iter()
                .map(|row| bound.iter().map(|e| e.eval(&row)).collect())
                .collect()
        }
        LogicalPlan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let ls = left.schema(catalog)?;
            let rs = right.schema(catalog)?;
            let li = ls.index_of(left_key)?;
            let ri = rs.index_of(right_key)?;
            let lrows = eval_inner(left, catalog)?;
            let rrows = eval_inner(right, catalog)?;
            let mut by_key: BTreeMap<u64, Vec<&Row>> = BTreeMap::new();
            for row in &rrows {
                by_key.entry(row[ri]).or_default().push(row);
            }
            let mut out = Vec::new();
            for lrow in &lrows {
                if let Some(matches) = by_key.get(&lrow[li]) {
                    for rrow in matches {
                        let mut joined = lrow.clone();
                        joined.extend_from_slice(rrow);
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        LogicalPlan::CrossJoin { left, right } => {
            let lrows = eval_inner(left, catalog)?;
            let rrows = eval_inner(right, catalog)?;
            let mut out = Vec::with_capacity(lrows.len() * rrows.len());
            for lrow in &lrows {
                for rrow in &rrows {
                    let mut joined = lrow.clone();
                    joined.extend_from_slice(rrow);
                    out.push(joined);
                }
            }
            Ok(out)
        }
        LogicalPlan::OrderBy { input, key } => {
            let schema = input.schema(catalog)?;
            let ki = schema.index_of(key)?;
            let mut rows = eval_inner(input, catalog)?;
            rows.sort_by_key(|r| (r[ki], r.clone()));
            Ok(rows)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            agg,
            measure,
        } => {
            let schema = input.schema(catalog)?;
            let gi = schema.index_of(group_by)?;
            let mi = schema.index_of(measure)?;
            let rows = eval_inner(input, catalog)?;
            let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
            for row in rows {
                let lifted = agg.lift(row[mi]);
                acc.entry(row[gi])
                    .and_modify(|p| *p = agg.combine(*p, lifted))
                    .or_insert(lifted);
            }
            Ok(acc.into_iter().map(|(g, m)| vec![g, m]).collect())
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = eval_inner(input, catalog)?;
            if !preserves_order(input) {
                canonicalize(&mut rows);
            }
            rows.truncate(*n);
            Ok(rows)
        }
        LogicalPlan::Distinct { input } => {
            let mut rows = eval_inner(input, catalog)?;
            canonicalize(&mut rows);
            rows.dedup();
            Ok(rows)
        }
        LogicalPlan::UnionAll { left, right } => {
            let mut rows = eval_inner(left, catalog)?;
            rows.extend(eval_inner(right, catalog)?);
            Ok(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::AggFunc;
    use crate::schema::Schema;
    use crate::table::DistributedTable;
    use tamp_topology::builders;

    fn catalog() -> Catalog {
        let tree = builders::star(3, 1.0);
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..20).map(|i| vec![i, i % 4, i * 3]).collect();
        let t = DistributedTable::round_robin(
            "t",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        );
        c.register(t).unwrap();
        let small: Vec<Row> = (0..4).map(|g| vec![g, 100 + g]).collect();
        let d = DistributedTable::round_robin(
            "dim",
            Schema::new(vec!["g", "label"]).unwrap(),
            small,
            c.tree(),
        );
        c.register(d).unwrap();
        c
    }

    #[test]
    fn filter_project() {
        let c = catalog();
        let q = LogicalPlan::scan("t")
            .filter(col("g").eq(lit(1)))
            .project(vec![("id", col("id")), ("x2", col("x").mul(lit(2)))]);
        let rows = evaluate(&q, &c).unwrap();
        assert_eq!(rows.len(), 5); // ids 1, 5, 9, 13, 17
        assert!(rows.iter().all(|r| r[1] == r[0] * 6));
    }

    #[test]
    fn join_matches_nested_loop() {
        let c = catalog();
        let q = LogicalPlan::scan("t").join_on(LogicalPlan::scan("dim"), "g", "g");
        let rows = evaluate(&q, &c).unwrap();
        assert_eq!(rows.len(), 20); // every row matches exactly one dim row
        for r in &rows {
            assert_eq!(r[1], r[3]); // g = r_g
            assert_eq!(r[4], 100 + r[1]);
        }
    }

    #[test]
    fn cross_join_counts() {
        let c = catalog();
        let q = LogicalPlan::scan("dim").cross(LogicalPlan::scan("dim"));
        assert_eq!(evaluate(&q, &c).unwrap().len(), 16);
    }

    #[test]
    fn order_by_and_limit() {
        let c = catalog();
        let q = LogicalPlan::scan("t").order_by("x").limit(3);
        let rows = evaluate(&q, &c).unwrap();
        assert_eq!(rows.iter().map(|r| r[2]).collect::<Vec<_>>(), vec![0, 3, 6]);
    }

    #[test]
    fn aggregate_groups() {
        let c = catalog();
        let q = LogicalPlan::scan("t").aggregate("g", AggFunc::Count, "x");
        let rows = evaluate(&q, &c).unwrap();
        assert_eq!(rows, vec![vec![0, 5], vec![1, 5], vec![2, 5], vec![3, 5]]);
        let q = LogicalPlan::scan("t").aggregate("g", AggFunc::Max, "x");
        let rows = evaluate(&q, &c).unwrap();
        assert_eq!(rows[0], vec![0, 48]); // max x among ids 0,4,8,12,16
    }
}
