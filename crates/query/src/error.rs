//! Error type for query planning and execution.

use std::fmt;

/// Errors raised while building schemas, planning or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A column name appears twice in a schema.
    DuplicateColumn(String),
    /// A column name is empty.
    EmptyColumnName,
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A row's width does not match its schema.
    WidthMismatch {
        /// Expected width from the schema.
        expected: usize,
        /// Actual row width.
        actual: usize,
    },
    /// An expression referenced a column index out of range.
    ColumnOutOfRange {
        /// Referenced index.
        index: usize,
        /// Row width.
        width: usize,
    },
    /// Division by zero during expression evaluation.
    DivideByZero,
    /// `ExecOptions::batch_size` is zero — the batch engine cannot make
    /// progress on empty batches, so the value is rejected at plan time
    /// instead of degenerating into a silent infinite loop.
    InvalidBatchSize,
    /// The underlying simulator rejected the execution.
    Simulator(String),
    /// The selected execution backend failed or cannot run queries.
    Backend(String),
    /// Plan construction error (e.g. aggregate of a non-existent column).
    Plan(String),
    /// A forced physical strategy name is not registered for the
    /// operator (or the registry has no strategies for it at all).
    UnknownStrategy {
        /// The operator being planned (`join`, `cross-join`, …).
        operator: &'static str,
        /// The requested strategy name.
        name: String,
        /// The names that *are* registered for the operator.
        available: Vec<String>,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateColumn(c) => write!(f, "duplicate column name `{c}`"),
            Self::EmptyColumnName => write!(f, "empty column name"),
            Self::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Self::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Self::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "row width {actual} does not match schema width {expected}"
                )
            }
            Self::ColumnOutOfRange { index, width } => {
                write!(f, "column index {index} out of range for width-{width} row")
            }
            Self::DivideByZero => write!(f, "division by zero"),
            Self::InvalidBatchSize => {
                write!(f, "batch_size must be at least 1 (got 0)")
            }
            Self::Simulator(msg) => write!(f, "simulator error: {msg}"),
            Self::Backend(msg) => write!(f, "execution backend error: {msg}"),
            Self::Plan(msg) => write!(f, "plan error: {msg}"),
            Self::UnknownStrategy {
                operator,
                name,
                available,
            } => {
                write!(
                    f,
                    "no `{name}` strategy registered for {operator} (available: {})",
                    if available.is_empty() {
                        "none".to_string()
                    } else {
                        available.join(", ")
                    }
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<tamp_simulator::SimError> for QueryError {
    fn from(e: tamp_simulator::SimError) -> Self {
        QueryError::Simulator(e.to_string())
    }
}

impl From<tamp_runtime::ExecError> for QueryError {
    fn from(e: tamp_runtime::ExecError) -> Self {
        match e {
            tamp_runtime::ExecError::Sim(e) => QueryError::from(e),
            other => QueryError::Backend(other.to_string()),
        }
    }
}

impl From<tamp_runtime::RuntimeError> for QueryError {
    fn from(e: tamp_runtime::RuntimeError) -> Self {
        // Backend selection/config errors (unknown specs, zero-width
        // pools) surface with their typed runtime message intact.
        QueryError::Backend(e.to_string())
    }
}
