//! Error type for query planning and execution.

use std::fmt;
use std::time::Duration;

use tamp_topology::{EdgeId, NodeId};

/// Errors raised while building schemas, planning or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// A column name appears twice in a schema.
    DuplicateColumn(String),
    /// A column name is empty.
    EmptyColumnName,
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A row's width does not match its schema.
    WidthMismatch {
        /// Expected width from the schema.
        expected: usize,
        /// Actual row width.
        actual: usize,
    },
    /// An expression referenced a column index out of range.
    ColumnOutOfRange {
        /// Referenced index.
        index: usize,
        /// Row width.
        width: usize,
    },
    /// Division by zero during expression evaluation.
    DivideByZero,
    /// `ExecOptions::batch_size` is zero — the batch engine cannot make
    /// progress on empty batches, so the value is rejected at plan time
    /// instead of degenerating into a silent infinite loop.
    InvalidBatchSize,
    /// The underlying simulator rejected the execution.
    Simulator(String),
    /// The selected execution backend failed or cannot run queries.
    Backend(String),
    /// Plan construction error (e.g. aggregate of a non-existent column).
    Plan(String),
    /// A forced physical strategy name is not registered for the
    /// operator (or the registry has no strategies for it at all).
    UnknownStrategy {
        /// The operator being planned (`join`, `cross-join`, …).
        operator: &'static str,
        /// The requested strategy name.
        name: String,
        /// The names that *are* registered for the operator.
        available: Vec<String>,
    },
    /// `QueryService::with_max_inflight(0)` — a zero-slot admission gate
    /// can never admit a query, so the limit is rejected at construction
    /// instead of deadlocking the first submit (mirror of the runtime's
    /// `InvalidPoolWidth` fix).
    InvalidAdmissionLimit,
    /// An injected fault killed the query mid-execution (see
    /// [`tamp_runtime::FaultPlan`]). The orchestration layer recovers by
    /// deterministic replay on a healthy crew; this surfaces only when a
    /// query is served without a recovery layer.
    FaultInjected {
        /// The failed compute node.
        node: NodeId,
        /// The superstep at which it failed.
        round: usize,
    },
    /// An injected link degradation aborted the query mid-execution. Like
    /// [`FaultInjected`](Self::FaultInjected) this is recoverable: replay
    /// (from the last checkpoint, if any) re-executes the deterministic
    /// schedule. Re-pricing plans for the degraded network is a separate,
    /// explicit step ([`degrade_link`](crate::service::QueryService::degrade_link)).
    LinkDegraded {
        /// The degraded edge.
        edge: EdgeId,
        /// The superstep at which the degradation fired.
        round: usize,
        /// Bandwidth division factor (> 1 slows the link).
        factor: f64,
    },
    /// A superstep exceeded the configured watchdog deadline. The node is
    /// the deterministically-attributed straggler (first unreported
    /// compute node). Recoverable by replay.
    SuperstepTimeout {
        /// The straggler.
        node: NodeId,
        /// The superstep that timed out.
        round: usize,
        /// The configured deadline it exceeded.
        deadline: Duration,
    },
    /// A [`FaultPlan`](tamp_runtime::FaultPlan) named an impossible
    /// target (router or out-of-range node, unknown edge, non-finite
    /// degradation factor). Rejected with this typed error instead of
    /// silently not firing.
    InvalidFaultTarget(String),
    /// Replay recovery gave up: every one of the policy's
    /// `max_attempts` executions failed with a recoverable fault. Carries
    /// the final attempt's error.
    RecoveryExhausted {
        /// Total executions attempted (= `RetryPolicy::max_attempts`).
        attempts: u32,
        /// The error that killed the last attempt.
        last: Box<QueryError>,
    },
    /// A query named a tenant the orchestrator has no spec for.
    UnknownTenant(String),
    /// A tenant is at its quota (max in-flight + queued); the submit is
    /// rejected instead of queued so one tenant cannot grow the queue
    /// without bound.
    TenantQueueFull {
        /// The tenant at quota.
        tenant: String,
        /// The configured quota.
        quota: usize,
    },
    /// A tenant spec is invalid (empty name, duplicate name, zero weight
    /// or zero quota).
    InvalidTenantSpec(String),
    /// A scaling spec is invalid (zero min, min > max).
    InvalidScalingSpec(String),
    /// An iterative fixpoint (see [`crate::iterative`]) failed to
    /// converge within its iteration budget. Carries the budget, the
    /// iterations actually run, and the final residual so callers can
    /// re-submit with a larger budget or loosened tolerance. *Not*
    /// recoverable by replay — the fixpoint is deterministic, so a
    /// replay would fail identically; the orchestrator rolls these up
    /// per tenant instead of retrying.
    IterationLimit {
        /// The configured `IterativeSpec::max_iters`.
        limit: usize,
        /// Iterations completed before giving up.
        completed: usize,
        /// The convergence residual after the last completed iteration.
        residual: f64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateColumn(c) => write!(f, "duplicate column name `{c}`"),
            Self::EmptyColumnName => write!(f, "empty column name"),
            Self::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            Self::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            Self::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "row width {actual} does not match schema width {expected}"
                )
            }
            Self::ColumnOutOfRange { index, width } => {
                write!(f, "column index {index} out of range for width-{width} row")
            }
            Self::DivideByZero => write!(f, "division by zero"),
            Self::InvalidBatchSize => {
                write!(f, "batch_size must be at least 1 (got 0)")
            }
            Self::Simulator(msg) => write!(f, "simulator error: {msg}"),
            Self::Backend(msg) => write!(f, "execution backend error: {msg}"),
            Self::Plan(msg) => write!(f, "plan error: {msg}"),
            Self::UnknownStrategy {
                operator,
                name,
                available,
            } => {
                write!(
                    f,
                    "no `{name}` strategy registered for {operator} (available: {})",
                    if available.is_empty() {
                        "none".to_string()
                    } else {
                        available.join(", ")
                    }
                )
            }
            Self::InvalidAdmissionLimit => {
                write!(f, "max_inflight must be at least 1 (got 0)")
            }
            Self::FaultInjected { node, round } => {
                write!(
                    f,
                    "injected fault: worker on node {node} killed at superstep {round}"
                )
            }
            Self::LinkDegraded {
                edge,
                round,
                factor,
            } => {
                write!(
                    f,
                    "injected fault: link {} degraded by {factor}x at superstep {round}",
                    edge.index()
                )
            }
            Self::SuperstepTimeout {
                node,
                round,
                deadline,
            } => {
                write!(
                    f,
                    "superstep {round} exceeded the {deadline:?} watchdog deadline \
                     (straggler: node {node})"
                )
            }
            Self::InvalidFaultTarget(msg) => write!(f, "invalid fault target: {msg}"),
            Self::RecoveryExhausted { attempts, last } => {
                write!(f, "recovery exhausted after {attempts} attempts: {last}")
            }
            Self::UnknownTenant(t) => write!(f, "unknown tenant `{t}`"),
            Self::TenantQueueFull { tenant, quota } => {
                write!(f, "tenant `{tenant}` is at its quota of {quota} queries")
            }
            Self::InvalidTenantSpec(msg) => write!(f, "invalid tenant spec: {msg}"),
            Self::InvalidScalingSpec(msg) => write!(f, "invalid scaling spec: {msg}"),
            Self::IterationLimit {
                limit,
                completed,
                residual,
            } => {
                write!(
                    f,
                    "fixpoint did not converge within {limit} iterations \
                     ({completed} completed, residual {residual:.3e})"
                )
            }
        }
    }
}

impl QueryError {
    /// `true` for faults the orchestration layer recovers from by replay:
    /// injected kills, link degradations and straggler timeouts. Mirrors
    /// `RuntimeError::is_recoverable`.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            QueryError::FaultInjected { .. }
                | QueryError::LinkDegraded { .. }
                | QueryError::SuperstepTimeout { .. }
        )
    }
}

impl std::error::Error for QueryError {}

impl From<tamp_simulator::SimError> for QueryError {
    fn from(e: tamp_simulator::SimError) -> Self {
        QueryError::Simulator(e.to_string())
    }
}

impl From<tamp_runtime::ExecError> for QueryError {
    fn from(e: tamp_runtime::ExecError) -> Self {
        match e {
            tamp_runtime::ExecError::Sim(e) => QueryError::from(e),
            // Injected faults keep their typed identity: the orchestration
            // layer matches on this to trigger replay recovery.
            tamp_runtime::ExecError::Runtime(tamp_runtime::RuntimeError::InjectedFault {
                node,
                round,
            }) => QueryError::FaultInjected { node, round },
            tamp_runtime::ExecError::Runtime(tamp_runtime::RuntimeError::LinkDegraded {
                edge,
                round,
                factor,
            }) => QueryError::LinkDegraded {
                edge,
                round,
                factor,
            },
            tamp_runtime::ExecError::Runtime(tamp_runtime::RuntimeError::SuperstepTimeout {
                node,
                round,
                deadline,
            }) => QueryError::SuperstepTimeout {
                node,
                round,
                deadline,
            },
            tamp_runtime::ExecError::Runtime(tamp_runtime::RuntimeError::InvalidFaultTarget {
                fault,
            }) => QueryError::InvalidFaultTarget(fault),
            other => QueryError::Backend(other.to_string()),
        }
    }
}

impl From<tamp_runtime::RuntimeError> for QueryError {
    fn from(e: tamp_runtime::RuntimeError) -> Self {
        // Backend selection/config errors (unknown specs, zero-width
        // pools) surface with their typed runtime message intact.
        QueryError::Backend(e.to_string())
    }
}
