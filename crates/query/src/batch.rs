//! Columnar record batches: the unit of the batch execution engine.
//!
//! A [`RecordBatch`] stores a fixed number of columns as shared
//! `Arc<[Value]>` allocations — the same zero-copy currency the exchange
//! fabric ships in `ScheduleSend::values` — so replicating a batch to
//! another node's fragment list is a reference-count bump, not a copy.
//! Batches convert losslessly to and from the row representation
//! ([`Row`]): the batch engine and the tuple engine are two views of the
//! same data, and the parity suites assert their outputs bit-identical.
//!
//! A node's fragment under the batch engine is a *list* of batches
//! ([`BatchFragments`]); the list is read as the concatenation of its
//! batches, so batch boundaries carry no meaning — only the row sequence
//! does.

use std::sync::Arc;

use tamp_simulator::Value;

use crate::row::Row;

/// A column-major batch of rows: `width()` columns, each `num_rows()`
/// values long, individually shared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordBatch {
    cols: Vec<Arc<[Value]>>,
    rows: usize,
}

impl RecordBatch {
    /// An empty batch of the given width.
    pub fn empty(width: usize) -> Self {
        RecordBatch {
            cols: (0..width).map(|_| Arc::from(Vec::new())).collect(),
            rows: 0,
        }
    }

    /// Build a batch from equal-length columns.
    ///
    /// # Panics
    /// If the columns disagree on length.
    pub fn from_cols(cols: Vec<Arc<[Value]>>) -> Self {
        let rows = cols.first().map_or(0, |c| c.len());
        Self::from_cols_rows(cols, rows)
    }

    /// Build a batch from columns with an explicit row count — required
    /// for width-0 batches, which cannot otherwise carry their length.
    ///
    /// # Panics
    /// If a column's length differs from `rows`.
    pub fn from_cols_rows(cols: Vec<Arc<[Value]>>, rows: usize) -> Self {
        assert!(
            cols.iter().all(|c| c.len() == rows),
            "RecordBatch columns must have equal length"
        );
        RecordBatch { cols, rows }
    }

    /// Transpose `width`-wide rows into a batch (lossless; see
    /// [`RecordBatch::to_rows`] for the inverse).
    pub fn from_rows(rows: &[Row], width: usize) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == width));
        let cols = (0..width)
            .map(|c| rows.iter().map(|r| r[c]).collect())
            .collect();
        RecordBatch {
            cols,
            rows: rows.len(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The values of column `c`.
    pub fn col(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// The shared allocation of column `c` (a clone is a refcount bump).
    pub fn col_arc(&self, c: usize) -> &Arc<[Value]> {
        &self.cols[c]
    }

    /// Transpose back into rows, appending to `out`.
    pub fn append_rows(&self, out: &mut Vec<Row>) {
        out.reserve(self.rows);
        for i in 0..self.rows {
            out.push(self.cols.iter().map(|c| c[i]).collect());
        }
    }

    /// Transpose back into rows.
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::new();
        self.append_rows(&mut out);
        out
    }

    /// Select the rows at `idx` (in order, duplicates allowed) into a new
    /// batch.
    pub fn gather(&self, idx: &[usize]) -> RecordBatch {
        let cols = self
            .cols
            .iter()
            .map(|c| idx.iter().map(|&i| c[i]).collect())
            .collect();
        RecordBatch {
            cols,
            rows: idx.len(),
        }
    }

    /// Append this batch's rows `sel` (in order) to a row-major buffer —
    /// the wire layout of [`crate::row::flatten`].
    pub fn flatten_into(&self, sel: &[usize], out: &mut Vec<Value>) {
        out.reserve(sel.len() * self.cols.len());
        for &i in sel {
            for c in &self.cols {
                out.push(c[i]);
            }
        }
    }
}

/// Per-node batch lists, indexed by node id — the batch engine's
/// counterpart of [`crate::physical::strategy::Fragments`].
pub type BatchFragments = Vec<Vec<RecordBatch>>;

/// Total rows across a node's batch list.
pub fn batch_rows(batches: &[RecordBatch]) -> usize {
    batches.iter().map(RecordBatch::num_rows).sum()
}

/// Concatenate a node's batch list into one batch of the given width.
pub fn concat(batches: &[RecordBatch], width: usize) -> RecordBatch {
    if batches.len() == 1 {
        return batches[0].clone();
    }
    let rows = batch_rows(batches);
    let cols = (0..width)
        .map(|c| {
            let mut col = Vec::with_capacity(rows);
            for b in batches {
                col.extend_from_slice(b.col(c));
            }
            Arc::from(col)
        })
        .collect();
    RecordBatch { cols, rows }
}

/// Chunk `width`-wide rows into batches of at most `batch` rows each.
pub fn rows_to_batches(rows: &[Row], width: usize, batch: usize) -> Vec<RecordBatch> {
    if rows.is_empty() {
        return Vec::new();
    }
    rows.chunks(batch.max(1))
        .map(|chunk| RecordBatch::from_rows(chunk, width))
        .collect()
}

/// Convert row fragments into batch fragments, chunking each node's rows
/// into batches of at most `batch` rows.
pub fn fragments_to_batches(
    frags: &crate::physical::strategy::Fragments,
    width: usize,
    batch: usize,
) -> BatchFragments {
    frags
        .iter()
        .map(|rows| rows_to_batches(rows, width, batch))
        .collect()
}

/// Convert batch fragments back into row fragments (the inverse of
/// [`fragments_to_batches`] up to batch boundaries, which carry no
/// meaning).
pub fn batches_to_fragments(frags: &BatchFragments) -> crate::physical::strategy::Fragments {
    frags
        .iter()
        .map(|batches| {
            let mut rows = Vec::with_capacity(batch_rows(batches));
            for b in batches {
                b.append_rows(&mut rows);
            }
            rows
        })
        .collect()
}

/// Select rows spanning a node's batch list: `idx` holds `(batch, row)`
/// pairs in output order.
pub fn gather_multi(batches: &[RecordBatch], idx: &[(u32, u32)], width: usize) -> RecordBatch {
    let cols = (0..width)
        .map(|c| {
            idx.iter()
                .map(|&(b, i)| batches[b as usize].col(c)[i as usize])
                .collect()
        })
        .collect();
    RecordBatch {
        cols,
        rows: idx.len(),
    }
}

/// Row-major flatten of the `(batch, row)` pairs in `idx` — the wire
/// layout of [`crate::row::flatten`] over the selected rows.
pub fn flatten_multi(batches: &[RecordBatch], idx: &[(u32, u32)], width: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(idx.len() * width);
    for &(b, i) in idx {
        let b = &batches[b as usize];
        for c in 0..width {
            out.push(b.col(c)[i as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_losslessly() {
        let rows: Vec<Row> = (0..10u64).map(|i| vec![i, i * 2, i * 3]).collect();
        let b = RecordBatch::from_rows(&rows, 3);
        assert_eq!(b.num_rows(), 10);
        assert_eq!(b.width(), 3);
        assert_eq!(b.to_rows(), rows);
        // Chunked conversion concatenates back to the same sequence.
        let batches = rows_to_batches(&rows, 3, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[2].num_rows(), 2);
        let mut back = Vec::new();
        for b in &batches {
            b.append_rows(&mut back);
        }
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_and_zero_width_batches() {
        let b = RecordBatch::empty(4);
        assert_eq!(b.num_rows(), 0);
        assert_eq!(b.width(), 4);
        assert!(b.to_rows().is_empty());
        assert!(rows_to_batches(&[], 4, 8).is_empty());
    }

    #[test]
    fn gather_and_flatten_follow_index_order() {
        let rows: Vec<Row> = (0..6u64).map(|i| vec![i, 10 + i]).collect();
        let b = RecordBatch::from_rows(&rows, 2);
        let g = b.gather(&[4, 1, 1]);
        assert_eq!(g.to_rows(), vec![vec![4, 14], vec![1, 11], vec![1, 11]]);
        let mut flat = Vec::new();
        b.flatten_into(&[2, 0], &mut flat);
        assert_eq!(flat, vec![2, 12, 0, 10]);
    }

    #[test]
    fn multi_batch_gather_spans_boundaries() {
        let rows: Vec<Row> = (0..7u64).map(|i| vec![i]).collect();
        let batches = rows_to_batches(&rows, 1, 3);
        let g = gather_multi(&batches, &[(2, 0), (0, 1), (1, 2)], 1);
        assert_eq!(g.to_rows(), vec![vec![6], vec![1], vec![5]]);
        assert_eq!(flatten_multi(&batches, &[(2, 0), (0, 1)], 1), vec![6, 1]);
        assert_eq!(concat(&batches, 1).to_rows(), rows);
    }
}
