//! Equi-join strategies: the paper's weighted-hash routings and their
//! topology-agnostic baseline.
//!
//! All four execute as *exchange + local probe*; they differ only in how
//! the exchange routes rows:
//!
//! - [`WeightedRepartitionJoin`] — both sides repartition under one hash
//!   weighted by each node's current data (the Algorithm 2 idea at the
//!   row level): co-located skew stays put;
//! - [`TreePartitionJoin`] — the §3 `TreeIntersect` routing: a balanced
//!   partition (Definition 1 / Algorithm 3) splits the compute nodes into
//!   blocks each holding at least the small side's weight; small rows
//!   multicast to every block's weighted-hash pick for their key while
//!   big rows hash only within their own block, so big-side tuples never
//!   cross β-edges;
//! - [`BroadcastSmallJoin`] — replicate the small side to every node
//!   holding big rows (the `V_β` idea of Algorithm 1);
//! - [`UniformRepartitionJoin`] — the classic MPC uniform hash, blind to
//!   both topology and distribution.
//!
//! Every strategy's lower bound is Theorem 1 evaluated on the estimated
//! placement (`tamp_core::intersection::intersection_lower_bound`), so
//! `EXPLAIN` shows each candidate's Table-1 ratio.

use std::collections::HashMap;

use tamp_core::hashing::{mix64, WeightedHash};
use tamp_core::intersection::intersection_lower_bound;
use tamp_core::ratio::LowerBound;
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::error::QueryError;
use crate::physical::strategy::{
    BatchInput, BatchTrace, CostEstimate, ExecArgs, Fragments, OpInput, OpTrace, OperatorKind,
    PhysicalStrategy, PlanArgs, TraceBuilder,
};
use crate::row::{flatten, Row};

use super::columnar::{
    batch_frag_weights, batch_holders_of, broadcast_small_batches, empty_batch_frags,
    probe_join_batches, shuffle_batches_by_key, BatchFragments,
};
use super::{
    broadcast_small, drain_sorted, empty_frags, frag_weights, holders_of, probe_join,
    shuffle_by_key,
};

fn join_batch_input(
    input: BatchInput,
) -> (BatchFragments, BatchFragments, usize, usize, usize, usize) {
    let BatchInput::Join {
        left,
        right,
        left_key,
        right_key,
        left_width,
        right_width,
    } = input
    else {
        unreachable!("registered for Join");
    };
    (left, right, left_key, right_key, left_width, right_width)
}

fn join_input(input: OpInput) -> (Fragments, Fragments, usize, usize, usize, usize) {
    let OpInput::Join {
        left,
        right,
        left_key,
        right_key,
        left_width,
        right_width,
    } = input
    else {
        unreachable!("registered for Join");
    };
    (left, right, left_key, right_key, left_width, right_width)
}

fn join_lower_bound(a: &PlanArgs<'_>) -> Option<LowerBound> {
    if !a.symmetric() {
        return None;
    }
    Some(intersection_lower_bound(a.model.tree(), &a.value_stats()))
}

/// Repartition both sides under one distribution-weighted hash.
#[derive(Debug)]
pub(crate) struct WeightedRepartitionJoin;

impl PhysicalStrategy for WeightedRepartitionJoin {
    fn name(&self) -> &'static str {
        "weighted-repartition"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Join
    }

    fn algorithm(&self) -> Option<&'static str> {
        Some("Alg 2 weighted hash")
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let right = a.right.as_ref().expect("join has two inputs");
        let shares = a.model.proportional_shares(&a.combined_counts());
        CostEstimate {
            tuple_cost: a
                .model
                .repartition_cost(&a.left.counts, a.left.width, &shares)
                + a.model
                    .repartition_cost(&right.counts, right.width, &shares),
            rounds: 2,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        join_lower_bound(a)
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (lfrags, rfrags, li, ri, lw, rw) = join_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let weights = frag_weights(tree, &lfrags, &rfrags);
        let Some(hash) = WeightedHash::new(a.seed, &weights) else {
            // No rows anywhere: the join output is empty.
            return Ok(OpTrace {
                rounds: trace.into_rounds(),
                output: empty_frags(tree),
            });
        };
        let router = |key: u64| hash.pick(key);
        let l_new = shuffle_by_key(&mut trace, tree, &lfrags, li, lw, Rel::R, &router);
        let r_new = shuffle_by_key(&mut trace, tree, &rfrags, ri, rw, Rel::S, &router);
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: probe_join(tree, &l_new, &r_new, li, ri),
        })
    }

    fn trace_batch(&self, a: &ExecArgs<'_>, input: BatchInput) -> Result<BatchTrace, QueryError> {
        let (lfrags, rfrags, li, ri, lw, rw) = join_batch_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let weights = batch_frag_weights(tree, &lfrags, &rfrags);
        let Some(hash) = WeightedHash::new(a.seed, &weights) else {
            return Ok(BatchTrace {
                rounds: trace.into_rounds(),
                output: empty_batch_frags(tree),
            });
        };
        let router = |key: u64| hash.pick(key);
        let l_new = shuffle_batches_by_key(&mut trace, tree, &lfrags, li, lw, Rel::R, &router);
        let r_new = shuffle_batches_by_key(&mut trace, tree, &rfrags, ri, rw, Rel::S, &router);
        Ok(BatchTrace {
            rounds: trace.into_rounds(),
            output: probe_join_batches(tree, &l_new, &r_new, li, ri, lw, rw),
        })
    }
}

/// Repartition both sides under the uniform MPC hash.
#[derive(Debug)]
pub(crate) struct UniformRepartitionJoin;

impl PhysicalStrategy for UniformRepartitionJoin {
    fn name(&self) -> &'static str {
        "uniform-repartition"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Join
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let right = a.right.as_ref().expect("join has two inputs");
        let shares = a.model.uniform_shares();
        CostEstimate {
            tuple_cost: a
                .model
                .repartition_cost(&a.left.counts, a.left.width, &shares)
                + a.model
                    .repartition_cost(&right.counts, right.width, &shares),
            rounds: 2,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        join_lower_bound(a)
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        a.model.uniform_shares()
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (lfrags, rfrags, li, ri, lw, rw) = join_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let vc: Vec<NodeId> = tree.compute_nodes().to_vec();
        let seed = a.seed;
        let router = move |key: u64| vc[(mix64(key ^ seed) % vc.len() as u64) as usize];
        let l_new = shuffle_by_key(&mut trace, tree, &lfrags, li, lw, Rel::R, &router);
        let r_new = shuffle_by_key(&mut trace, tree, &rfrags, ri, rw, Rel::S, &router);
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: probe_join(tree, &l_new, &r_new, li, ri),
        })
    }

    fn trace_batch(&self, a: &ExecArgs<'_>, input: BatchInput) -> Result<BatchTrace, QueryError> {
        let (lfrags, rfrags, li, ri, lw, rw) = join_batch_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let vc: Vec<NodeId> = tree.compute_nodes().to_vec();
        let seed = a.seed;
        let router = move |key: u64| vc[(mix64(key ^ seed) % vc.len() as u64) as usize];
        let l_new = shuffle_batches_by_key(&mut trace, tree, &lfrags, li, lw, Rel::R, &router);
        let r_new = shuffle_batches_by_key(&mut trace, tree, &rfrags, ri, rw, Rel::S, &router);
        Ok(BatchTrace {
            rounds: trace.into_rounds(),
            output: probe_join_batches(tree, &l_new, &r_new, li, ri, lw, rw),
        })
    }
}

/// Replicate the smaller side (by rows) to every node holding rows of the
/// larger side.
#[derive(Debug)]
pub(crate) struct BroadcastSmallJoin;

impl PhysicalStrategy for BroadcastSmallJoin {
    fn name(&self) -> &'static str {
        "broadcast-small"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Join
    }

    fn algorithm(&self) -> Option<&'static str> {
        Some("Alg 1 V_β broadcast")
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let right = a.right.as_ref().expect("join has two inputs");
        let (small, big) = if a.left.total() <= right.total() {
            (&a.left, right)
        } else {
            (right, &a.left)
        };
        let holders: Vec<NodeId> = a
            .model
            .tree()
            .compute_nodes()
            .iter()
            .copied()
            .filter(|&v| big.counts[v.index()] > 0.0)
            .collect();
        CostEstimate {
            tuple_cost: a.model.multicast_cost(&small.counts, small.width, &holders),
            rounds: 1,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        join_lower_bound(a)
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        let right = a.right.as_ref().expect("join has two inputs");
        let big = if a.left.total() <= right.total() {
            &right.counts
        } else {
            &a.left.counts
        };
        a.model.proportional_shares(big)
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (lfrags, rfrags, li, ri, lw, rw) = join_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let l_total: usize = lfrags.iter().map(Vec::len).sum();
        let r_total: usize = rfrags.iter().map(Vec::len).sum();
        let left_is_small = l_total <= r_total;
        let (small_frags, small_w, big_frags) = if left_is_small {
            (&lfrags, lw, &rfrags)
        } else {
            (&rfrags, rw, &lfrags)
        };
        // Replicate the small side to every node holding big rows.
        let holders = holders_of(tree, big_frags);
        let small_new = broadcast_small(&mut trace, tree, small_frags, small_w, &holders);
        let (l_new, r_new) = if left_is_small {
            (small_new, rfrags)
        } else {
            (lfrags, small_new)
        };
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: probe_join(tree, &l_new, &r_new, li, ri),
        })
    }

    fn trace_batch(&self, a: &ExecArgs<'_>, input: BatchInput) -> Result<BatchTrace, QueryError> {
        let (lfrags, rfrags, li, ri, lw, rw) = join_batch_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let l_total: usize = lfrags.iter().map(|b| crate::batch::batch_rows(b)).sum();
        let r_total: usize = rfrags.iter().map(|b| crate::batch::batch_rows(b)).sum();
        let left_is_small = l_total <= r_total;
        let (small_frags, small_w, big_frags) = if left_is_small {
            (&lfrags, lw, &rfrags)
        } else {
            (&rfrags, rw, &lfrags)
        };
        let holders = batch_holders_of(tree, big_frags);
        let small_new = broadcast_small_batches(&mut trace, tree, small_frags, small_w, &holders);
        let (l_new, r_new) = if left_is_small {
            (small_new, rfrags)
        } else {
            (lfrags, small_new)
        };
        Ok(BatchTrace {
            rounds: trace.into_rounds(),
            output: probe_join_batches(tree, &l_new, &r_new, li, ri, lw, rw),
        })
    }
}

/// The §3 `TreeIntersect` routing at the row level: small rows multicast
/// to every block's weighted-hash pick for their key; big rows hash only
/// within their own block. Each (small, big) match meets exactly once —
/// in the big row's block — so a plain local probe emits the join.
#[derive(Debug)]
pub(crate) struct TreePartitionJoin;

impl TreePartitionJoin {
    /// Per-node value weights (`N_v`), the balanced-partition input.
    fn weights(l: &Fragments, r: &Fragments) -> Vec<u64> {
        l.iter()
            .zip(r)
            .map(|(a, b)| (a.len() + b.len()) as u64)
            .collect()
    }
}

impl PhysicalStrategy for TreePartitionJoin {
    fn name(&self) -> &'static str {
        "tree-partition"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Join
    }

    fn algorithm(&self) -> Option<&'static str> {
        Some("§3 TreeIntersect routing")
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let right = a.right.as_ref().expect("join has two inputs");
        let (small, big) = if a.left.total() <= right.total() {
            (&a.left, right)
        } else {
            (right, &a.left)
        };
        let small_total = small.total().round() as u64;
        if small_total == 0 {
            return CostEstimate {
                tuple_cost: 0.0,
                rounds: 1,
            };
        }
        let n: Vec<u64> = a
            .combined_counts()
            .iter()
            .map(|c| c.round() as u64)
            .collect();
        let (partition, hashes) = tamp_core::intersection::partition::partition_hashes(
            a.model.tree(),
            &n,
            small_total,
            a.seed,
        );
        let mut load = a.model.zero_load();
        for (block, hash) in partition.blocks.iter().zip(&hashes) {
            if hash.is_none() {
                continue;
            }
            let block_n: u64 = block.iter().map(|&v| n[v.index()]).sum();
            if block_n == 0 {
                continue;
            }
            for &u in block {
                let share = n[u.index()] as f64 / block_n as f64;
                if share <= 0.0 {
                    continue;
                }
                // Small rows: every source ships its expected share into
                // this block (one of k multicast legs).
                for &v in a.model.tree().compute_nodes() {
                    let amount = small.counts[v.index()] * small.width as f64 * share;
                    a.model.add_path(&mut load, v, u, amount);
                }
                // Big rows: only sources inside the block reshuffle here.
                for &v in block {
                    let amount = big.counts[v.index()] * big.width as f64 * share;
                    a.model.add_path(&mut load, v, u, amount);
                }
            }
        }
        CostEstimate {
            tuple_cost: a.model.round_cost(&load),
            rounds: 1,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        join_lower_bound(a)
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (lfrags, rfrags, li, ri, lw, rw) = join_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let l_total: usize = lfrags.iter().map(Vec::len).sum();
        let r_total: usize = rfrags.iter().map(Vec::len).sum();
        let left_is_small = l_total <= r_total;
        let small_total = l_total.min(r_total) as u64;
        if small_total == 0 {
            return Ok(OpTrace {
                rounds: trace.into_rounds(),
                output: empty_frags(tree),
            });
        }
        let n = Self::weights(&lfrags, &rfrags);
        let (partition, hashes) =
            tamp_core::intersection::partition::partition_hashes(tree, &n, small_total, a.seed);
        let block_of = partition.block_of(tree.num_nodes());

        let (small_frags, small_key, small_w, small_rel) = if left_is_small {
            (&lfrags, li, lw, Rel::R)
        } else {
            (&rfrags, ri, rw, Rel::S)
        };
        let (big_frags, big_key, big_w, big_rel) = if left_is_small {
            (&rfrags, ri, rw, Rel::S)
        } else {
            (&lfrags, li, lw, Rel::R)
        };

        let mut small_new = empty_frags(tree);
        let mut big_new = empty_frags(tree);
        trace.round(|round| {
            for &v in tree.compute_nodes() {
                // Small rows: multicast to {h_i(key)} over all blocks,
                // one send per distinct destination vector.
                let mut by_dsts: HashMap<Vec<NodeId>, Vec<Row>> = HashMap::new();
                for row in &small_frags[v.index()] {
                    let key = row[small_key];
                    let mut dsts: Vec<NodeId> =
                        hashes.iter().flatten().map(|h| h.pick(key)).collect();
                    dsts.sort_unstable();
                    dsts.dedup();
                    by_dsts.entry(dsts).or_default().push(row.clone());
                }
                for (dsts, rows) in drain_sorted(by_dsts) {
                    for &d in &dsts {
                        small_new[d.index()].extend(rows.iter().cloned());
                    }
                    if dsts != [v] {
                        round.send_rows(v, &dsts, small_rel, flatten(&rows, small_w), small_w);
                    }
                }
                // Big rows: hash within the owner's block only.
                let bi = block_of[v.index()];
                if bi == usize::MAX {
                    continue;
                }
                let Some(h) = &hashes[bi] else { continue };
                let mut by_dst: HashMap<NodeId, Vec<Row>> = HashMap::new();
                for row in &big_frags[v.index()] {
                    let dst = h.pick(row[big_key]);
                    if dst == v {
                        big_new[v.index()].push(row.clone());
                    } else {
                        by_dst.entry(dst).or_default().push(row.clone());
                    }
                }
                for (dst, rows) in drain_sorted(by_dst) {
                    big_new[dst.index()].extend(rows.iter().cloned());
                    round.send_rows(v, &[dst], big_rel, flatten(&rows, big_w), big_w);
                }
            }
        });

        let (l_new, r_new) = if left_is_small {
            (&small_new, &big_new)
        } else {
            (&big_new, &small_new)
        };
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: probe_join(tree, l_new, r_new, li, ri),
        })
    }
}
