//! Grouped-aggregation strategies.
//!
//! Every strategy pre-aggregates locally (one `(group, partial)` pair per
//! local group — a duplicate never ships raw) and then differs in where
//! partials meet:
//!
//! - [`HashAggregate::weighted`] — partials ship to a group owner under
//!   the distribution-weighted hash (the `HashGroupBy` idea): owners sit
//!   where the data already is;
//! - [`HashAggregate::uniform`] — owners are uniform-hashed, the
//!   topology-agnostic baseline;
//! - [`CombiningTreeAggregate`] — the in-network convergecast of
//!   `tamp_core::aggregate::protocols`: one *combiner* per subtree, one
//!   round per tree level, so a thin uplink carries one partial per
//!   distinct group below it instead of one per `(node, group)` pair.
//!
//! Lower bound: the per-edge distributed group-by bound
//! ([`tamp_core::aggregate::groupby_lower_bound`]) evaluated on a
//! synthetic placement spreading the estimated per-node group counts,
//! scaled by the width-2 partial rows the query layer ships.

use std::collections::{BTreeMap, HashMap};

use tamp_core::aggregate::protocols::combining_schedule;
use tamp_core::aggregate::{encode, groupby_lower_bound};
use tamp_core::hashing::{mix64, WeightedHash};
use tamp_core::ratio::LowerBound;
use tamp_core::sorting::valid_order;
use tamp_simulator::{Placement, Rel};
use tamp_topology::NodeId;

use crate::error::QueryError;
use crate::physical::strategy::{
    CostEstimate, ExecArgs, Fragments, OpInput, OpTrace, OperatorKind, PhysicalStrategy, PlanArgs,
    TraceBuilder,
};
use crate::plan::AggFunc;
use crate::row::{flatten, Row};

use super::{drain_sorted, empty_frags, frag_weights, unicast_round};

fn agg_input(input: OpInput) -> (Fragments, usize, usize, AggFunc) {
    let OpInput::Aggregate {
        input,
        group,
        measure,
        agg,
    } = input
    else {
        unreachable!("registered for Aggregate");
    };
    (input, group, measure, agg)
}

/// Estimated distinct groups at each node: `min(n_v, G)`.
fn groups_per_node(a: &PlanArgs<'_>) -> Vec<f64> {
    a.left.counts.iter().map(|&n| n.min(a.groups)).collect()
}

/// The shared aggregate lower bound: Theorem-style per-edge counting on a
/// synthetic placement spreading `min(n_v, G)` groups per node (nested
/// prefixes, so an edge's "groups on both sides" is the min of the two
/// side maxima — the natural estimate when group placement is unknown).
/// Scaled ×2 because the query layer ships width-2 `(group, partial)`
/// rows.
fn agg_lower_bound(a: &PlanArgs<'_>) -> Option<LowerBound> {
    if !a.symmetric() {
        return None;
    }
    let tree = a.model.tree();
    let mut placement = Placement::empty(tree);
    for &v in tree.compute_nodes() {
        let g_v = a.left.counts[v.index()].min(a.groups).round() as u64;
        for g in 0..g_v {
            placement.push(v, Rel::R, encode(g, 1));
        }
    }
    let lb = groupby_lower_bound(tree, &placement);
    Some(LowerBound::new(lb.value() * 2.0, lb.witness()))
}

/// One-round partial shuffle under a weighted or uniform group hash.
#[derive(Debug)]
pub(crate) struct HashAggregate {
    weighted: bool,
}

impl HashAggregate {
    /// Distribution-weighted group owners.
    pub fn weighted() -> Self {
        HashAggregate { weighted: true }
    }

    /// Uniform group owners (the MPC baseline).
    pub fn uniform() -> Self {
        HashAggregate { weighted: false }
    }
}

impl PhysicalStrategy for HashAggregate {
    fn name(&self) -> &'static str {
        if self.weighted {
            "weighted-repartition"
        } else {
            "uniform-repartition"
        }
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Aggregate
    }

    fn algorithm(&self) -> Option<&'static str> {
        self.weighted.then_some("weighted hash group-by")
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        // Each node ships at most min(n_v, G) partials of width 2.
        let partials = groups_per_node(a);
        let shares = if self.weighted {
            a.model.proportional_shares(&a.left.counts)
        } else {
            a.model.uniform_shares()
        };
        CostEstimate {
            tuple_cost: a.model.repartition_cost(&partials, 2, &shares),
            rounds: 1,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        agg_lower_bound(a)
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        if self.weighted {
            a.model.proportional_shares(&a.left.counts)
        } else {
            a.model.uniform_shares()
        }
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (frags, gi, mi, agg) = agg_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let router: Box<dyn Fn(u64) -> NodeId> = if self.weighted {
            let weights = frag_weights(tree, &frags, &empty_frags(tree));
            match WeightedHash::new(a.seed, &weights) {
                Some(h) => Box::new(move |g| h.pick(g)),
                None => {
                    return Ok(OpTrace {
                        rounds: trace.into_rounds(),
                        output: empty_frags(tree),
                    })
                }
            }
        } else {
            let vc: Vec<NodeId> = tree.compute_nodes().to_vec();
            let seed = a.seed;
            Box::new(move |g| vc[(mix64(g ^ seed) % vc.len() as u64) as usize])
        };
        let mut owned: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); tree.num_nodes()];
        let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
        for &v in tree.compute_nodes() {
            let mut partials: BTreeMap<u64, u64> = BTreeMap::new();
            for row in &frags[v.index()] {
                let lifted = agg.lift(row[mi]);
                partials
                    .entry(row[gi])
                    .and_modify(|p| *p = agg.combine(*p, lifted))
                    .or_insert(lifted);
            }
            let mut by_owner: HashMap<NodeId, Vec<Row>> = HashMap::new();
            for (g, m) in partials {
                let owner = router(g);
                if owner == v {
                    owned[v.index()]
                        .entry(g)
                        .and_modify(|p| *p = agg.combine(*p, m))
                        .or_insert(m);
                } else {
                    by_owner.entry(owner).or_default().push(vec![g, m]);
                }
            }
            for (owner, rows) in drain_sorted(by_owner) {
                outgoing.push((v, owner, flatten(&rows, 2)));
                for row in rows {
                    owned[owner.index()]
                        .entry(row[0])
                        .and_modify(|p| *p = agg.combine(*p, row[1]))
                        .or_insert(row[1]);
                }
            }
        }
        trace.round(|round| unicast_round(round, outgoing, Rel::S, 2));
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: owned
                .into_iter()
                .map(|m| m.into_iter().map(|(g, v)| vec![g, v]).collect())
                .collect(),
        })
    }
}

/// The in-network combining convergecast: partials merge level by level
/// along the tree toward the first valid-order compute node, one
/// combiner per subtree.
#[derive(Debug)]
pub(crate) struct CombiningTreeAggregate;

impl PhysicalStrategy for CombiningTreeAggregate {
    fn name(&self) -> &'static str {
        "combining-tree"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Aggregate
    }

    fn algorithm(&self) -> Option<&'static str> {
        Some("in-network combining convergecast")
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let tree = a.model.tree();
        let target = valid_order(tree)[0];
        let weights: Vec<u64> = a.left.counts.iter().map(|c| c.round() as u64).collect();
        let schedule = combining_schedule(tree, &weights, target);
        let mut g: Vec<f64> = groups_per_node(a);
        let mut cost = 0.0;
        let rounds = schedule.len();
        for moves in schedule {
            let mut load = a.model.zero_load();
            for &(src, dst) in &moves {
                a.model.add_path(&mut load, src, dst, g[src.index()] * 2.0);
            }
            cost += a.model.round_cost(&load);
            for (src, dst) in moves {
                let moved = std::mem::take(&mut g[src.index()]);
                g[dst.index()] = (g[dst.index()] + moved).min(a.groups);
            }
        }
        CostEstimate {
            tuple_cost: cost,
            rounds,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        agg_lower_bound(a)
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        let target = valid_order(a.model.tree())[0];
        let mut shares = a.model.zero_counts();
        shares[target.index()] = 1.0;
        shares
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (frags, gi, mi, agg) = agg_input(input);
        let tree = a.tree;
        let target = valid_order(tree)[0];
        let weights: Vec<u64> = frags.iter().map(|f| f.len() as u64).collect();
        let schedule = combining_schedule(tree, &weights, target);

        // Local pre-aggregation seeds each node's running partials.
        let mut acc: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); tree.num_nodes()];
        for &v in tree.compute_nodes() {
            let node_acc = &mut acc[v.index()];
            for row in &frags[v.index()] {
                let lifted = agg.lift(row[mi]);
                node_acc
                    .entry(row[gi])
                    .and_modify(|p| *p = agg.combine(*p, lifted))
                    .or_insert(lifted);
            }
        }

        let mut trace = TraceBuilder::batched(a.batch);
        for moves in schedule {
            trace.round(|round| {
                for &(src, dst) in &moves {
                    let rows: Vec<Row> =
                        acc[src.index()].iter().map(|(&g, &m)| vec![g, m]).collect();
                    round.send_rows(src, &[dst], Rel::S, flatten(&rows, 2), 2);
                }
            });
            for (src, dst) in moves {
                let moved = std::mem::take(&mut acc[src.index()]);
                let dst_acc = &mut acc[dst.index()];
                for (g, m) in moved {
                    dst_acc
                        .entry(g)
                        .and_modify(|p| *p = agg.combine(*p, m))
                        .or_insert(m);
                }
            }
        }

        let mut out = empty_frags(tree);
        out[target.index()] = std::mem::take(&mut acc[target.index()])
            .into_iter()
            .map(|(g, m)| vec![g, m])
            .collect();
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: out,
        })
    }
}
