//! Cartesian-product strategies.
//!
//! - [`WhcGridCross`] — the §4 weighted-HyperCube idea generalized to
//!   `|L| ≠ |R|` via the Appendix A.1 rectangle packing
//!   (`tamp_core::cartesian::unequal::plan_unequal`): rows and columns of
//!   the `|L| × |R|` output grid are globally labelled, every node is
//!   assigned rectangles sized to its link bandwidth, and each node
//!   receives exactly the `L`-row and `R`-row intervals its rectangles
//!   span (one round, interval multicasts);
//! - [`BroadcastSmallCross`] — replicate the smaller side (by values) to
//!   every node holding rows of the larger side;
//! - [`UniformHyperCubeCross`] — the classic HyperCube/shares baseline: a
//!   near-square `p₁ × p₂` node grid with uniform row/column bands,
//!   blind to bandwidths and placement.
//!
//! Lower bound: Theorems 3 + 4
//! ([`tamp_core::cartesian::cartesian_lower_bound`]) on the estimated
//! placement.

use std::ops::Range;

use tamp_core::cartesian::cartesian_lower_bound;
use tamp_core::cartesian::grid::interval_segments;
use tamp_core::cartesian::unequal::{plan_unequal, Rect};
use tamp_core::ratio::LowerBound;
use tamp_simulator::Rel;
use tamp_topology::{DirEdgeId, NodeId, Tree};

use crate::error::QueryError;
use crate::physical::strategy::{
    CostEstimate, ExecArgs, Fragments, OpInput, OpTrace, OperatorKind, PhysicalStrategy, PlanArgs,
    PlanSide, TraceBuilder,
};
use crate::row::{flatten, Row};

use super::{broadcast_small, empty_frags, holders_of};

fn cross_input(input: OpInput) -> (Fragments, Fragments, usize, usize) {
    let OpInput::CrossJoin {
        left,
        right,
        left_width,
        right_width,
    } = input
    else {
        unreachable!("registered for CrossJoin");
    };
    (left, right, left_width, right_width)
}

fn cross_lower_bound(a: &PlanArgs<'_>) -> Option<LowerBound> {
    if !a.symmetric() {
        return None;
    }
    Some(cartesian_lower_bound(a.model.tree(), &a.value_stats()))
}

/// Per-compute-node capacity: the bandwidth of the node's adjacent edge
/// (the wHC convention), with infinite links clamped.
fn capacities(tree: &Tree) -> Vec<(NodeId, f64)> {
    tree.compute_nodes()
        .iter()
        .map(|&v| {
            let (_, e) = tree.neighbors(v)[0];
            let bw = tree
                .bandwidth(DirEdgeId::new(e, false))
                .min(tree.bandwidth(DirEdgeId::new(e, true)));
            let w = if bw.is_infinite() { 1e9 } else { bw.get() };
            (v, w)
        })
        .collect()
}

/// Replicate the smaller side (by values) to the big side's holders.
#[derive(Debug)]
pub(crate) struct BroadcastSmallCross;

impl PhysicalStrategy for BroadcastSmallCross {
    fn name(&self) -> &'static str {
        "broadcast-small"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::CrossJoin
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let right = a.right.as_ref().expect("cross join has two inputs");
        // The executor broadcasts the side with fewer values.
        let left_is_small =
            a.left.total() * a.left.width as f64 <= right.total() * right.width as f64;
        let (small, big) = if left_is_small {
            (&a.left, right)
        } else {
            (right, &a.left)
        };
        let holders: Vec<NodeId> = a
            .model
            .tree()
            .compute_nodes()
            .iter()
            .copied()
            .filter(|&v| big.counts[v.index()] > 0.0)
            .collect();
        CostEstimate {
            tuple_cost: a.model.multicast_cost(&small.counts, small.width, &holders),
            rounds: 1,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        cross_lower_bound(a)
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        let right = a.right.as_ref().expect("cross join has two inputs");
        let big = if a.left.total() * a.left.width as f64 <= right.total() * right.width as f64 {
            &right.counts
        } else {
            &a.left.counts
        };
        a.model.proportional_shares(big)
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (lfrags, rfrags, lw, rw) = cross_input(input);
        let tree = a.tree;
        let mut trace = TraceBuilder::batched(a.batch);
        let l_total: usize = lfrags.iter().map(Vec::len).sum();
        let r_total: usize = rfrags.iter().map(Vec::len).sum();
        let left_is_small = l_total * lw <= r_total * rw;
        let (small_frags, small_w, big_frags) = if left_is_small {
            (&lfrags, lw, &rfrags)
        } else {
            (&rfrags, rw, &lfrags)
        };
        let holders = holders_of(tree, big_frags);
        let small_new = broadcast_small(&mut trace, tree, small_frags, small_w, &holders);
        let mut out = empty_frags(tree);
        for &h in &holders {
            for big_row in &big_frags[h.index()] {
                for small_row in &small_new[h.index()] {
                    let joined = if left_is_small {
                        let mut j = small_row.clone();
                        j.extend_from_slice(big_row);
                        j
                    } else {
                        let mut j = big_row.clone();
                        j.extend_from_slice(small_row);
                        j
                    };
                    out[h.index()].push(joined);
                }
            }
        }
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: out,
        })
    }
}

/// A rectangle cover of the `|L| × |R|` output grid: rows index `L`,
/// columns index `R`, both labelled in compute-node order.
fn clip(rects: &[Rect], l_total: u64, r_total: u64) -> Vec<Rect> {
    rects
        .iter()
        .filter_map(|r| {
            let h = r.h.min(l_total.saturating_sub(r.row));
            let w = r.w.min(r_total.saturating_sub(r.col));
            (h > 0 && w > 0).then_some(Rect { h, w, ..*r })
        })
        .collect()
}

/// Execute a rectangle cover: one round of interval multicasts, then each
/// owner enumerates its rectangles' row×column products.
fn rect_cross_trace(
    tree: &Tree,
    rects: &[Rect],
    lfrags: &Fragments,
    rfrags: &Fragments,
    lw: usize,
    rw: usize,
    batch: usize,
) -> OpTrace {
    let mut trace = TraceBuilder::batched(batch);
    // Global labels: concatenate fragments in compute-node order.
    let order = tree.compute_nodes();
    let mut l_start = vec![0u64; tree.num_nodes()];
    let mut r_start = vec![0u64; tree.num_nodes()];
    let (mut l_acc, mut r_acc) = (0u64, 0u64);
    for &v in order {
        l_start[v.index()] = l_acc;
        r_start[v.index()] = r_acc;
        l_acc += lfrags[v.index()].len() as u64;
        r_acc += rfrags[v.index()].len() as u64;
    }
    let l_recipients: Vec<(NodeId, Range<u64>)> = rects
        .iter()
        .map(|r| (r.owner, r.row..r.row + r.h))
        .collect();
    let r_recipients: Vec<(NodeId, Range<u64>)> = rects
        .iter()
        .map(|r| (r.owner, r.col..r.col + r.w))
        .collect();
    trace.round(|round| {
        for &v in order {
            for (frags, width, start, recipients, rel) in [
                (lfrags, lw, &l_start, &l_recipients, Rel::R),
                (rfrags, rw, &r_start, &r_recipients, Rel::S),
            ] {
                let local = &frags[v.index()];
                for (mut dsts, sub) in interval_segments(local.len(), start[v.index()], recipients)
                {
                    dsts.sort_unstable();
                    dsts.dedup();
                    round.send_rows(v, &dsts, rel, flatten(&local[sub], width), width);
                }
            }
        }
    });
    // Output from model knowledge: every owner enumerates its rectangles
    // over the globally labelled rows — exactly the data it was sent.
    let l_global: Vec<&Row> = order
        .iter()
        .flat_map(|&v| lfrags[v.index()].iter())
        .collect();
    let r_global: Vec<&Row> = order
        .iter()
        .flat_map(|&v| rfrags[v.index()].iter())
        .collect();
    let mut out = empty_frags(tree);
    for rect in rects {
        let rows = &l_global[rect.row as usize..(rect.row + rect.h) as usize];
        let cols = &r_global[rect.col as usize..(rect.col + rect.w) as usize];
        let dst = &mut out[rect.owner.index()];
        for &lrow in rows {
            for &rrow in cols {
                let mut j = lrow.clone();
                j.extend_from_slice(rrow);
                dst.push(j);
            }
        }
    }
    OpTrace {
        rounds: trace.into_rounds(),
        output: out,
    }
}

/// Price a rectangle cover: each source ships its interval overlaps to
/// every owner (per-rectangle, a slight over-estimate of the multicast
/// union).
fn rect_cross_estimate(a: &PlanArgs<'_>, rects: &[Rect], left: &PlanSide, right: &PlanSide) -> f64 {
    fn row_range(r: &Rect) -> (u64, u64) {
        (r.row, r.row + r.h)
    }
    fn col_range(r: &Rect) -> (u64, u64) {
        (r.col, r.col + r.w)
    }
    let mut load = a.model.zero_load();
    for (side, range_of) in [
        (left, row_range as fn(&Rect) -> (u64, u64)),
        (right, col_range),
    ] {
        let mut start = 0.0f64;
        for &v in a.model.tree().compute_nodes() {
            let end = start + side.counts[v.index()];
            for rect in rects {
                let (lo, hi) = range_of(rect);
                let overlap = (end.min(hi as f64) - start.max(lo as f64)).max(0.0);
                a.model
                    .add_path(&mut load, v, rect.owner, overlap * side.width as f64);
            }
            start = end;
        }
    }
    a.model.round_cost(&load)
}

/// The §4 wHC / Appendix A.1 rectangle strategy.
#[derive(Debug)]
pub(crate) struct WhcGridCross;

impl WhcGridCross {
    fn plan(tree: &Tree, l_total: u64, r_total: u64) -> Vec<Rect> {
        if l_total == 0 || r_total == 0 {
            return Vec::new();
        }
        let plan = plan_unequal(l_total, r_total, &capacities(tree));
        clip(&plan.rects, l_total, r_total)
    }
}

impl PhysicalStrategy for WhcGridCross {
    fn name(&self) -> &'static str {
        "whc-grid"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::CrossJoin
    }

    fn algorithm(&self) -> Option<&'static str> {
        Some("§4 wHC / A.1 rectangles")
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let right = a.right.as_ref().expect("cross join has two inputs");
        let (l_total, r_total) = (a.left.total().round() as u64, right.total().round() as u64);
        let rects = Self::plan(a.model.tree(), l_total, r_total);
        CostEstimate {
            tuple_cost: rect_cross_estimate(a, &rects, &a.left, right),
            rounds: 1,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        cross_lower_bound(a)
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        let right = a.right.as_ref().expect("cross join has two inputs");
        let (l_total, r_total) = (a.left.total().round() as u64, right.total().round() as u64);
        let rects = Self::plan(a.model.tree(), l_total, r_total);
        let mut shares = a.model.zero_counts();
        let grid = (l_total as f64 * r_total as f64).max(1.0);
        for r in &rects {
            shares[r.owner.index()] += (r.h as f64 * r.w as f64) / grid;
        }
        shares
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (lfrags, rfrags, lw, rw) = cross_input(input);
        let l_total: usize = lfrags.iter().map(Vec::len).sum();
        let r_total: usize = rfrags.iter().map(Vec::len).sum();
        let rects = Self::plan(a.tree, l_total as u64, r_total as u64);
        Ok(rect_cross_trace(
            a.tree, &rects, &lfrags, &rfrags, lw, rw, a.batch,
        ))
    }
}

/// The classic HyperCube/shares baseline on a near-square node grid.
#[derive(Debug)]
pub(crate) struct UniformHyperCubeCross;

impl UniformHyperCubeCross {
    fn plan(tree: &Tree, l_total: u64, r_total: u64) -> Vec<Rect> {
        if l_total == 0 || r_total == 0 {
            return Vec::new();
        }
        let computes = tree.compute_nodes();
        let p = computes.len() as u64;
        let p1 = ((p as f64).sqrt().floor() as u64).max(1);
        let p2 = (p / p1).max(1);
        let band = |total: u64, parts: u64, i: u64| -> Range<u64> {
            (total * i / parts)..(total * (i + 1) / parts)
        };
        let mut rects = Vec::new();
        for (k, &v) in computes.iter().enumerate().take((p1 * p2) as usize) {
            let (i, j) = (k as u64 / p2, k as u64 % p2);
            let rows = band(l_total, p1, i);
            let cols = band(r_total, p2, j);
            rects.push(Rect {
                owner: v,
                row: rows.start,
                h: rows.end - rows.start,
                col: cols.start,
                w: cols.end - cols.start,
            });
        }
        clip(&rects, l_total, r_total)
    }
}

impl PhysicalStrategy for UniformHyperCubeCross {
    fn name(&self) -> &'static str {
        "uniform-hypercube"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::CrossJoin
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let right = a.right.as_ref().expect("cross join has two inputs");
        let (l_total, r_total) = (a.left.total().round() as u64, right.total().round() as u64);
        let rects = Self::plan(a.model.tree(), l_total, r_total);
        CostEstimate {
            tuple_cost: rect_cross_estimate(a, &rects, &a.left, right),
            rounds: 1,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        cross_lower_bound(a)
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        a.model.uniform_shares()
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let (lfrags, rfrags, lw, rw) = cross_input(input);
        let l_total: usize = lfrags.iter().map(Vec::len).sum();
        let r_total: usize = rfrags.iter().map(Vec::len).sum();
        let rects = Self::plan(a.tree, l_total as u64, r_total as u64);
        Ok(rect_cross_trace(
            a.tree, &rects, &lfrags, &rfrags, lw, rw, a.batch,
        ))
    }
}
