//! Global-sort strategies: the §5.2 weighted TeraSort range shuffle and
//! the classic uniform-splitter TeraSort baseline.
//!
//! Both run the same three rounds — sample keys to a coordinator,
//! broadcast `k − 1` splitters, range-shuffle rows into the tree's valid
//! left-to-right compute order — and differ only in the splitter policy
//! ([`tamp_core::sorting::splitters`]): proportional splitters keep each
//! node's share close to its current load (data mostly stays put), while
//! uniform splitters force every node to `≈ N/k` rows regardless of where
//! the data started — exactly the topology-blindness the paper's §5
//! fixes. Lower bound: Theorem 6 on the estimated placement.

use tamp_core::ratio::LowerBound;
use tamp_core::sorting::{
    coin, proportional_splitters, sample_rate, sorting_lower_bound, uniform_splitters, valid_order,
};
use tamp_simulator::Rel;
use tamp_topology::NodeId;

use crate::error::QueryError;
use crate::physical::strategy::{
    CostEstimate, ExecArgs, OpInput, OpTrace, OperatorKind, PhysicalStrategy, PlanArgs,
    TraceBuilder,
};
use crate::row::Row;

use super::empty_frags;

/// The sample → splitters → shuffle sort, parameterized by splitter
/// policy.
#[derive(Debug)]
pub(crate) struct RangeShuffleSort {
    weighted: bool,
}

impl RangeShuffleSort {
    /// Proportional (wTS, §5.2) splitters.
    pub fn weighted() -> Self {
        RangeShuffleSort { weighted: true }
    }

    /// Uniform (classic TeraSort) splitters.
    pub fn uniform() -> Self {
        RangeShuffleSort { weighted: false }
    }
}

impl PhysicalStrategy for RangeShuffleSort {
    fn name(&self) -> &'static str {
        if self.weighted {
            "weighted-range-shuffle"
        } else {
            "uniform-range-shuffle"
        }
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Sort
    }

    fn algorithm(&self) -> Option<&'static str> {
        self.weighted.then_some("§5.2 weighted TeraSort")
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let model = a.model;
        let counts = &a.left.counts;
        let width = a.left.width;
        let total: f64 = counts.iter().sum();
        let order = valid_order(model.tree());
        let coordinator = order[0];
        // Sample round: ~ρ·n_v keys (width 1) to the coordinator.
        let rho = sample_rate(order.len(), total.round() as u64);
        let samples: Vec<f64> = counts.iter().map(|n| n * rho).collect();
        let sample_cost = model.gather_cost(&samples, 1, coordinator);
        // Splitter broadcast: k−1 values from the coordinator.
        let mut splitters = model.zero_counts();
        splitters[coordinator.index()] = order.len().saturating_sub(1) as f64;
        let split_cost = model.multicast_cost(&splitters, 1, &order);
        // Shuffle: proportional splitters mean each node keeps roughly
        // its current share; uniform splitters level every node to N/k.
        let shares = if self.weighted {
            model.proportional_shares(counts)
        } else {
            model.uniform_shares()
        };
        let shuffle_cost = model.repartition_cost(counts, width, &shares);
        CostEstimate {
            tuple_cost: sample_cost + split_cost + shuffle_cost,
            rounds: 3,
        }
    }

    fn lower_bound(&self, a: &PlanArgs<'_>) -> Option<LowerBound> {
        if !a.symmetric() {
            return None;
        }
        Some(sorting_lower_bound(a.model.tree(), &a.value_stats()))
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        if self.weighted {
            a.model.proportional_shares(&a.left.counts)
        } else {
            a.model.uniform_shares()
        }
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let OpInput::Sort {
            input,
            key: ki,
            width,
        } = input
        else {
            unreachable!("registered for Sort");
        };
        let tree = a.tree;
        let frags = input;
        let order = valid_order(tree);
        let total: usize = frags.iter().map(Vec::len).sum();
        if total == 0 {
            return Ok(OpTrace {
                rounds: Vec::new(),
                output: frags,
            });
        }
        let mut trace = TraceBuilder::batched(a.batch);
        let coordinator = order[0];
        let rho = sample_rate(order.len(), total as u64);

        // Round 1: sample keys to the coordinator (width-1 messages).
        let mut all_samples: Vec<u64> = Vec::new();
        let mut sampled: Vec<(NodeId, Vec<u64>)> = Vec::new();
        for &v in &order {
            let samples: Vec<u64> = frags[v.index()]
                .iter()
                .map(|r| r[ki])
                .filter(|&x| coin(a.seed, x, rho))
                .collect();
            all_samples.extend_from_slice(&samples);
            sampled.push((v, samples));
        }
        trace.round(|round| {
            for (v, samples) in sampled {
                round.send_rows(v, &[coordinator], Rel::S, samples, 1);
            }
        });

        // Coordinator picks splitters under the strategy's policy.
        all_samples.sort_unstable();
        let splitters = if self.weighted {
            let weights: Vec<u64> = order
                .iter()
                .map(|&v| frags[v.index()].len() as u64)
                .collect();
            proportional_splitters(&all_samples, &weights)
        } else {
            uniform_splitters(&all_samples, order.len())
        };

        // Round 2: broadcast splitters.
        trace.round(|round| round.send_rows(coordinator, &order, Rel::S, splitters.clone(), 1));

        // Round 3: range shuffle by splitter buckets.
        let mut new_frags = empty_frags(tree);
        let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
        for &v in &order {
            let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); order.len()];
            for row in &frags[v.index()] {
                let b = splitters
                    .partition_point(|&s| s <= row[ki])
                    .min(order.len() - 1);
                buckets[b].push(row.clone());
            }
            for (j, bucket) in buckets.into_iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                if order[j] == v {
                    new_frags[v.index()].extend(bucket);
                } else {
                    outgoing.push((v, order[j], crate::row::flatten(&bucket, width)));
                    new_frags[order[j].index()].extend(bucket);
                }
            }
        }
        trace.round(|round| super::unicast_round(round, outgoing, Rel::R, width));
        for &v in &order {
            new_frags[v.index()].sort_by_key(|r| (r[ki], r.clone()));
        }
        // Bucket i already lives at order[i], so concatenation by node
        // order yields the global order.
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: new_frags,
        })
    }
}
