//! The built-in physical strategies.
//!
//! For each pluggable operator the registry's defaults pair the paper's
//! topology-/distribution-aware algorithm with its topology-agnostic
//! baseline, so the planner's choice reproduces the paper's "who wins
//! where" question per query:
//!
//! | Operator | Paper algorithm | Baseline(s) |
//! |----------|-----------------|-------------|
//! | join | `weighted-repartition` (Alg 2 hash), `tree-partition` (§3 `TreeIntersect` routing), `broadcast-small` (`V_β`, Alg 1) | `uniform-repartition` |
//! | cross-join | `whc-grid` (§4 wHC / A.1 rectangles) | `broadcast-small`, `uniform-hypercube` |
//! | sort | `weighted-range-shuffle` (§5.2 wTS splitters) | `uniform-range-shuffle` (classic TeraSort) |
//! | aggregate | `combining-tree` (in-network convergecast) | `weighted-repartition`, `uniform-repartition` |
//! | distinct | — | `weighted-repartition` (whole-row hash) |
//! | limit | — | `gather` |
//!
//! All strategies are pure plan/trace pairs: they never touch an engine,
//! so every one of them runs on the simulator and the pooled cluster with
//! bit-identical ledgers through the schedule-replay fabric.

use std::collections::HashMap;
use std::sync::Arc;

use tamp_core::hashing::{mix64, WeightedHash};
use tamp_core::sorting::valid_order;
use tamp_simulator::Rel;
use tamp_topology::{NodeId, Tree};

use crate::error::QueryError;
use crate::physical::strategy::{
    CostEstimate, ExecArgs, Fragments, OpInput, OpTrace, OperatorKind, PhysicalStrategy, PlanArgs,
    RoundSends, TraceBuilder,
};
use crate::row::{canonicalize, flatten, Row};

pub(crate) mod aggregate;
pub(crate) mod columnar;
pub(crate) mod cross;
pub(crate) mod join;
pub(crate) mod sort;

/// Every built-in strategy, in registration (tie-break) order:
/// distribution-aware first.
pub(crate) fn defaults() -> Vec<Arc<dyn PhysicalStrategy>> {
    vec![
        // Joins. Tie-break order: the weighted repartition, then the
        // broadcast (on uniform stars the balanced partition degenerates
        // to singleton blocks and `tree-partition` ties with it — prefer
        // the simpler plan), then the §3 routing, then the baseline.
        Arc::new(join::WeightedRepartitionJoin),
        Arc::new(join::BroadcastSmallJoin),
        Arc::new(join::TreePartitionJoin),
        Arc::new(join::UniformRepartitionJoin),
        // Cross joins.
        Arc::new(cross::WhcGridCross),
        Arc::new(cross::BroadcastSmallCross),
        Arc::new(cross::UniformHyperCubeCross),
        // Sorts.
        Arc::new(sort::RangeShuffleSort::weighted()),
        Arc::new(sort::RangeShuffleSort::uniform()),
        // Aggregates.
        Arc::new(aggregate::HashAggregate::weighted()),
        Arc::new(aggregate::CombiningTreeAggregate),
        Arc::new(aggregate::HashAggregate::uniform()),
        // Fixed-exchange relational operators.
        Arc::new(WeightedDistinct),
        Arc::new(GatherLimit),
    ]
}

/// Empty fragments for `tree`.
pub(crate) fn empty_frags(tree: &Tree) -> Fragments {
    vec![Vec::new(); tree.num_nodes()]
}

/// Current per-node row counts, as weights for distribution-aware
/// hashing.
pub(crate) fn frag_weights(
    tree: &Tree,
    frags: &[Vec<Row>],
    extra: &[Vec<Row>],
) -> Vec<(NodeId, u64)> {
    tree.compute_nodes()
        .iter()
        .map(|&v| (v, (frags[v.index()].len() + extra[v.index()].len()) as u64))
        .collect()
}

/// The nodes holding rows of `frags` — broadcast destinations.
pub(crate) fn holders_of(tree: &Tree, frags: &Fragments) -> Vec<NodeId> {
    tree.compute_nodes()
        .iter()
        .copied()
        .filter(|&v| !frags[v.index()].is_empty())
        .collect()
}

/// One-round replication of `small_frags` (rows of `small_w` values) to
/// every holder: records the multicast round and returns the replicated
/// fragments (every holder ends up with the full small side).
pub(crate) fn broadcast_small(
    trace: &mut TraceBuilder,
    tree: &Tree,
    small_frags: &Fragments,
    small_w: usize,
    holders: &[NodeId],
) -> Fragments {
    trace.round(|round| {
        for &v in tree.compute_nodes() {
            let local = &small_frags[v.index()];
            if local.is_empty() || holders.is_empty() {
                continue;
            }
            round.send_rows(v, holders, Rel::R, flatten(local, small_w), small_w);
        }
    });
    let mut small_new = empty_frags(tree);
    for &h in holders {
        for frag in small_frags.iter() {
            small_new[h.index()].extend(frag.iter().cloned());
        }
    }
    small_new
}

/// Drain a grouping map in ascending key order.
///
/// Exchange emission must be *deterministic*, not merely correct: the
/// schedule's content hash doubles as the checkpoint-resume token, so
/// two executions of the same pinned plan must produce byte-identical
/// schedules — the same sends in the same order — or a faulted run's
/// parked snapshot can never match its own retry. Iterating the
/// `HashMap` directly would emit sends in `RandomState` order, which
/// differs per map instance.
pub(crate) fn drain_sorted<K: Ord, V>(map: HashMap<K, V>) -> Vec<(K, V)> {
    // lint: allow(D1) — this IS the sanctioned route: the unordered
    // drain is re-sorted on the next line, which is the whole contract.
    let mut entries: Vec<(K, V)> = map.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

/// One-round repartition of row fragments by a key router.
pub(crate) fn shuffle_by_key(
    trace: &mut TraceBuilder,
    tree: &Tree,
    frags: &Fragments,
    key_idx: usize,
    width: usize,
    rel: Rel,
    router: &dyn Fn(u64) -> NodeId,
) -> Fragments {
    let mut new_frags = empty_frags(tree);
    let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
    for &v in tree.compute_nodes() {
        let mut by_dst: HashMap<NodeId, Vec<Row>> = HashMap::new();
        for row in &frags[v.index()] {
            let dst = router(row[key_idx]);
            if dst == v {
                new_frags[v.index()].push(row.clone());
            } else {
                by_dst.entry(dst).or_default().push(row.clone());
            }
        }
        for (dst, rows) in drain_sorted(by_dst) {
            outgoing.push((v, dst, flatten(&rows, width)));
            new_frags[dst.index()].extend(rows);
        }
    }
    trace.round(|round| {
        for (src, dst, buf) in outgoing {
            round.send_rows(src, &[dst], rel, buf, width);
        }
    });
    new_frags
}

/// Local probe join of co-located fragments: `left ⋈ right` on
/// `left[li] = right[ri]`, output rows `left ++ right`.
pub(crate) fn probe_join(
    tree: &Tree,
    l_new: &Fragments,
    r_new: &Fragments,
    li: usize,
    ri: usize,
) -> Fragments {
    let mut out = empty_frags(tree);
    for &v in tree.compute_nodes() {
        let mut by_key: HashMap<u64, Vec<&Row>> = HashMap::new();
        for row in &r_new[v.index()] {
            by_key.entry(row[ri]).or_default().push(row);
        }
        for lrow in &l_new[v.index()] {
            if let Some(matches) = by_key.get(&lrow[li]) {
                for rrow in matches {
                    let mut joined = lrow.clone();
                    joined.extend_from_slice(rrow);
                    out[v.index()].push(joined);
                }
            }
        }
    }
    out
}

/// Send each `(src, dst, rows)` payload of `width`-value rows as
/// batch-chunked unicasts in a single round.
pub(crate) fn unicast_round(
    round: &mut RoundSends,
    outgoing: Vec<(NodeId, NodeId, Vec<u64>)>,
    rel: Rel,
    width: usize,
) {
    for (src, dst, buf) in outgoing {
        round.send_rows(src, &[dst], rel, buf, width);
    }
}

/// Duplicate elimination: dedup locally, shuffle under a whole-row hash
/// weighted by current loads, dedup again at the destination — a
/// duplicate never travels twice.
#[derive(Debug)]
pub(crate) struct WeightedDistinct;

impl PhysicalStrategy for WeightedDistinct {
    fn name(&self) -> &'static str {
        "weighted-repartition"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Distinct
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        // Assume rows are mostly distinct already (upper bound on
        // traffic): everything shuffles under the weighted hash.
        let shares = a.model.proportional_shares(&a.left.counts);
        CostEstimate {
            tuple_cost: a
                .model
                .repartition_cost(&a.left.counts, a.left.width, &shares),
            rounds: 1,
        }
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let OpInput::Distinct { input, width } = input else {
            unreachable!("registered for Distinct");
        };
        let tree = a.tree;
        let weights = frag_weights(tree, &input, &empty_frags(tree));
        let mut trace = TraceBuilder::batched(a.batch);
        let Some(hash) = WeightedHash::new(a.seed ^ 0xD157, &weights) else {
            return Ok(OpTrace {
                rounds: trace.into_rounds(),
                output: empty_frags(tree),
            });
        };
        let row_key = |row: &Row| {
            row.iter()
                .fold(0xCBF29CE484222325u64, |h, &c| mix64(h ^ mix64(c)))
        };
        let mut new_frags = empty_frags(tree);
        let mut outgoing: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
        for &v in tree.compute_nodes() {
            let mut by_dst: HashMap<NodeId, Vec<Row>> = HashMap::new();
            // Dedup locally first: duplicates never need to travel twice.
            let mut local = input[v.index()].clone();
            canonicalize(&mut local);
            local.dedup();
            for row in local {
                let dst = hash.pick(row_key(&row));
                if dst == v {
                    new_frags[v.index()].push(row);
                } else {
                    by_dst.entry(dst).or_default().push(row);
                }
            }
            for (dst, rows) in drain_sorted(by_dst) {
                outgoing.push((v, dst, flatten(&rows, width)));
                new_frags[dst.index()].extend(rows);
            }
        }
        trace.round(|round| unicast_round(round, outgoing, Rel::R, width));
        for frag in &mut new_frags {
            canonicalize(frag);
            frag.dedup();
        }
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: new_frags,
        })
    }
}

/// Limit: a bounded gather to the first compute node — each node
/// contributes at most `n` rows, so the gather ships `O(n·|V_C|)` rows
/// regardless of input size.
#[derive(Debug)]
pub(crate) struct GatherLimit;

impl PhysicalStrategy for GatherLimit {
    fn name(&self) -> &'static str {
        "gather"
    }

    fn operator(&self) -> OperatorKind {
        OperatorKind::Limit
    }

    fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
        let target = valid_order(a.model.tree())[0];
        let contributions: Vec<f64> = a
            .left
            .counts
            .iter()
            .map(|&c| c.min(a.limit as f64))
            .collect();
        CostEstimate {
            tuple_cost: a.model.gather_cost(&contributions, a.left.width, target),
            rounds: 1,
        }
    }

    fn output_shares(&self, a: &PlanArgs<'_>) -> Vec<f64> {
        let target = valid_order(a.model.tree())[0];
        let mut shares = a.model.zero_counts();
        shares[target.index()] = 1.0;
        shares
    }

    fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
        let OpInput::Limit {
            input,
            n,
            width,
            order_preserving,
        } = input
        else {
            unreachable!("registered for Limit");
        };
        let tree = a.tree;
        let order = valid_order(tree);
        let target = order[0];
        // Each node contributes at most n rows (its first n in local
        // order).
        let mut contributions: Vec<(NodeId, Vec<Row>)> = Vec::new();
        for &v in &order {
            let mut local = input[v.index()].clone();
            if !order_preserving {
                canonicalize(&mut local);
            }
            local.truncate(n);
            contributions.push((v, local));
        }
        let mut trace = TraceBuilder::batched(a.batch);
        trace.round(|round| {
            for (v, rows) in &contributions {
                if *v != target && !rows.is_empty() {
                    round.send_rows(*v, &[target], Rel::R, flatten(rows, width), width);
                }
            }
        });
        // Concatenate in node order (global order for order-preserving
        // inputs), else canonicalize, then cut.
        let mut all: Vec<Row> = contributions.into_iter().flat_map(|(_, r)| r).collect();
        if !order_preserving {
            canonicalize(&mut all);
        }
        all.truncate(n);
        let mut out = empty_frags(tree);
        out[target.index()] = all;
        Ok(OpTrace {
            rounds: trace.into_rounds(),
            output: out,
        })
    }
}
