//! Columnar-native exchange kernels for the hash-join strategies.
//!
//! These mirror the row helpers in [`super`] (`shuffle_by_key`,
//! `broadcast_small`, `probe_join`) batch-at-a-time: routing scans one
//! key column, movement is index gathers over shared column buffers, and
//! replication is a refcount bump per column. Every helper reproduces the
//! row helper's fragment order and sends exactly — per destination,
//! chunks arrive in ascending source order with rows in source scan
//! order, and the local chunk sits at the source's own position — so the
//! columnar engine's rows, rounds, and metered ledgers are bit-identical
//! to the tuple engine's (the `plan_parity` proptests enforce this).

use tamp_core::hashing::mix64;
use tamp_simulator::{Rel, Value};
use tamp_topology::{NodeId, Tree};

use crate::batch::{batch_rows, gather_multi, RecordBatch};
use crate::physical::strategy::TraceBuilder;

/// Per-node batch lists, indexed by node id (the columnar `Fragments`).
pub(crate) type BatchFragments = Vec<Vec<RecordBatch>>;

/// Empty batch fragments for `tree`.
pub(crate) fn empty_batch_frags(tree: &Tree) -> BatchFragments {
    vec![Vec::new(); tree.num_nodes()]
}

/// Current per-node row counts (identical to the row helper's
/// `frag_weights`, so weighted hashes route the same).
pub(crate) fn batch_frag_weights(
    tree: &Tree,
    frags: &BatchFragments,
    extra: &BatchFragments,
) -> Vec<(NodeId, u64)> {
    tree.compute_nodes()
        .iter()
        .map(|&v| {
            (
                v,
                (batch_rows(&frags[v.index()]) + batch_rows(&extra[v.index()])) as u64,
            )
        })
        .collect()
}

/// The nodes holding rows of `frags` — broadcast destinations.
pub(crate) fn batch_holders_of(tree: &Tree, frags: &BatchFragments) -> Vec<NodeId> {
    tree.compute_nodes()
        .iter()
        .copied()
        .filter(|&v| batch_rows(&frags[v.index()]) > 0)
        .collect()
}

/// Row-major flatten of whole batches, in batch then row order.
fn flatten_batches(batches: &[RecordBatch], width: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(batch_rows(batches) * width);
    for b in batches {
        for r in 0..b.num_rows() {
            for c in 0..width {
                out.push(b.col(c)[r]);
            }
        }
    }
    out
}

/// Row-major flatten of `(batch, row)` picks across `batches`.
fn flatten_picks(batches: &[RecordBatch], picks: &[(u32, u32)], width: usize) -> Vec<Value> {
    let mut out = Vec::with_capacity(picks.len() * width);
    for &(bi, ri) in picks {
        let b = &batches[bi as usize];
        for c in 0..width {
            out.push(b.col(c)[ri as usize]);
        }
    }
    out
}

/// One-round repartition of batch fragments by a key router: one key-column
/// scan and one gather per destination, one (chunked) send per `(src,
/// dst)` pair.
pub(crate) fn shuffle_batches_by_key(
    trace: &mut TraceBuilder,
    tree: &Tree,
    frags: &BatchFragments,
    key_idx: usize,
    width: usize,
    rel: Rel,
    router: &dyn Fn(u64) -> NodeId,
) -> BatchFragments {
    let mut new_frags = empty_batch_frags(tree);
    let mut outgoing: Vec<(NodeId, NodeId, Vec<Value>)> = Vec::new();
    // Scratch reused across sources: per-destination pick lists.
    let mut picks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); tree.num_nodes()];
    let mut touched: Vec<usize> = Vec::new();
    for &v in tree.compute_nodes() {
        let batches = &frags[v.index()];
        for (bi, b) in batches.iter().enumerate() {
            let keys = b.col(key_idx);
            for (ri, &key) in keys.iter().enumerate() {
                let dst = router(key).index();
                if picks[dst].is_empty() {
                    touched.push(dst);
                }
                picks[dst].push((bi as u32, ri as u32));
            }
        }
        // Local rows first (the source's own position in the per-dst
        // chunk order), then one gather + send per remote destination.
        touched.sort_unstable();
        for &dst in &touched {
            let pick = std::mem::take(&mut picks[dst]);
            if dst == v.index() {
                new_frags[dst].push(gather_multi(batches, &pick, width));
            } else {
                outgoing.push((
                    v,
                    NodeId::from_index(dst),
                    flatten_picks(batches, &pick, width),
                ));
                new_frags[dst].push(gather_multi(batches, &pick, width));
            }
        }
        touched.clear();
    }
    trace.round(|round| {
        for (src, dst, buf) in outgoing {
            round.send_rows(src, &[dst], rel, buf, width);
        }
    });
    new_frags
}

/// One-round replication of `small_frags` to every holder: the multicast
/// payload flattens once per source, and the replicated fragments are
/// refcount bumps on the source columns — no row copies at all.
pub(crate) fn broadcast_small_batches(
    trace: &mut TraceBuilder,
    tree: &Tree,
    small_frags: &BatchFragments,
    small_w: usize,
    holders: &[NodeId],
) -> BatchFragments {
    trace.round(|round| {
        for &v in tree.compute_nodes() {
            let local = &small_frags[v.index()];
            if batch_rows(local) == 0 || holders.is_empty() {
                continue;
            }
            round.send_rows(v, holders, Rel::R, flatten_batches(local, small_w), small_w);
        }
    });
    let mut small_new = empty_batch_frags(tree);
    for &h in holders {
        for frag in small_frags.iter() {
            small_new[h.index()].extend(frag.iter().cloned());
        }
    }
    small_new
}

/// An open-addressing multimap from join key to right-row indices,
/// preserving insertion order per key. Any correct map yields the same
/// join output as the row helper's `HashMap` build (the output depends
/// only on key → index-list, probed in left order), so the faster table
/// does not disturb parity.
struct KeyMap {
    mask: usize,
    slot_key: Vec<u64>,
    slot_list: Vec<u32>,
    lists: Vec<Vec<u32>>,
}

const EMPTY: u32 = u32::MAX;

impl KeyMap {
    fn with_capacity(n: usize) -> Self {
        let cap = (n * 2).next_power_of_two().max(8);
        KeyMap {
            mask: cap - 1,
            slot_key: vec![0; cap],
            slot_list: vec![EMPTY; cap],
            lists: Vec::with_capacity(n),
        }
    }

    fn insert(&mut self, key: u64, idx: u32) {
        let mut slot = mix64(key) as usize & self.mask;
        loop {
            match self.slot_list[slot] {
                EMPTY => {
                    self.slot_key[slot] = key;
                    self.slot_list[slot] = self.lists.len() as u32;
                    self.lists.push(vec![idx]);
                    return;
                }
                li if self.slot_key[slot] == key => {
                    self.lists[li as usize].push(idx);
                    return;
                }
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }

    fn get(&self, key: u64) -> Option<&[u32]> {
        let mut slot = mix64(key) as usize & self.mask;
        loop {
            match self.slot_list[slot] {
                EMPTY => return None,
                li if self.slot_key[slot] == key => return Some(&self.lists[li as usize]),
                _ => slot = (slot + 1) & self.mask,
            }
        }
    }
}

/// Local probe join of co-located batch fragments: build on the right,
/// probe in left order, emit one output batch per node as column gathers
/// — `left ++ right` rows in exactly the row helper's order.
pub(crate) fn probe_join_batches(
    tree: &Tree,
    l_new: &BatchFragments,
    r_new: &BatchFragments,
    li: usize,
    ri: usize,
    lw: usize,
    rw: usize,
) -> BatchFragments {
    let mut out = empty_batch_frags(tree);
    for &v in tree.compute_nodes() {
        let rbatches = &r_new[v.index()];
        let lbatches = &l_new[v.index()];
        let r_rows = batch_rows(rbatches);
        if r_rows == 0 || batch_rows(lbatches) == 0 {
            continue;
        }
        // Build: global right index → (batch, row), keyed map in
        // insertion (scan) order.
        let mut map = KeyMap::with_capacity(r_rows);
        let mut r_loc: Vec<(u32, u32)> = Vec::with_capacity(r_rows);
        for (bi, b) in rbatches.iter().enumerate() {
            for (rr, &key) in b.col(ri).iter().enumerate() {
                map.insert(key, r_loc.len() as u32);
                r_loc.push((bi as u32, rr as u32));
            }
        }
        // Probe in left scan order.
        let mut l_picks: Vec<(u32, u32)> = Vec::new();
        let mut r_picks: Vec<(u32, u32)> = Vec::new();
        for (bi, b) in lbatches.iter().enumerate() {
            for (lr, &key) in b.col(li).iter().enumerate() {
                if let Some(matches) = map.get(key) {
                    for &j in matches {
                        l_picks.push((bi as u32, lr as u32));
                        r_picks.push(r_loc[j as usize]);
                    }
                }
            }
        }
        if l_picks.is_empty() {
            continue;
        }
        let left_part = gather_multi(lbatches, &l_picks, lw);
        let right_part = gather_multi(rbatches, &r_picks, rw);
        let mut cols = Vec::with_capacity(lw + rw);
        for c in 0..lw {
            cols.push(left_part.col_arc(c).clone());
        }
        for c in 0..rw {
            cols.push(right_part.col_arc(c).clone());
        }
        out[v.index()].push(RecordBatch::from_cols_rows(cols, l_picks.len()));
    }
    out
}
