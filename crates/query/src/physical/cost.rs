//! The shared exchange cost model: §2 pricing of estimated traffic.
//!
//! [`CostModel`] owns everything a [`PhysicalStrategy`] needs to price an
//! exchange on a concrete tree: the O(1)-LCA path decomposition, the
//! per-directed-edge bandwidths, and the pricing primitives
//! (repartition / multicast / gather / raw per-edge loads). Every method
//! charges on the exact rule the engines meter —
//!
//! ```text
//! cost(round) = max_e load(e) / w_e
//! ```
//!
//! with traffic routed along the unique tree paths — so an estimate and
//! its metered counterpart differ only by cardinality estimation, never
//! by the cost functional.
//!
//! [`PhysicalStrategy`]: crate::physical::strategy::PhysicalStrategy

use tamp_topology::{Bandwidth, LcaIndex, NodeId, Tree};

/// Estimated per-node row counts, indexed by node id (routers stay 0).
pub type NodeCounts = Vec<f64>;

/// The pricing context handed to every strategy's
/// [`estimate`](crate::physical::strategy::PhysicalStrategy::estimate).
#[derive(Debug)]
pub struct CostModel<'t> {
    tree: &'t Tree,
    /// O(1)-LCA path decomposition for routing estimated traffic — no
    /// memo table, no hashing (see `tamp_topology::lca`).
    lca: LcaIndex,
    /// Per-directed-edge bandwidth, indexed like the cost ledger.
    bandwidth: Vec<Bandwidth>,
}

impl<'t> CostModel<'t> {
    /// Build the model for `tree` (one Euler tour + sparse table).
    pub fn new(tree: &'t Tree) -> Self {
        CostModel {
            tree,
            lca: LcaIndex::new(tree),
            bandwidth: tree.dir_edges().map(|d| tree.bandwidth(d)).collect(),
        }
    }

    /// The tree being priced.
    pub fn tree(&self) -> &'t Tree {
        self.tree
    }

    /// The model's LCA index (for strategies that route custom loads).
    pub fn lca(&self) -> &LcaIndex {
        &self.lca
    }

    /// A zeroed per-node count vector.
    pub fn zero_counts(&self) -> NodeCounts {
        vec![0.0; self.tree.num_nodes()]
    }

    /// A zeroed per-directed-edge load vector, for accumulating custom
    /// traffic with [`add_path`](Self::add_path) /
    /// [`add_multicast`](Self::add_multicast).
    pub fn zero_load(&self) -> Vec<f64> {
        vec![0.0; self.bandwidth.len()]
    }

    /// Accumulate `amount` units along the unique `src → dst` tree path.
    pub fn add_path(&self, load: &mut [f64], src: NodeId, dst: NodeId, amount: f64) {
        if src == dst || amount <= 0.0 {
            return;
        }
        self.lca
            .for_each_path_edge(src, dst, |d| load[d.index()] += amount);
    }

    /// Accumulate `amount` units along the *union* of the `src → dst`
    /// paths (each edge charged once — the engines' multicast rule).
    pub fn add_multicast(&self, load: &mut [f64], src: NodeId, dsts: &[NodeId], amount: f64) {
        if dsts.is_empty() || amount <= 0.0 {
            return;
        }
        let mut seen = vec![false; self.bandwidth.len()];
        for &u in dsts {
            self.lca.for_each_path_edge(src, u, |d| {
                if !seen[d.index()] {
                    seen[d.index()] = true;
                    load[d.index()] += amount;
                }
            });
        }
    }

    /// `max_e load(e)/w_e` for one estimated round, on the same
    /// [`Bandwidth::cost_of`] rule the engines charge.
    pub fn round_cost(&self, load: &[f64]) -> f64 {
        load.iter()
            .enumerate()
            .map(|(d, &l)| self.bandwidth[d].cost_of(l))
            .fold(0.0, f64::max)
    }

    /// One-round cost of repartitioning `counts` (rows of `width` values)
    /// so destination `u` receives a `shares[u]` fraction; rows already at
    /// their destination do not travel.
    pub fn repartition_cost(&self, counts: &[f64], width: usize, shares: &[f64]) -> f64 {
        let mut load = self.zero_load();
        for &v in self.tree.compute_nodes() {
            let n = counts[v.index()] * width as f64;
            if n <= 0.0 {
                continue;
            }
            for &u in self.tree.compute_nodes() {
                let s = shares[u.index()];
                if u == v || s <= 0.0 {
                    continue;
                }
                self.lca
                    .for_each_path_edge(v, u, |d| load[d.index()] += n * s);
            }
        }
        self.round_cost(&load)
    }

    /// One-round cost of every node multicasting its `counts` rows to all
    /// of `dsts`, charged along the union of tree paths (like the
    /// engines' multicast metering).
    pub fn multicast_cost(&self, counts: &[f64], width: usize, dsts: &[NodeId]) -> f64 {
        let mut load = self.zero_load();
        for &v in self.tree.compute_nodes() {
            let n = counts[v.index()] * width as f64;
            self.add_multicast(&mut load, v, dsts, n);
        }
        self.round_cost(&load)
    }

    /// One-round cost of each node unicasting `counts[v]` rows to
    /// `target`.
    pub fn gather_cost(&self, counts: &[f64], width: usize, target: NodeId) -> f64 {
        let mut load = self.zero_load();
        for &v in self.tree.compute_nodes() {
            let n = counts[v.index()] * width as f64;
            self.add_path(&mut load, v, target, n);
        }
        self.round_cost(&load)
    }

    /// Destination shares proportional to `weights` over compute nodes
    /// (the weighted hash's expected routing).
    pub fn proportional_shares(&self, weights: &[f64]) -> NodeCounts {
        let total: f64 = self
            .tree
            .compute_nodes()
            .iter()
            .map(|&v| weights[v.index()])
            .sum();
        let mut shares = self.zero_counts();
        if total <= 0.0 {
            return shares;
        }
        for &v in self.tree.compute_nodes() {
            shares[v.index()] = weights[v.index()] / total;
        }
        shares
    }

    /// Uniform destination shares (the MPC hash's expected routing).
    pub fn uniform_shares(&self) -> NodeCounts {
        let k = self.tree.num_compute().max(1) as f64;
        let mut shares = self.zero_counts();
        for &v in self.tree.compute_nodes() {
            shares[v.index()] = 1.0 / k;
        }
        shares
    }

    /// Redistribute `total` rows according to `shares`.
    pub fn distributed(&self, total: f64, shares: &[f64]) -> NodeCounts {
        let mut counts = self.zero_counts();
        for &v in self.tree.compute_nodes() {
            counts[v.index()] = total * shares[v.index()];
        }
        counts
    }
}
