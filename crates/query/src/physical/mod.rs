//! The physical plan: operators with explicit, strategy-chosen,
//! cost-estimated exchanges.
//!
//! Lowering ([`lower`]) turns a [`LogicalPlan`] into a [`PhysicalPlan`]
//! in which every communicating operator carries an explicit [`Exchange`]
//! — *which* [`PhysicalStrategy`] will move the data, what it is
//! expected to cost on the §2 functional, and how that estimate compares
//! to the task's **per-edge lower bound** (the paper's Table-1 ratio).
//! The planner does not hard-wire exchanges: each operator asks the
//! session's [`StrategyRegistry`] for every registered candidate — paper
//! algorithm and topology-agnostic baseline alike — prices them all by
//! routing estimated traffic along the real tree paths,
//!
//! ```text
//! est(exchange) = Σ_rounds max_e load(e) / w_e
//! ```
//!
//! and keeps the cheapest (or the one the session forces). Every
//! candidate stays in the plan, so
//! [`PreparedQuery::explain`](crate::context::PreparedQuery::explain)
//! shows the winner *and* the rejected alternatives, each with its
//! estimate and its ratio to the lower bound.
//!
//! Cardinality estimation is deliberately simple and documented:
//! base-table counts are exact (`|X_0(v)|` is model knowledge granted by
//! §2), filters apply standard selectivity heuristics (equality 0.15,
//! range ⅓, conjunction multiplies), equi-joins assume a key/foreign-key
//! shape (`|L ⋈ R| ≈ max(|L|, |R|)`), and group-bys assume `√n` distinct
//! groups. Estimated and metered cost are juxtaposed per operator in
//! [`QueryResult::operator_costs`](crate::exec::QueryResult) and in the
//! `x-plan` / `x-strategy` experiment suites.
//!
//! [`PhysicalStrategy`]: strategy::PhysicalStrategy
//! [`StrategyRegistry`]: strategy::StrategyRegistry

pub mod cost;
pub(crate) mod strategies;
pub mod strategy;

use std::fmt;
use std::sync::Arc;

use tamp_core::ratio::LowerBound;
use tamp_topology::Tree;

use crate::error::QueryError;
use crate::exec::ExecOptions;
use crate::expr::Expr;
use crate::plan::{AggFunc, LogicalPlan};
use crate::reference;
use crate::schema::Schema;
use crate::table::Catalog;

use cost::{CostModel, NodeCounts};
use strategy::{
    default_registry, Candidate, CostEstimate, OperatorKind, PhysicalStrategy, PlanArgs, PlanSide,
    StrategyRegistry,
};

/// An explicit data movement step attached to a physical operator: the
/// chosen strategy, its estimate, the task's lower bound, and every
/// candidate the planner priced.
#[derive(Clone, Debug)]
pub struct Exchange {
    /// The strategy that will move the rows.
    pub strategy: Arc<dyn PhysicalStrategy>,
    /// What the planner expects it to cost.
    pub estimate: CostEstimate,
    /// The task's per-edge lower bound on the estimated placement (in
    /// values), when the task has one on this tree.
    pub lower_bound: Option<LowerBound>,
    /// Every candidate the planner priced, including the chosen one —
    /// rendered by `EXPLAIN` so rejected strategies stay visible.
    pub candidates: Vec<Candidate>,
}

impl Exchange {
    /// The chosen strategy's name.
    pub fn name(&self) -> &'static str {
        self.strategy.name()
    }

    /// The chosen strategy's `estimate / lower bound` ratio — the
    /// paper's Table-1 quantity — or `NaN` when no bound applies.
    pub fn ratio(&self) -> f64 {
        self.lower_bound.map_or(f64::NAN, |lb| {
            tamp_core::ratio::ratio(self.estimate.tuple_cost, lb.value())
        })
    }
}

impl PartialEq for Exchange {
    fn eq(&self, other: &Self) -> bool {
        self.strategy.name() == other.strategy.name()
            && self.estimate == other.estimate
            && self.lower_bound.map(|b| b.value()) == other.lower_bound.map(|b| b.value())
            && self.candidates == other.candidates
    }
}

/// A physical operator tree: the logical algebra with every exchange made
/// explicit and priced.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysicalPlan {
    /// The operator.
    pub op: PhysicalOp,
    /// Estimated output rows (cardinality estimate, not a guarantee).
    pub rows_est: f64,
}

/// Physical operators. Local operators (`TableScan`, `Filter`,
/// `Project`, `UnionAll`) move no data; every other operator names the
/// [`Exchange`] it executes.
#[derive(Clone, Debug, PartialEq)]
pub enum PhysicalOp {
    /// Read a base table's fragments in place.
    TableScan {
        /// Catalog table name.
        table: String,
    },
    /// Local predicate evaluation (free under §2).
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicate (nonzero ⇒ keep).
        predicate: Expr,
    },
    /// Local expression evaluation (free under §2).
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Equi-join: exchange both sides, then probe locally.
    HashJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Join column on the left schema.
        left_key: String,
        /// Join column on the right schema.
        right_key: String,
        /// The strategy-chosen exchange moving the two sides.
        exchange: Exchange,
    },
    /// Cartesian product.
    CrossJoin {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// The strategy-chosen exchange (broadcast or grid rectangles).
        exchange: Exchange,
    },
    /// Global sort: range shuffle along the valid compute-node order.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort column.
        key: String,
        /// The sample/splitter/shuffle exchange.
        exchange: Exchange,
    },
    /// Grouped aggregation: local partials, then the chosen exchange.
    HashAggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping column.
        group_by: String,
        /// Aggregate function.
        agg: AggFunc,
        /// Measured column.
        measure: String,
        /// The partial-moving exchange.
        exchange: Exchange,
    },
    /// Keep the first `n` rows via a bounded gather.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row budget.
        n: usize,
        /// Whether the input's fragment order is globally meaningful
        /// (downstream of a `Sort`), decided at plan time.
        order_preserving: bool,
        /// The gather to the first compute node.
        exchange: Exchange,
    },
    /// Duplicate elimination: co-locate equal rows, dedup locally.
    Distinct {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// The whole-row hash shuffle.
        exchange: Exchange,
    },
    /// Bag union (free: fragments concatenate in place).
    UnionAll {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// The operator label used for per-operator cost attribution; stable
    /// across the logical and physical layers.
    pub fn label(&self) -> String {
        match &self.op {
            PhysicalOp::TableScan { table } => format!("Scan {table}"),
            PhysicalOp::Filter { predicate, .. } => format!("Filter {predicate}"),
            PhysicalOp::Project { .. } => "Project".into(),
            PhysicalOp::HashJoin {
                left_key,
                right_key,
                ..
            } => format!("HashJoin {left_key}={right_key}"),
            PhysicalOp::CrossJoin { .. } => "CrossJoin".into(),
            PhysicalOp::Sort { key, .. } => format!("OrderBy {key}"),
            PhysicalOp::HashAggregate { agg, .. } => format!("Aggregate {}", agg.name()),
            PhysicalOp::Limit { n, .. } => format!("Limit {n}"),
            PhysicalOp::Distinct { .. } => "Distinct".into(),
            PhysicalOp::UnionAll { .. } => "UnionAll".into(),
        }
    }

    /// The operator's exchange, if it has one.
    pub fn exchange(&self) -> Option<&Exchange> {
        match &self.op {
            PhysicalOp::HashJoin { exchange, .. }
            | PhysicalOp::CrossJoin { exchange, .. }
            | PhysicalOp::Sort { exchange, .. }
            | PhysicalOp::HashAggregate { exchange, .. }
            | PhysicalOp::Limit { exchange, .. }
            | PhysicalOp::Distinct { exchange, .. } => Some(exchange),
            _ => None,
        }
    }

    /// Child plans, left to right.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysicalOp::TableScan { .. } => vec![],
            PhysicalOp::Filter { input, .. }
            | PhysicalOp::Project { input, .. }
            | PhysicalOp::Sort { input, .. }
            | PhysicalOp::HashAggregate { input, .. }
            | PhysicalOp::Limit { input, .. }
            | PhysicalOp::Distinct { input, .. } => vec![input],
            PhysicalOp::HashJoin { left, right, .. }
            | PhysicalOp::CrossJoin { left, right, .. }
            | PhysicalOp::UnionAll { left, right } => vec![left, right],
        }
    }

    /// Total estimated §2 cost: the sum over every exchange in the plan.
    pub fn estimated_cost(&self) -> f64 {
        let own = self.exchange().map_or(0.0, |x| x.estimate.tuple_cost);
        own + self
            .children()
            .iter()
            .map(|c| c.estimated_cost())
            .sum::<f64>()
    }

    /// Total estimated communication rounds.
    pub fn estimated_rounds(&self) -> usize {
        let own = self.exchange().map_or(0, |x| x.estimate.rounds);
        own + self
            .children()
            .iter()
            .map(|c| c.estimated_rounds())
            .sum::<usize>()
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        write!(f, "{pad}{}", self.label())?;
        if let Some(x) = self.exchange() {
            write!(
                f,
                " via {} [est cost {:.1}, {} round{}",
                x.name(),
                x.estimate.tuple_cost,
                x.estimate.rounds,
                if x.estimate.rounds == 1 { "" } else { "s" },
            )?;
            if let Some(lb) = x.lower_bound {
                write!(f, ", lb {:.1}, ratio {}", lb.value(), fmt_ratio(x.ratio()))?;
            }
            write!(f, "]")?;
            if x.candidates.len() > 1 {
                let alts: Vec<String> = x
                    .candidates
                    .iter()
                    .map(|c| {
                        let alg = c.algorithm.map(|a| format!(" ({a})")).unwrap_or_default();
                        format!("{}{alg} {:.1} ×{}", c.name, c.cost, fmt_ratio(c.ratio))
                    })
                    .collect();
                write!(f, " (candidates: {})", alts.join(", "))?;
            }
        }
        writeln!(f, "  ~{:.0} rows", self.rows_est)?;
        for child in self.children() {
            child.fmt_indented(f, indent + 1)?;
        }
        Ok(())
    }
}

/// Render a lower-bound ratio: two decimals, `-` when no bound applies.
fn fmt_ratio(r: f64) -> String {
    if r.is_nan() {
        "-".into()
    } else if r.is_infinite() {
        "inf".into()
    } else {
        format!("{r:.2}")
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Lower a [`LogicalPlan`] into a [`PhysicalPlan`] against the default
/// strategy registry, pricing every registered candidate on the §2 cost
/// model and resolving each operator's exchange cost-based (or as forced
/// by [`ExecOptions`]).
///
/// Lowering validates the plan (schema inference runs as part of the
/// walk), so a lowered plan is known to execute without name errors.
pub fn lower(
    plan: &LogicalPlan,
    catalog: &Catalog,
    options: ExecOptions,
) -> Result<PhysicalPlan, QueryError> {
    lower_full(plan, catalog, options, default_registry()).map(|(plan, _)| plan)
}

/// [`lower`] against an explicit [`StrategyRegistry`], also returning the
/// inferred output [`Schema`] so callers that need both do one walk.
pub(crate) fn lower_full(
    plan: &LogicalPlan,
    catalog: &Catalog,
    options: ExecOptions,
    registry: &StrategyRegistry,
) -> Result<(PhysicalPlan, Schema), QueryError> {
    // Validate up front (expression binding included) so lowering can
    // assume well-formed inputs.
    if options.batch_size == 0 {
        return Err(QueryError::InvalidBatchSize);
    }
    plan.schema(catalog)?;
    let mut planner = Planner::new(catalog, options, registry);
    let (plan, _, schema) = planner.lower_node(plan)?;
    Ok((plan, schema))
}

/// Filter selectivity heuristics (standard textbook constants; see the
/// module docs).
fn selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Eq(..) => 0.15,
        Expr::Ne(..) => 0.85,
        Expr::Lt(..) | Expr::Le(..) | Expr::Gt(..) | Expr::Ge(..) => 1.0 / 3.0,
        Expr::And(a, b) => selectivity(a) * selectivity(b),
        Expr::Or(a, b) => (selectivity(a) + selectivity(b)).min(1.0),
        Expr::Not(a) => 1.0 - selectivity(a),
        Expr::Lit(0) => 0.0,
        Expr::Lit(_) => 1.0,
        // A bare column / arithmetic predicate keeps a row when nonzero;
        // assume most values are.
        _ => 0.9,
    }
}

/// The lowering planner: walks the logical tree bottom-up carrying
/// per-node cardinality estimates, and resolves each operator's exchange
/// through the strategy registry.
struct Planner<'c> {
    catalog: &'c Catalog,
    options: ExecOptions,
    registry: &'c StrategyRegistry,
    /// Shared pricing model (O(1)-LCA routing, per-edge bandwidths).
    model: CostModel<'c>,
}

impl<'c> Planner<'c> {
    fn new(catalog: &'c Catalog, options: ExecOptions, registry: &'c StrategyRegistry) -> Self {
        let tree: &'c Tree = catalog.tree();
        Planner {
            catalog,
            options,
            registry,
            model: CostModel::new(tree),
        }
    }

    /// Assemble the plan-time view of one operator's inputs.
    fn args(&self, left: (NodeCounts, usize), right: Option<(NodeCounts, usize)>) -> PlanArgs<'_> {
        PlanArgs {
            model: &self.model,
            seed: self.options.seed,
            left: PlanSide {
                counts: left.0,
                width: left.1,
            },
            right: right.map(|(counts, width)| PlanSide { counts, width }),
            groups: 0.0,
            limit: 0,
        }
    }

    fn lower_node(
        &mut self,
        plan: &LogicalPlan,
    ) -> Result<(PhysicalPlan, NodeCounts, Schema), QueryError> {
        match plan {
            LogicalPlan::Scan { table } => {
                let t = self.catalog.table(table)?;
                let counts: NodeCounts = t.row_counts().iter().map(|&n| n as f64).collect();
                let rows_est: f64 = counts.iter().sum();
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::TableScan {
                            table: table.clone(),
                        },
                        rows_est,
                    },
                    counts,
                    t.schema.clone(),
                ))
            }
            LogicalPlan::Filter { input, predicate } => {
                let (child, counts, schema) = self.lower_node(input)?;
                let s = selectivity(predicate).clamp(0.0, 1.0);
                let counts: NodeCounts = counts.iter().map(|n| n * s).collect();
                let rows_est: f64 = counts.iter().sum();
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Filter {
                            input: Box::new(child),
                            predicate: predicate.clone(),
                        },
                        rows_est,
                    },
                    counts,
                    schema,
                ))
            }
            LogicalPlan::Project { input, exprs } => {
                let (child, counts, _) = self.lower_node(input)?;
                let rows_est: f64 = counts.iter().sum();
                let schema = Schema::new(exprs.iter().map(|(n, _)| n.clone()).collect())?;
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Project {
                            input: Box::new(child),
                            exprs: exprs.clone(),
                        },
                        rows_est,
                    },
                    counts,
                    schema,
                ))
            }
            LogicalPlan::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let (lp, lc, ls) = self.lower_node(left)?;
                let (rp, rc, rs) = self.lower_node(right)?;
                let args = self.args((lc, ls.width()), Some((rc, rs.width())));
                let exchange =
                    self.registry
                        .plan(OperatorKind::Join, self.options.forced_join(), &args)?;
                // Output estimate: key/foreign-key shape, placed by the
                // winning strategy.
                let (l_tot, r_tot) = (
                    args.left.total(),
                    args.right.as_ref().expect("two inputs").total(),
                );
                let out_total = if l_tot == 0.0 || r_tot == 0.0 {
                    0.0
                } else {
                    l_tot.max(r_tot)
                };
                let shares = exchange.strategy.output_shares(&args);
                let out_counts = self.model.distributed(out_total, &shares);
                let schema = ls.join(&rs, "r_")?;
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::HashJoin {
                            left: Box::new(lp),
                            right: Box::new(rp),
                            left_key: left_key.clone(),
                            right_key: right_key.clone(),
                            exchange,
                        },
                        rows_est: out_total,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::CrossJoin { left, right } => {
                let (lp, lc, ls) = self.lower_node(left)?;
                let (rp, rc, rs) = self.lower_node(right)?;
                let args = self.args((lc, ls.width()), Some((rc, rs.width())));
                let exchange =
                    self.registry
                        .plan(OperatorKind::CrossJoin, self.options.force.cross, &args)?;
                let out_total =
                    args.left.total() * args.right.as_ref().expect("two inputs").total();
                let shares = exchange.strategy.output_shares(&args);
                let out_counts = self.model.distributed(out_total, &shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::CrossJoin {
                            left: Box::new(lp),
                            right: Box::new(rp),
                            exchange,
                        },
                        rows_est: out_total,
                    },
                    out_counts,
                    ls.join(&rs, "r_")?,
                ))
            }
            LogicalPlan::OrderBy { input, key } => {
                let (child, counts, schema) = self.lower_node(input)?;
                let total: f64 = counts.iter().sum();
                let args = self.args((counts, schema.width()), None);
                let exchange =
                    self.registry
                        .plan(OperatorKind::Sort, self.options.force.sort, &args)?;
                let shares = exchange.strategy.output_shares(&args);
                let out_counts = self.model.distributed(total, &shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Sort {
                            input: Box::new(child),
                            key: key.clone(),
                            exchange,
                        },
                        rows_est: total,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                agg,
                measure,
            } => {
                let (child, counts, _) = self.lower_node(input)?;
                let total: f64 = counts.iter().sum();
                // Distinct-group heuristic: √n groups (module docs).
                let groups = total.sqrt().ceil().max(if total > 0.0 { 1.0 } else { 0.0 });
                let mut args = self.args((counts, 2), None);
                args.groups = groups;
                let exchange = self.registry.plan(
                    OperatorKind::Aggregate,
                    self.options.force.aggregate,
                    &args,
                )?;
                let shares = exchange.strategy.output_shares(&args);
                let out_counts = self.model.distributed(groups, &shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::HashAggregate {
                            input: Box::new(child),
                            group_by: group_by.clone(),
                            agg: *agg,
                            measure: measure.clone(),
                            exchange,
                        },
                        rows_est: groups,
                    },
                    out_counts,
                    Schema::new(vec![
                        group_by.clone(),
                        format!("{}_{}", agg.name(), measure),
                    ])?,
                ))
            }
            LogicalPlan::Limit { input, n } => {
                let order_preserving = reference::preserves_order(input);
                let (child, counts, schema) = self.lower_node(input)?;
                let total: f64 = counts.iter().sum();
                let mut args = self.args((counts, schema.width()), None);
                args.limit = *n;
                let exchange = self.registry.plan(OperatorKind::Limit, None, &args)?;
                let out_total = total.min(*n as f64);
                let shares = exchange.strategy.output_shares(&args);
                let out_counts = self.model.distributed(out_total, &shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Limit {
                            input: Box::new(child),
                            n: *n,
                            order_preserving,
                            exchange,
                        },
                        rows_est: out_total,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::Distinct { input } => {
                let (child, counts, schema) = self.lower_node(input)?;
                let total: f64 = counts.iter().sum();
                let args = self.args((counts, schema.width()), None);
                let exchange = self.registry.plan(OperatorKind::Distinct, None, &args)?;
                let shares = exchange.strategy.output_shares(&args);
                let out_counts = self.model.distributed(total, &shares);
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::Distinct {
                            input: Box::new(child),
                            exchange,
                        },
                        rows_est: total,
                    },
                    out_counts,
                    schema,
                ))
            }
            LogicalPlan::UnionAll { left, right } => {
                let (lp, lc, ls) = self.lower_node(left)?;
                let (rp, rc, _) = self.lower_node(right)?;
                let counts: NodeCounts = lc.iter().zip(&rc).map(|(a, b)| a + b).collect();
                let rows_est: f64 = counts.iter().sum();
                Ok((
                    PhysicalPlan {
                        op: PhysicalOp::UnionAll {
                            left: Box::new(lp),
                            right: Box::new(rp),
                        },
                        rows_est,
                    },
                    counts,
                    ls,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{JoinStrategy, StrategyForce};
    use crate::expr::{col, lit};
    use crate::row::Row;
    use crate::table::DistributedTable;
    use tamp_topology::builders;

    fn star_catalog(facts: u64, dims: u64) -> Catalog {
        let tree = builders::star(4, 1.0);
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..facts).map(|i| vec![i, i % 7, i * 3]).collect();
        c.register(DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            c.tree(),
        ))
        .unwrap();
        let d: Vec<Row> = (0..dims).map(|g| vec![g, g + 100]).collect();
        c.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "label"]).unwrap(),
            d,
            c.tree(),
        ))
        .unwrap();
        c
    }

    #[test]
    fn auto_broadcasts_tiny_dimension_tables() {
        let c = star_catalog(600, 7);
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        let p = lower(&q, &c, ExecOptions::default()).unwrap();
        match &p.op {
            PhysicalOp::HashJoin { exchange, .. } => {
                assert_eq!(exchange.name(), "broadcast-small");
                assert_eq!(exchange.candidates.len(), 4);
                assert!(exchange.estimate.tuple_cost > 0.0);
                // The join carries the Theorem-1 lower bound and a ratio
                // per candidate.
                assert!(exchange.lower_bound.is_some());
                for cand in &exchange.candidates {
                    assert!(cand.ratio.is_finite(), "{cand:?}");
                }
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn auto_keeps_colocated_skew_in_place() {
        // Both sides parked on one node: the weighted repartition moves
        // (almost) nothing, so Auto must not pick the uniform shuffle.
        let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0]);
        let heavy = tree.compute_nodes()[0];
        let mut c = Catalog::new(tree);
        let rows: Vec<Row> = (0..300).map(|i| vec![i, i % 5, i]).collect();
        c.register(DistributedTable::single_node(
            "a",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows.clone(),
            c.tree(),
            heavy,
        ))
        .unwrap();
        c.register(DistributedTable::single_node(
            "b",
            Schema::new(vec!["g", "y", "z"]).unwrap(),
            rows,
            c.tree(),
            heavy,
        ))
        .unwrap();
        let q = LogicalPlan::scan("a").join_on(LogicalPlan::scan("b"), "g", "g");
        let p = lower(&q, &c, ExecOptions::default()).unwrap();
        let x = p.exchange().unwrap();
        assert_ne!(x.name(), "uniform-repartition");
        // Everything is already in place: the estimate is (near) zero
        // while the uniform candidate is expensive.
        let uniform = x
            .candidates
            .iter()
            .find(|c| c.name == "uniform-repartition")
            .unwrap()
            .cost;
        assert!(x.estimate.tuple_cost < 1e-9, "{}", x.estimate.tuple_cost);
        assert!(uniform > 100.0, "{uniform}");
    }

    #[test]
    fn forced_strategies_map_directly() {
        let c = star_catalog(100, 100);
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        for (strategy, name) in [
            (JoinStrategy::Weighted, "weighted-repartition"),
            (JoinStrategy::Uniform, "uniform-repartition"),
            (JoinStrategy::BroadcastSmall, "broadcast-small"),
        ] {
            let p = lower(
                &q,
                &c,
                ExecOptions {
                    join: strategy,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
            assert_eq!(p.exchange().unwrap().name(), name);
        }
    }

    #[test]
    fn forcing_by_name_covers_every_registered_join_strategy() {
        let c = star_catalog(120, 30);
        let q = LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g");
        for name in [
            "weighted-repartition",
            "tree-partition",
            "broadcast-small",
            "uniform-repartition",
        ] {
            let opts = ExecOptions {
                force: StrategyForce {
                    join: Some(name),
                    ..StrategyForce::default()
                },
                ..ExecOptions::default()
            };
            let p = lower(&q, &c, opts).unwrap();
            assert_eq!(p.exchange().unwrap().name(), name);
        }
        // An unknown name is a typed error listing the alternatives.
        let opts = ExecOptions {
            force: StrategyForce {
                join: Some("nope"),
                ..StrategyForce::default()
            },
            ..ExecOptions::default()
        };
        match lower(&q, &c, opts) {
            Err(QueryError::UnknownStrategy {
                operator,
                name,
                available,
            }) => {
                assert_eq!(operator, "join");
                assert_eq!(name, "nope");
                assert!(available.contains(&"tree-partition".to_string()));
            }
            other => panic!("expected UnknownStrategy, got {other:?}"),
        }
    }

    #[test]
    fn every_operator_lowers_with_estimates() {
        let c = star_catalog(200, 7);
        let q = LogicalPlan::scan("facts")
            .filter(col("x").gt(lit(10)))
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .aggregate("label", AggFunc::Sum, "x")
            .order_by("label")
            .limit(5);
        let p = lower(&q, &c, ExecOptions::default()).unwrap();
        assert!(p.estimated_cost() > 0.0);
        assert!(p.estimated_rounds() >= 5, "{}", p.estimated_rounds());
        let text = p.to_string();
        assert!(text.contains("est cost"), "{text}");
        assert!(text.contains("via"), "{text}");
        assert!(text.contains("candidates"), "{text}");
        assert!(text.contains("ratio"), "{text}");
    }

    #[test]
    fn explain_lists_paper_and_baseline_candidates_per_operator() {
        let c = star_catalog(300, 40);
        let q = LogicalPlan::scan("facts")
            .join_on(LogicalPlan::scan("dims"), "g", "g")
            .order_by("x");
        let p = lower(&q, &c, ExecOptions::default()).unwrap();
        let text = p.to_string();
        // Join candidates (Alg-2 weighted hash, §3 TreeIntersect routing,
        // V_β broadcast, uniform baseline) and both sort policies.
        for name in [
            "weighted-repartition",
            "tree-partition",
            "broadcast-small",
            "uniform-repartition",
            "weighted-range-shuffle",
            "uniform-range-shuffle",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // Cross-join candidates surface too.
        let q = LogicalPlan::scan("dims").cross(LogicalPlan::scan("dims"));
        let text = lower(&q, &c, ExecOptions::default()).unwrap().to_string();
        for name in ["whc-grid", "broadcast-small", "uniform-hypercube"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn registering_a_taken_name_replaces_in_place() {
        let mut r = StrategyRegistry::with_defaults();
        let before = r.candidates(OperatorKind::Join).len();
        let dup = Arc::clone(r.get(OperatorKind::Join, "broadcast-small").unwrap());
        r.register(dup);
        assert_eq!(r.candidates(OperatorKind::Join).len(), before);
        // Position (the tie-break order) is kept too.
        assert_eq!(
            r.candidates(OperatorKind::Join)[1].name(),
            "broadcast-small"
        );
    }

    #[test]
    fn lowering_validates_names() {
        let c = star_catalog(10, 3);
        assert!(lower(&LogicalPlan::scan("nope"), &c, ExecOptions::default()).is_err());
        assert!(lower(
            &LogicalPlan::scan("facts").order_by("zzz"),
            &c,
            ExecOptions::default()
        )
        .is_err());
    }
}
