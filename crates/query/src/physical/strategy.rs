//! The pluggable operator-strategy API.
//!
//! Every communicating logical operator — equi-join, cross join, sort,
//! group-by aggregate, distinct, limit — is executed by a
//! [`PhysicalStrategy`]: one concrete way of moving the operator's rows
//! across the tree. The planner does not hard-wire a strategy per
//! operator; it asks the session's [`StrategyRegistry`] for every
//! registered candidate, prices each one on the §2 functional
//! ([`PhysicalStrategy::estimate`]), evaluates the task's per-edge lower
//! bound ([`PhysicalStrategy::lower_bound`], wired to the
//! `tamp_core::{intersection,cartesian,sorting,aggregate}` theorems), and
//! keeps the cheapest — recording *every* candidate with its
//! `estimate / lower bound` ratio (the paper's Table-1 quantity) so
//! `EXPLAIN` shows the rejected alternatives next to the winner.
//!
//! The chosen strategy then *executes* by emitting an exchange trace
//! ([`PhysicalStrategy::trace`]): the exact multiset of
//! `(src, dsts, rel, payload)` sends per round, plus the operator's
//! output fragments. The trace replays through any
//! [`ExecBackend`](tamp_runtime::backend::ExecBackend) via
//! [`tamp_runtime::ScheduleJob`], so a strategy written once runs on the
//! centralized simulator *and* the pooled BSP cluster with bit-identical
//! metered ledgers — strategies never talk to an engine directly.
//!
//! # Registering a third-party strategy
//!
//! A strategy is ~4 methods; everything else (candidate pricing, EXPLAIN
//! rendering, backend replay, cost attribution) is inherited. For
//! example, a join strategy that gathers both sides onto one node:
//!
//! ```
//! use std::sync::Arc;
//! use tamp_query::physical::cost::CostModel;
//! use tamp_query::physical::strategy::*;
//! use tamp_query::prelude::*;
//! use tamp_query::QueryError;
//! use tamp_simulator::Rel;
//! use tamp_topology::builders;
//!
//! #[derive(Debug)]
//! struct AllToOneJoin;
//!
//! impl PhysicalStrategy for AllToOneJoin {
//!     fn name(&self) -> &'static str {
//!         "all-to-one"
//!     }
//!     fn operator(&self) -> OperatorKind {
//!         OperatorKind::Join
//!     }
//!     fn estimate(&self, a: &PlanArgs<'_>) -> CostEstimate {
//!         let target = a.model.tree().compute_nodes()[0];
//!         let right = a.right.as_ref().expect("join has two inputs");
//!         let cost = a.model.gather_cost(&a.left.counts, a.left.width, target)
//!             + a.model.gather_cost(&right.counts, right.width, target);
//!         CostEstimate { tuple_cost: cost, rounds: 1 }
//!     }
//!     fn trace(&self, a: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError> {
//!         let OpInput::Join { left, right, left_key, right_key, left_width, right_width } =
//!             input
//!         else {
//!             unreachable!("registered for Join");
//!         };
//!         let target = a.tree.compute_nodes()[0];
//!         let mut trace = TraceBuilder::default();
//!         let mut l_all = Vec::new();
//!         let mut r_all = Vec::new();
//!         trace.round(|round| {
//!             for &v in a.tree.compute_nodes() {
//!                 for (rel, frags, width, all) in [
//!                     (Rel::R, &left, left_width, &mut l_all),
//!                     (Rel::S, &right, right_width, &mut r_all),
//!                 ] {
//!                     let rows = &frags[v.index()];
//!                     all.extend(rows.iter().cloned());
//!                     if v != target && !rows.is_empty() {
//!                         round.send(v, &[target], rel, tamp_query::row::flatten(rows, width));
//!                     }
//!                 }
//!             }
//!         });
//!         let mut out = vec![Vec::new(); a.tree.num_nodes()];
//!         for l in &l_all {
//!             for r in r_all.iter().filter(|r| r[right_key] == l[left_key]) {
//!                 let mut j = l.clone();
//!                 j.extend_from_slice(r);
//!                 out[target.index()].push(j);
//!             }
//!         }
//!         Ok(OpTrace { rounds: trace.into_rounds(), output: out })
//!     }
//! }
//!
//! let mut ctx = QueryContext::new(builders::star(3, 1.0));
//! ctx.register_strategy(Arc::new(AllToOneJoin));
//! // EXPLAIN now prices `all-to-one` against every built-in join
//! // strategy; force it with `ctx.with_strategy(OperatorKind::Join,
//! // "all-to-one")`.
//! # let _ = CostModel::new(ctx.tree());
//! ```

use std::fmt;
use std::sync::{Arc, OnceLock};

use tamp_core::ratio::LowerBound;
use tamp_runtime::jobs::ScheduleSend;
use tamp_simulator::{PlacementStats, Rel, Value};
use tamp_topology::{NodeId, Tree};

use crate::batch::{batches_to_fragments, fragments_to_batches, BatchFragments};
use crate::error::QueryError;
use crate::physical::cost::{CostModel, NodeCounts};
use crate::plan::AggFunc;
use crate::row::Row;

/// Output row fragments, indexed by node id.
pub type Fragments = Vec<Vec<Row>>;

/// The logical operators whose exchanges are strategy-pluggable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Equi-join of two inputs.
    Join,
    /// Cartesian product of two inputs.
    CrossJoin,
    /// Global sort along the tree's valid compute order.
    Sort,
    /// Grouped aggregation.
    Aggregate,
    /// Whole-row duplicate elimination.
    Distinct,
    /// Bounded collection of the first `n` rows.
    Limit,
}

impl OperatorKind {
    /// Lower-case operator name for error messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Join => "join",
            OperatorKind::CrossJoin => "cross-join",
            OperatorKind::Sort => "sort",
            OperatorKind::Aggregate => "aggregate",
            OperatorKind::Distinct => "distinct",
            OperatorKind::Limit => "limit",
        }
    }
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One plan-time input of an operator: estimated per-node row counts and
/// the row width in values.
#[derive(Clone, Debug)]
pub struct PlanSide {
    /// Estimated rows per node id (routers 0).
    pub counts: NodeCounts,
    /// Row width, in `u64` values.
    pub width: usize,
}

impl PlanSide {
    /// Total estimated rows.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }
}

/// Everything a strategy sees at plan time.
#[derive(Debug)]
pub struct PlanArgs<'a> {
    /// The §2 pricing model over the session's tree.
    pub model: &'a CostModel<'a>,
    /// The session's hashing/sampling seed.
    pub seed: u64,
    /// The (left) input.
    pub left: PlanSide,
    /// The right input, for two-input operators.
    pub right: Option<PlanSide>,
    /// Estimated distinct groups (aggregate only; 0 elsewhere).
    pub groups: f64,
    /// The row budget (limit only; 0 elsewhere).
    pub limit: usize,
}

impl PlanArgs<'_> {
    /// Whether the tree is symmetric — the precondition of the
    /// `tamp_core` lower-bound theorems. Strategies return `None` from
    /// [`PhysicalStrategy::lower_bound`] on asymmetric trees.
    pub fn symmetric(&self) -> bool {
        self.model.tree().require_symmetric().is_ok()
    }

    /// The estimated inputs as [`PlacementStats`], in *values* (row
    /// counts × width, rounded): the left input plays `R`, the right
    /// plays `S`. Scaling by width keeps the `tamp_core` lower bounds —
    /// stated in transported tuples — comparable to the value-denominated
    /// exchange estimates.
    pub fn value_stats(&self) -> PlacementStats {
        let n_nodes = self.left.counts.len();
        let mut r = vec![0u64; n_nodes];
        let mut s = vec![0u64; n_nodes];
        for (i, c) in self.left.counts.iter().enumerate() {
            r[i] = (c * self.left.width as f64).round() as u64;
        }
        if let Some(right) = &self.right {
            for (i, c) in right.counts.iter().enumerate() {
                s[i] = (c * right.width as f64).round() as u64;
            }
        }
        let n: Vec<u64> = r.iter().zip(&s).map(|(a, b)| a + b).collect();
        let (total_r, total_s) = (r.iter().sum(), s.iter().sum());
        PlacementStats {
            r,
            s,
            n,
            total_r,
            total_s,
        }
    }

    /// Combined per-node row counts of both inputs (weighted-hash
    /// weights).
    pub fn combined_counts(&self) -> NodeCounts {
        match &self.right {
            Some(right) => self
                .left
                .counts
                .iter()
                .zip(&right.counts)
                .map(|(a, b)| a + b)
                .collect(),
            None => self.left.counts.clone(),
        }
    }
}

/// A strategy's plan-time price.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Estimated `Σ_rounds max_e load(e)/w_e`, in values.
    pub tuple_cost: f64,
    /// Communication rounds the strategy will use.
    pub rounds: usize,
}

/// One priced candidate, kept in the plan so `EXPLAIN` can show the
/// rejected alternatives next to the winner.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// Strategy name.
    pub name: &'static str,
    /// The paper algorithm the strategy adapts, if any.
    pub algorithm: Option<&'static str>,
    /// Estimated cost in values.
    pub cost: f64,
    /// Estimated rounds.
    pub rounds: usize,
    /// `cost / lower bound` — the Table-1 ratio — or `NaN` when the task
    /// has no evaluated bound here.
    pub ratio: f64,
}

/// Everything a strategy sees at execution time (the catalog-independent
/// slice of the executor's context).
#[derive(Debug)]
pub struct ExecArgs<'a> {
    /// The session tree.
    pub tree: &'a Tree,
    /// The session's hashing/sampling seed.
    pub seed: u64,
    /// Rows per emitted send: every exchange payload is chunked into
    /// sends of at most `batch` rows (`usize::MAX` disables chunking).
    /// Chunking a fixed `(src, dsts)` multicast never changes its metered
    /// cost — the §2 charge is linear in the amount sent over each edge —
    /// so `edge_totals` and per-round costs are invariant in this knob.
    pub batch: usize,
}

/// The operator-specific execution input: the materialized child
/// fragments plus the operator's parameters, all in resolved (index)
/// form.
#[derive(Debug)]
pub enum OpInput {
    /// Equi-join.
    Join {
        /// Left fragments.
        left: Fragments,
        /// Right fragments.
        right: Fragments,
        /// Key column index on the left.
        left_key: usize,
        /// Key column index on the right.
        right_key: usize,
        /// Left row width.
        left_width: usize,
        /// Right row width.
        right_width: usize,
    },
    /// Cartesian product.
    CrossJoin {
        /// Left fragments.
        left: Fragments,
        /// Right fragments.
        right: Fragments,
        /// Left row width.
        left_width: usize,
        /// Right row width.
        right_width: usize,
    },
    /// Global sort.
    Sort {
        /// Input fragments.
        input: Fragments,
        /// Sort column index.
        key: usize,
        /// Row width.
        width: usize,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input fragments.
        input: Fragments,
        /// Grouping column index.
        group: usize,
        /// Measure column index.
        measure: usize,
        /// Aggregate function.
        agg: AggFunc,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input fragments.
        input: Fragments,
        /// Row width.
        width: usize,
    },
    /// First `n` rows.
    Limit {
        /// Input fragments.
        input: Fragments,
        /// Row budget.
        n: usize,
        /// Row width.
        width: usize,
        /// Whether fragment order is globally meaningful.
        order_preserving: bool,
    },
}

/// What a strategy's execution produces: its exchange-trace rounds (ready
/// to replay on any backend) and the operator's output fragments.
#[derive(Debug)]
pub struct OpTrace {
    /// The communication rounds, in order.
    pub rounds: Vec<Vec<ScheduleSend>>,
    /// Output fragments by node id.
    pub output: Fragments,
}

/// The operator-specific execution input in columnar form: per-node
/// [`RecordBatch`](crate::batch::RecordBatch) lists instead of row
/// vectors, with the same parameters as [`OpInput`].
#[derive(Debug)]
pub enum BatchInput {
    /// Equi-join.
    Join {
        /// Left batch fragments.
        left: BatchFragments,
        /// Right batch fragments.
        right: BatchFragments,
        /// Key column index on the left.
        left_key: usize,
        /// Key column index on the right.
        right_key: usize,
        /// Left row width.
        left_width: usize,
        /// Right row width.
        right_width: usize,
    },
    /// Cartesian product.
    CrossJoin {
        /// Left batch fragments.
        left: BatchFragments,
        /// Right batch fragments.
        right: BatchFragments,
        /// Left row width.
        left_width: usize,
        /// Right row width.
        right_width: usize,
    },
    /// Global sort.
    Sort {
        /// Input batch fragments.
        input: BatchFragments,
        /// Sort column index.
        key: usize,
        /// Row width.
        width: usize,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input batch fragments.
        input: BatchFragments,
        /// Grouping column index.
        group: usize,
        /// Measure column index.
        measure: usize,
        /// Aggregate function.
        agg: AggFunc,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input batch fragments.
        input: BatchFragments,
        /// Row width.
        width: usize,
    },
    /// First `n` rows.
    Limit {
        /// Input batch fragments.
        input: BatchFragments,
        /// Row budget.
        n: usize,
        /// Row width.
        width: usize,
        /// Whether fragment order is globally meaningful.
        order_preserving: bool,
    },
}

impl BatchInput {
    /// Lossless conversion to row form, plus the operator's *output* row
    /// width (what a row shim must use to re-batch the traced output).
    pub fn into_rows(self) -> (OpInput, usize) {
        match self {
            BatchInput::Join {
                left,
                right,
                left_key,
                right_key,
                left_width,
                right_width,
            } => (
                OpInput::Join {
                    left: batches_to_fragments(&left),
                    right: batches_to_fragments(&right),
                    left_key,
                    right_key,
                    left_width,
                    right_width,
                },
                left_width + right_width,
            ),
            BatchInput::CrossJoin {
                left,
                right,
                left_width,
                right_width,
            } => (
                OpInput::CrossJoin {
                    left: batches_to_fragments(&left),
                    right: batches_to_fragments(&right),
                    left_width,
                    right_width,
                },
                left_width + right_width,
            ),
            BatchInput::Sort { input, key, width } => (
                OpInput::Sort {
                    input: batches_to_fragments(&input),
                    key,
                    width,
                },
                width,
            ),
            BatchInput::Aggregate {
                input,
                group,
                measure,
                agg,
            } => (
                OpInput::Aggregate {
                    input: batches_to_fragments(&input),
                    group,
                    measure,
                    agg,
                },
                2,
            ),
            BatchInput::Distinct { input, width } => (
                OpInput::Distinct {
                    input: batches_to_fragments(&input),
                    width,
                },
                width,
            ),
            BatchInput::Limit {
                input,
                n,
                width,
                order_preserving,
            } => (
                OpInput::Limit {
                    input: batches_to_fragments(&input),
                    n,
                    width,
                    order_preserving,
                },
                width,
            ),
        }
    }
}

/// What a strategy's columnar execution produces: the same replayable
/// rounds as [`OpTrace`], with the output in batch form.
#[derive(Debug)]
pub struct BatchTrace {
    /// The communication rounds, in order.
    pub rounds: Vec<Vec<ScheduleSend>>,
    /// Output batch fragments by node id.
    pub output: BatchFragments,
}

/// Records the rounds of one operator's exchange.
#[derive(Debug)]
pub struct TraceBuilder {
    rounds: Vec<Vec<ScheduleSend>>,
    batch: usize,
}

impl Default for TraceBuilder {
    /// An unchunked builder ([`RoundSends::send_rows`] emits one send per
    /// payload), for strategies that size their sends themselves.
    fn default() -> Self {
        TraceBuilder::batched(usize::MAX)
    }
}

impl TraceBuilder {
    /// A builder that chunks every [`RoundSends::send_rows`] payload into
    /// sends of at most `batch` rows ([`ExecArgs::batch`]).
    pub fn batched(batch: usize) -> Self {
        TraceBuilder {
            rounds: Vec::new(),
            batch,
        }
    }

    /// Record one communication round; `f` queues the round's sends.
    /// Rounds with no sends are still recorded (silent rounds are
    /// metered, matching both engines).
    pub fn round<F: FnOnce(&mut RoundSends)>(&mut self, f: F) {
        let mut rec = RoundSends {
            sends: Vec::new(),
            batch: self.batch,
        };
        f(&mut rec);
        self.rounds.push(rec.sends);
    }

    /// Finish recording.
    pub fn into_rounds(self) -> Vec<Vec<ScheduleSend>> {
        self.rounds
    }
}

/// Collects the sends of one round.
#[derive(Debug)]
pub struct RoundSends {
    sends: Vec<ScheduleSend>,
    batch: usize,
}

impl RoundSends {
    /// Queue a multicast; the payload is captured as one shared
    /// allocation. Empty payloads and destination sets are dropped,
    /// mirroring both engines.
    pub fn send(&mut self, src: NodeId, dsts: &[NodeId], rel: Rel, values: Vec<Value>) {
        if dsts.is_empty() || values.is_empty() {
            return;
        }
        self.sends.push(ScheduleSend {
            src,
            dsts: dsts.to_vec(),
            rel,
            values: values.into(),
        });
    }

    /// Queue a row-major payload of `width`-value rows, chunked into
    /// sends of at most the builder's batch size (in rows). Chunk
    /// boundaries never change the metered cost — the per-edge charge is
    /// linear in the amount sent for a fixed `(src, dsts)` — so the
    /// ledger is bit-identical for every batch size.
    pub fn send_rows(
        &mut self,
        src: NodeId,
        dsts: &[NodeId],
        rel: Rel,
        values: Vec<Value>,
        width: usize,
    ) {
        if dsts.is_empty() || values.is_empty() {
            return;
        }
        let chunk = self.batch.saturating_mul(width.max(1));
        if values.len() <= chunk {
            self.send(src, dsts, rel, values);
            return;
        }
        for piece in values.chunks(chunk) {
            self.send(src, dsts, rel, piece.to_vec());
        }
    }
}

/// One pluggable implementation of a physical operator.
///
/// See the [module docs](self) for the contract and a worked third-party
/// example. The estimate/trace pair must price and move traffic on the
/// same routes: the parity and `x-strategy` suites compare them.
pub trait PhysicalStrategy: fmt::Debug + Send + Sync {
    /// Unique (per operator) strategy name; `EXPLAIN` and
    /// [`QueryContext::with_strategy`](crate::context::QueryContext::with_strategy)
    /// refer to strategies by this name.
    fn name(&self) -> &'static str;

    /// The operator this strategy implements.
    fn operator(&self) -> OperatorKind;

    /// The paper algorithm this strategy adapts (shown in `EXPLAIN`);
    /// `None` for baselines and generic exchanges.
    fn algorithm(&self) -> Option<&'static str> {
        None
    }

    /// Price the exchange on the §2 functional from estimated per-node
    /// cardinalities.
    fn estimate(&self, args: &PlanArgs<'_>) -> CostEstimate;

    /// Evaluate the task's per-edge lower bound on the estimated
    /// placement, in values ([`tamp_core`]'s Theorems 1/3+4/6 and the
    /// aggregation bound). `None` when no bound applies (asymmetric
    /// trees, unbounded tasks).
    fn lower_bound(&self, _args: &PlanArgs<'_>) -> Option<LowerBound> {
        None
    }

    /// Estimated distribution of the operator's *output* rows over nodes.
    /// Defaults to shares proportional to the combined input counts.
    fn output_shares(&self, args: &PlanArgs<'_>) -> NodeCounts {
        args.model.proportional_shares(&args.combined_counts())
    }

    /// Execute: compute the output fragments and the exchange-trace
    /// rounds that move them. The returned rounds replay through any
    /// backend; their metered cost is the strategy's actual cost.
    fn trace(&self, args: &ExecArgs<'_>, input: OpInput) -> Result<OpTrace, QueryError>;

    /// Execute on columnar input. The default is a lossless row shim:
    /// convert to rows, run [`trace`](PhysicalStrategy::trace), re-batch
    /// the output at [`ExecArgs::batch`] rows — rows, rounds, and ledger
    /// identical to the tuple engine by construction. Strategies with a
    /// columnar-native exchange (the repartition and broadcast joins)
    /// override this to skip row materialization entirely; overrides must
    /// reproduce the tuple path's sends and fragment order exactly (the
    /// `plan_parity` proptests hold them to it).
    fn trace_batch(
        &self,
        args: &ExecArgs<'_>,
        input: BatchInput,
    ) -> Result<BatchTrace, QueryError> {
        let (rows, out_width) = input.into_rows();
        let traced = self.trace(args, rows)?;
        Ok(BatchTrace {
            output: fragments_to_batches(&traced.output, out_width, args.batch),
            rounds: traced.rounds,
        })
    }
}

/// The set of registered strategies, by operator.
///
/// A fresh registry ([`StrategyRegistry::with_defaults`]) holds every
/// built-in strategy; sessions clone it and
/// [`register`](StrategyRegistry::register) third-party implementations
/// on top. The planner's choice is deterministic: the cheapest estimate
/// wins, and exact float ties break on the strategy *name* (lexically
/// smallest), so the winner — and with it EXPLAIN output and the
/// `x-strategy` tables — is stable across platforms and registration
/// orders.
#[derive(Clone, Debug, Default)]
pub struct StrategyRegistry {
    strategies: Vec<Arc<dyn PhysicalStrategy>>,
}

impl StrategyRegistry {
    /// An empty registry (no operator can be planned until strategies are
    /// registered).
    pub fn empty() -> Self {
        StrategyRegistry::default()
    }

    /// The built-in strategies: for each operator, the paper algorithm(s)
    /// and the topology-agnostic baseline(s).
    pub fn with_defaults() -> Self {
        let mut r = StrategyRegistry::empty();
        for s in super::strategies::defaults() {
            r.register(s);
        }
        r
    }

    /// Register a strategy. A strategy with the same `(operator, name)`
    /// pair as an existing one *replaces* it in place (keeping its
    /// position in the candidate listing), so a session can deliberately
    /// override a built-in; otherwise the strategy is appended to its
    /// operator's candidate list.
    pub fn register(&mut self, strategy: Arc<dyn PhysicalStrategy>) {
        match self
            .strategies
            .iter_mut()
            .find(|s| s.operator() == strategy.operator() && s.name() == strategy.name())
        {
            Some(slot) => *slot = strategy,
            None => self.strategies.push(strategy),
        }
    }

    /// The registered candidates for `op`, in registration order.
    pub fn candidates(&self, op: OperatorKind) -> Vec<&Arc<dyn PhysicalStrategy>> {
        self.strategies
            .iter()
            .filter(|s| s.operator() == op)
            .collect()
    }

    /// Look up a strategy by operator and name.
    pub fn get(&self, op: OperatorKind, name: &str) -> Option<&Arc<dyn PhysicalStrategy>> {
        self.strategies
            .iter()
            .find(|s| s.operator() == op && s.name() == name)
    }

    /// Price every candidate for `op` and resolve the choice: `forced`
    /// selects by name (an unknown name is a typed error listing the
    /// alternatives), otherwise the cheapest estimate wins, with exact
    /// float ties broken deterministically on the strategy name.
    pub fn plan(
        &self,
        op: OperatorKind,
        forced: Option<&str>,
        args: &PlanArgs<'_>,
    ) -> Result<super::Exchange, QueryError> {
        let candidates = self.candidates(op);
        if candidates.is_empty() {
            return Err(QueryError::UnknownStrategy {
                operator: op.name(),
                name: forced.unwrap_or("<auto>").to_string(),
                available: Vec::new(),
            });
        }
        let lower_bound = candidates.iter().find_map(|s| s.lower_bound(args));
        let lb = lower_bound.map(|b| b.value());
        let priced: Vec<(Arc<dyn PhysicalStrategy>, CostEstimate)> = candidates
            .iter()
            .map(|s| (Arc::clone(s), s.estimate(args)))
            .collect();
        let chosen = match forced {
            Some(name) => priced
                .iter()
                .find(|(s, _)| s.name() == name)
                .ok_or_else(|| QueryError::UnknownStrategy {
                    operator: op.name(),
                    name: name.to_string(),
                    available: priced.iter().map(|(s, _)| s.name().to_string()).collect(),
                })?,
            None => priced
                .iter()
                .min_by(|(sa, a), (sb, b)| {
                    // Deterministic under float ties: equal estimates
                    // break on the strategy *name*, not on registration
                    // order or platform-dependent float quirks, so
                    // EXPLAIN output and the `x-strategy` tables are
                    // stable everywhere. `total_cmp` (lint rule F1)
                    // keeps a NaN estimate from panicking mid-plan.
                    a.tuple_cost
                        .total_cmp(&b.tuple_cost)
                        .then_with(|| sa.name().cmp(sb.name()))
                })
                .expect("at least one candidate"),
        };
        let candidates = priced
            .iter()
            .map(|(s, e)| Candidate {
                name: s.name(),
                algorithm: s.algorithm(),
                cost: e.tuple_cost,
                rounds: e.rounds,
                ratio: lb.map_or(f64::NAN, |lb| tamp_core::ratio::ratio(e.tuple_cost, lb)),
            })
            .collect();
        Ok(super::Exchange {
            strategy: Arc::clone(&chosen.0),
            estimate: chosen.1,
            lower_bound,
            candidates,
        })
    }
}

/// The process-wide default registry, for the legacy free-function entry
/// points ([`execute`](crate::exec::execute)) that have no session to
/// carry one.
pub(crate) fn default_registry() -> &'static StrategyRegistry {
    static DEFAULT: OnceLock<StrategyRegistry> = OnceLock::new();
    DEFAULT.get_or_init(StrategyRegistry::with_defaults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    /// A plan-only stub whose estimate is a fixed constant.
    #[derive(Debug)]
    struct FlatCost {
        name: &'static str,
        cost: f64,
    }

    impl PhysicalStrategy for FlatCost {
        fn name(&self) -> &'static str {
            self.name
        }
        fn operator(&self) -> OperatorKind {
            OperatorKind::Sort
        }
        fn estimate(&self, _args: &PlanArgs<'_>) -> CostEstimate {
            CostEstimate {
                tuple_cost: self.cost,
                rounds: 1,
            }
        }
        fn trace(&self, _args: &ExecArgs<'_>, _input: OpInput) -> Result<OpTrace, QueryError> {
            unreachable!("plan-only test stub")
        }
    }

    #[test]
    fn equal_cost_ties_break_on_strategy_name_not_registration_order() {
        let tree = builders::star(3, 1.0);
        let model = CostModel::new(&tree);
        let args = PlanArgs {
            model: &model,
            seed: 0,
            left: PlanSide {
                counts: vec![10.0; tree.num_nodes()],
                width: 2,
            },
            right: None,
            groups: 0.0,
            limit: 0,
        };
        // Same estimated cost, registered in both orders: the winner must
        // be the lexically smallest name either way.
        for names in [["zeta", "alpha"], ["alpha", "zeta"]] {
            let mut r = StrategyRegistry::empty();
            for name in names {
                r.register(Arc::new(FlatCost { name, cost: 42.0 }));
            }
            let x = r.plan(OperatorKind::Sort, None, &args).unwrap();
            assert_eq!(x.name(), "alpha", "registered as {names:?}");
            assert_eq!(x.candidates.len(), 2);
        }
        // A strictly cheaper estimate still beats a lexically smaller
        // name: the tie-break only applies on exact ties.
        let mut r = StrategyRegistry::empty();
        r.register(Arc::new(FlatCost {
            name: "alpha",
            cost: 42.0,
        }));
        r.register(Arc::new(FlatCost {
            name: "zeta",
            cost: 41.0,
        }));
        let x = r.plan(OperatorKind::Sort, None, &args).unwrap();
        assert_eq!(x.name(), "zeta");
    }
}
