//! The concurrent serving layer: one [`QueryService`] fronting many
//! client sessions.
//!
//! [`QueryContext`] is a single-session API: one caller prepares one plan
//! and runs it. A serving deployment looks different — many clients fire
//! queries at one shared catalog and one shared [`ExecBackend`], most of
//! the queries are repeats, and planning cost should be paid once, not
//! per request. `QueryService` is that layer:
//!
//! - **Prepared-plan cache.** Plans are cached under a canonical
//!   fingerprint of `(logical plan, tree topology, catalog version,
//!   session options)`. A hit skips validation, lowering and candidate
//!   pricing entirely and goes straight to execution;
//!   [`register`](QueryService::register) and
//!   [`register_strategy`](QueryService::register_strategy) bump the
//!   catalog version and invalidate every entry. Hit/miss/invalidation
//!   counters are exposed via [`cache_stats`](QueryService::cache_stats).
//! - **Admission scheduling.** In-flight queries are bounded
//!   ([`with_max_inflight`](QueryService::with_max_inflight)); waiting
//!   queries are admitted in strict FIFO ticket order, so a burst cannot
//!   starve earlier arrivals. Every served query reports queue / plan /
//!   exec timings in its [`ServiceStats`].
//! - **Shared backend.** The service holds an
//!   `Arc<dyn ExecBackend + Send + Sync>`; the pooled cluster backend can
//!   additionally share one persistent worker crew across all queries
//!   ([`PooledClusterBackend::with_shared_pool`]).
//!
//! Results are **bit-identical to single-session execution**: a query
//! served concurrently through the cache returns the same rows and the
//! same metered `edge_totals` as a fresh
//! [`QueryContext::prepare`]`().run()` — the serving stress suite asserts
//! exactly that.
//!
//! # A multi-threaded session
//!
//! ```
//! use std::sync::Arc;
//! use tamp_query::prelude::*;
//! use tamp_query::service::QueryService;
//! use tamp_runtime::SimulatorBackend;
//! use tamp_topology::builders;
//!
//! let mut ctx = QueryContext::new(builders::star(4, 1.0)).with_seed(7);
//! let rows: Vec<Vec<u64>> = (0..120).map(|i| vec![i, i % 5, i * 3]).collect();
//! ctx.register(DistributedTable::round_robin(
//!     "t",
//!     Schema::new(vec!["id", "g", "x"]).unwrap(),
//!     rows,
//!     ctx.tree(),
//! ))
//! .unwrap();
//!
//! let service = QueryService::new(ctx, Arc::new(SimulatorBackend))
//!     .with_max_inflight(4)
//!     .unwrap();
//! let q = LogicalPlan::scan("t").aggregate("g", AggFunc::Sum, "x");
//!
//! // Serial reference, for comparison — and the warm-up serve that
//! // populates the plan cache.
//! let want = service.context().prepare(&q).unwrap().run().unwrap().rows(false);
//! assert!(!service.serve(&q).unwrap().stats.cache_hit);
//!
//! // Four client threads hammer the same query through the service.
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         let (service, q, want) = (&service, &q, &want);
//!         scope.spawn(move || {
//!             for _ in 0..8 {
//!                 let served = service.serve(q).unwrap();
//!                 assert!(served.stats.cache_hit);
//!                 assert_eq!(&served.result.rows(false), want);
//!             }
//!         });
//!     }
//! });
//!
//! let stats = service.cache_stats();
//! assert_eq!((stats.hits, stats.misses), (32, 1));
//! ```
//!
//! [`PooledClusterBackend::with_shared_pool`]:
//!     tamp_runtime::PooledClusterBackend::with_shared_pool

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use tamp_runtime::backend::{ExecBackend, SimulatorBackend};
use tamp_runtime::backend_from_spec;
use tamp_topology::{EdgeId, Tree};

use crate::context::{PreparedQuery, QueryContext};
use crate::error::QueryError;
use crate::exec::{self, ExecOptions, QueryResult};
use crate::physical::strategy::PhysicalStrategy;
use crate::physical::{lower_full, PhysicalPlan};
use crate::plan::LogicalPlan;
use crate::schema::Schema;
use crate::table::DistributedTable;

/// Recover a guard from a possibly-poisoned mutex: the service must keep
/// serving after a panicking query thread (the state under these locks is
/// counters and immutable `Arc`s, never left half-written).
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One immutable generation of the service's session state. Queries
/// snapshot the `Arc` once and keep planning/executing against it even if
/// a concurrent `register` swaps in the next generation.
struct Snapshot {
    ctx: Arc<QueryContext>,
    version: u64,
    /// Fingerprint of the snapshot's topology (weights included): part
    /// of the plan-cache key, so an in-place bandwidth mutation
    /// ([`QueryService::degrade_link`]) can never serve a plan priced on
    /// the healthy network.
    tree_fp: u64,
}

/// A cached prepared plan: the lowered physical plan plus its inferred
/// output schema, shared by every query that hits the entry.
struct CachedPlan {
    physical: PhysicalPlan,
    schema: Schema,
}

/// A query pinned to one catalog snapshot and one prepared plan — see
/// [`QueryService::prepare_pinned`].
pub(crate) struct PinnedQuery {
    ctx: Arc<QueryContext>,
    plan: Arc<CachedPlan>,
    cache_hit: bool,
    plan_time: Duration,
}

/// One plan-cache slot. The fingerprint key is 64 bits, so the entry
/// keeps the exact logical plan, options and catalog version to rule
/// out collisions on lookup.
struct CacheSlot {
    logical: LogicalPlan,
    options: ExecOptions,
    /// The catalog version the plan was lowered against — part of the
    /// hit guard, so a key collision across versions can never serve a
    /// plan priced on stale statistics.
    version: u64,
    /// Recency tick for eviction at [`PLAN_CACHE_CAPACITY`].
    last_used: u64,
    plan: Arc<CachedPlan>,
}

/// Upper bound on cached prepared plans. A serving workload is
/// repetition-heavy, so steady state is far below this; the cap only
/// protects a long-lived service against a stream of never-repeating
/// ad-hoc plans growing memory without bound. On overflow the
/// least-recently-used entry is evicted.
pub const PLAN_CACHE_CAPACITY: usize = 1024;

#[derive(Default)]
struct PlanCache {
    entries: HashMap<u64, CacheSlot>,
    /// Monotonic use counter backing LRU eviction.
    tick: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl PlanCache {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Point-in-time plan-cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries served from a cached prepared plan.
    pub hits: u64,
    /// Queries that had to lower and price their plan.
    pub misses: u64,
    /// Cache invalidation events (`register` / `register_strategy`).
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// FIFO bounded-admission gate: tickets are issued on arrival and
/// admitted strictly in ticket order as completions free slots.
struct Admission {
    max_inflight: usize,
    state: Mutex<AdmissionState>,
    cv: Condvar,
}

#[derive(Default)]
struct AdmissionState {
    next_ticket: u64,
    completed: u64,
    running: usize,
    peak_inflight: usize,
}

impl Admission {
    fn new(max_inflight: usize) -> Self {
        Admission {
            max_inflight: max_inflight.max(1),
            state: Mutex::new(AdmissionState::default()),
            cv: Condvar::new(),
        }
    }

    /// Block until admitted; returns the query's ticket number.
    fn acquire(&self) -> u64 {
        let mut s = lock_ok(&self.state);
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        while ticket >= s.completed + self.max_inflight as u64 {
            s = match self.cv.wait(s) {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        s.running += 1;
        s.peak_inflight = s.peak_inflight.max(s.running);
        ticket
    }

    fn release(&self) {
        let mut s = lock_ok(&self.state);
        s.running -= 1;
        s.completed += 1;
        drop(s);
        self.cv.notify_all();
    }
}

/// Releases the admission slot even if the query errors or panics.
struct Permit<'a>(&'a Admission);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Admission-gate counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted so far (equals issued tickets once the queue
    /// drains).
    pub admitted: u64,
    /// The highest number of queries ever in flight together.
    pub peak_inflight: usize,
    /// The configured bound.
    pub max_inflight: usize,
}

/// Per-query serving telemetry, returned with every result.
#[derive(Clone, Copy, Debug)]
pub struct ServiceStats {
    /// FIFO ticket number (arrival order).
    pub ticket: u64,
    /// Time spent waiting for admission.
    pub queued: Duration,
    /// Time spent planning (≈0 on a cache hit).
    pub plan: Duration,
    /// Time spent computing fragments and replaying the exchange
    /// schedule on the backend.
    pub exec: Duration,
    /// Whether the prepared plan came from the cache.
    pub cache_hit: bool,
}

/// A served query: the ordinary [`QueryResult`] plus serving telemetry.
#[derive(Clone, Debug)]
pub struct ServedQuery {
    /// The query's result — bit-identical to single-session execution.
    pub result: QueryResult,
    /// Queue/plan/exec timings and cache provenance.
    pub stats: ServiceStats,
}

/// A thread-safe query-serving layer: shared catalog, shared backend,
/// prepared-plan cache, FIFO bounded admission. See the [module
/// docs](self).
pub struct QueryService {
    snapshot: RwLock<Snapshot>,
    backend: Arc<dyn ExecBackend + Send + Sync>,
    cache: Mutex<PlanCache>,
    admission: Admission,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("backend", &self.backend.name())
            .field("catalog_version", &self.catalog_version())
            .field("cache", &self.cache_stats())
            .finish()
    }
}

/// Canonical fingerprint of the topology a snapshot is bound to: node
/// kinds plus every edge's endpoints and exact bandwidth bits
/// ([`Tree::fingerprint`]).
fn tree_fingerprint(tree: &Tree) -> u64 {
    tree.fingerprint()
}

impl QueryService {
    /// Wrap a session into a serving layer over `backend`. The context's
    /// catalog, options and strategy registry become the service's
    /// initial (version 0) state.
    pub fn new(ctx: QueryContext, backend: Arc<dyn ExecBackend + Send + Sync>) -> Self {
        let tree_fp = tree_fingerprint(ctx.tree());
        let default_inflight = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        QueryService {
            snapshot: RwLock::new(Snapshot {
                ctx: Arc::new(ctx),
                version: 0,
                tree_fp,
            }),
            backend,
            cache: Mutex::new(PlanCache::default()),
            admission: Admission::new(default_inflight),
        }
    }

    /// A service over the default centralized engine.
    pub fn with_default_backend(ctx: QueryContext) -> Self {
        QueryService::new(ctx, Arc::new(SimulatorBackend))
    }

    /// A service whose engine is resolved from a backend spec string
    /// (`"simulator"`, `"pooled-cluster:8"`, … — see
    /// [`backend_from_spec`]). Invalid specs surface as typed errors:
    /// unknown engines and zero-width pools are rejected here, not at
    /// first query.
    pub fn from_backend_spec(ctx: QueryContext, spec: &str) -> Result<Self, QueryError> {
        let backend: Arc<dyn ExecBackend + Send + Sync> = Arc::from(backend_from_spec(spec)?);
        Ok(QueryService::new(ctx, backend))
    }

    /// Builder-style: bound concurrent in-flight queries. Arrivals beyond
    /// the bound queue in FIFO ticket order.
    ///
    /// A bound of 0 is a typed [`QueryError::InvalidAdmissionLimit`]: a
    /// zero-slot gate could never admit a query, so it is rejected here
    /// instead of deadlocking the first submit.
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Result<Self, QueryError> {
        if max_inflight == 0 {
            return Err(QueryError::InvalidAdmissionLimit);
        }
        self.admission = Admission::new(max_inflight);
        Ok(self)
    }

    /// The shared execution backend.
    pub fn backend(&self) -> &Arc<dyn ExecBackend + Send + Sync> {
        &self.backend
    }

    /// The current session snapshot (catalog + options + registry).
    /// In-flight queries keep the snapshot they started with; this
    /// returns the newest generation.
    pub fn context(&self) -> Arc<QueryContext> {
        Arc::clone(&self.read_snapshot().0)
    }

    /// The catalog version: bumped by every
    /// [`register`](Self::register) /
    /// [`register_strategy`](Self::register_strategy), part of the plan
    /// cache key.
    pub fn catalog_version(&self) -> u64 {
        self.read_snapshot().1
    }

    /// Point-in-time plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let c = lock_ok(&self.cache);
        CacheStats {
            hits: c.hits,
            misses: c.misses,
            invalidations: c.invalidations,
            entries: c.entries.len(),
        }
    }

    /// Point-in-time admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        let s = lock_ok(&self.admission.state);
        AdmissionStats {
            admitted: s.completed + s.running as u64,
            peak_inflight: s.peak_inflight,
            max_inflight: self.admission.max_inflight,
        }
    }

    /// Register (or replace) a table: copy-on-write the session snapshot,
    /// bump the catalog version and invalidate the plan cache. In-flight
    /// queries finish against the snapshot they started with. Returns the
    /// new catalog version.
    pub fn register(&self, table: DistributedTable) -> Result<u64, QueryError> {
        self.update_snapshot(|ctx| ctx.register(table).map(|_| ()))
    }

    /// Register a custom physical strategy for every subsequent query
    /// (see [`crate::physical::strategy`]): copy-on-write, version bump
    /// and cache invalidation, like [`register`](Self::register).
    /// Returns the new catalog version.
    pub fn register_strategy(
        &self,
        strategy: Arc<dyn PhysicalStrategy>,
    ) -> Result<u64, QueryError> {
        self.update_snapshot(|ctx| {
            ctx.register_strategy(strategy);
            Ok(())
        })
    }

    /// Degrade one link of the serving topology: divide both directed
    /// bandwidths of `edge` by `factor`, copy-on-write like
    /// [`register`](Self::register) — catalog version bump, plan-cache
    /// invalidation (the topology fingerprint in the cache key moves, so
    /// even a colliding entry can never serve a stale-priced plan), and
    /// in-flight queries finishing on the snapshot they started with.
    ///
    /// Every subsequent query re-prices its strategy candidates against
    /// the degraded network; `EXPLAIN` shows the (possibly flipped)
    /// winner. Returns the new catalog version.
    pub fn degrade_link(&self, edge: EdgeId, factor: f64) -> Result<u64, QueryError> {
        self.update_snapshot(|ctx| ctx.degrade_link(edge, factor))
    }

    /// Serve one query: admission → plan (cached) → execute on the shared
    /// backend. Blocks while the service is at its in-flight bound.
    ///
    /// The result is bit-identical (rows **and** metered `edge_totals`)
    /// to `QueryContext::prepare(plan)?.run_on(backend)` against the same
    /// catalog generation.
    pub fn serve(&self, plan: &LogicalPlan) -> Result<ServedQuery, QueryError> {
        let arrived = Instant::now();
        let ticket = self.admission.acquire();
        let _permit = Permit(&self.admission);
        let admitted = Instant::now();
        self.serve_prepared(plan, ticket, admitted.saturating_duration_since(arrived))
    }

    /// The plan-and-execute half of [`serve`](Self::serve), with the
    /// admission already decided by the caller: the FIFO gate (`serve`)
    /// or the orchestrator's weighted-fair gate, which supplies its own
    /// ticket and measured queue time.
    ///
    /// The queue → plan → exec timeline is monotone by construction: each
    /// phase boundary is captured once and durations are taken between
    /// consecutive boundaries with `saturating_duration_since`, so a
    /// coarse or non-monotone platform clock can underflow none of them.
    pub(crate) fn serve_prepared(
        &self,
        plan: &LogicalPlan,
        ticket: u64,
        queued: Duration,
    ) -> Result<ServedQuery, QueryError> {
        let pinned = self.prepare_pinned(plan)?;
        self.execute_pinned(&pinned, ticket, queued)
    }

    /// Plan (against the current snapshot, through the cache) and pin the
    /// result: the returned [`PinnedQuery`] holds the snapshot `Arc` and
    /// the shared prepared plan, so the caller can execute it any number
    /// of times — the orchestrator's recovery loop replays the *same*
    /// plan on the *same* catalog generation even if a concurrent
    /// `register` or [`degrade_link`](Self::degrade_link) swaps the
    /// service to a new generation mid-recovery. That pinning is what
    /// makes recovered results bit-identical by construction.
    pub(crate) fn prepare_pinned(&self, plan: &LogicalPlan) -> Result<PinnedQuery, QueryError> {
        let planning = Instant::now();
        let (ctx, version, tree_fp) = self.read_snapshot();
        let (cached, cache_hit) = self.prepare_cached(&ctx, version, tree_fp, plan)?;
        Ok(PinnedQuery {
            ctx,
            plan: cached,
            cache_hit,
            plan_time: Instant::now().saturating_duration_since(planning),
        })
    }

    /// Execute a pinned plan on the shared backend, stamping the serving
    /// telemetry. Pure with respect to the service's snapshot: only the
    /// pinned generation is read.
    pub(crate) fn execute_pinned(
        &self,
        pinned: &PinnedQuery,
        ticket: u64,
        queued: Duration,
    ) -> Result<ServedQuery, QueryError> {
        let executing = Instant::now();
        let result = exec::run_physical(
            pinned.ctx.catalog(),
            &pinned.plan.physical,
            pinned.ctx.options(),
            &self.backend,
        )?;
        let done = Instant::now();
        debug_assert_eq!(result.schema, pinned.plan.schema);
        Ok(ServedQuery {
            result,
            stats: ServiceStats {
                ticket,
                queued,
                plan: pinned.plan_time,
                exec: done.saturating_duration_since(executing),
                cache_hit: pinned.cache_hit,
            },
        })
    }

    /// Serve and return just the result (stats dropped).
    pub fn execute(&self, plan: &LogicalPlan) -> Result<QueryResult, QueryError> {
        Ok(self.serve(plan)?.result)
    }

    /// Render the query's `EXPLAIN` against the current snapshot — the
    /// session-layer rendering prefixed with the catalog version the plan
    /// was cached under. Uses (and warms) the plan cache; does not
    /// consume an admission slot.
    pub fn explain(&self, plan: &LogicalPlan) -> Result<String, QueryError> {
        let (ctx, version, tree_fp) = self.read_snapshot();
        let (cached, _) = self.prepare_cached(&ctx, version, tree_fp, plan)?;
        let prepared = PreparedQuery::from_parts(
            ctx.catalog(),
            ctx.options(),
            plan.clone(),
            cached.physical.clone(),
            cached.schema.clone(),
        );
        Ok(format!("catalog v{version}\n{}", prepared.explain()))
    }

    fn read_snapshot(&self) -> (Arc<QueryContext>, u64, u64) {
        let s = match self.snapshot.read() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        (Arc::clone(&s.ctx), s.version, s.tree_fp)
    }

    fn update_snapshot(
        &self,
        mutate: impl FnOnce(&mut QueryContext) -> Result<(), QueryError>,
    ) -> Result<u64, QueryError> {
        let version = {
            let mut s = match self.snapshot.write() {
                Ok(s) => s,
                Err(poisoned) => poisoned.into_inner(),
            };
            let mut ctx = (*s.ctx).clone();
            mutate(&mut ctx)?;
            // The mutation may have re-weighted the topology in place
            // (degrade_link): refresh the fingerprint with the version.
            s.tree_fp = tree_fingerprint(ctx.tree());
            s.ctx = Arc::new(ctx);
            s.version += 1;
            s.version
        };
        let mut cache = lock_ok(&self.cache);
        cache.entries.clear();
        cache.invalidations += 1;
        Ok(version)
    }

    /// Cache key: topology fingerprint ⊕ catalog version ⊕ session
    /// options ⊕ the canonical (structural) hash of the logical plan.
    fn fingerprint(tree_fp: u64, plan: &LogicalPlan, version: u64, options: &ExecOptions) -> u64 {
        let mut h = DefaultHasher::new();
        tree_fp.hash(&mut h);
        version.hash(&mut h);
        options.hash(&mut h);
        plan.hash(&mut h);
        h.finish()
    }

    /// Look the plan up in the cache, lowering (and inserting) on a miss.
    /// Returns the shared prepared plan and whether it was a hit.
    fn prepare_cached(
        &self,
        ctx: &QueryContext,
        version: u64,
        tree_fp: u64,
        plan: &LogicalPlan,
    ) -> Result<(Arc<CachedPlan>, bool), QueryError> {
        let options = ctx.options();
        let key = QueryService::fingerprint(tree_fp, plan, version, &options);
        {
            let mut cache = lock_ok(&self.cache);
            // 64-bit keys can collide; the stored plan + options +
            // catalog version are the ground truth.
            let tick = cache.next_tick();
            let hit = cache.entries.get_mut(&key).and_then(|slot| {
                (slot.logical == *plan && slot.options == options && slot.version == version).then(
                    || {
                        slot.last_used = tick;
                        Arc::clone(&slot.plan)
                    },
                )
            });
            if let Some(hit) = hit {
                cache.hits += 1;
                return Ok((hit, true));
            }
            cache.misses += 1;
        }
        // Lower outside the cache lock: planning can be slow, and
        // concurrent first-time queries should not serialize on it.
        let (physical, schema) = lower_full(plan, ctx.catalog(), options, ctx.strategies())?;
        let cached = Arc::new(CachedPlan { physical, schema });
        let mut cache = lock_ok(&self.cache);
        // Skip the insert if a register() raced past while we lowered:
        // the plan is still correct for *this* query (it runs on the
        // snapshot it was lowered from), but caching it would strand an
        // unreachable stale-generation entry until the next eviction.
        if self.read_snapshot().1 == version {
            if cache.entries.len() >= PLAN_CACHE_CAPACITY && !cache.entries.contains_key(&key) {
                // Evict the least-recently-used slot.
                if let Some(&lru) = cache
                    .entries
                    .iter()
                    .min_by_key(|(_, slot)| slot.last_used)
                    .map(|(k, _)| k)
                {
                    cache.entries.remove(&lru);
                }
            }
            // A racing miss may have inserted first (or a collision may
            // live here): last writer wins, both plans are correct.
            let tick = cache.next_tick();
            cache.entries.insert(
                key,
                CacheSlot {
                    logical: plan.clone(),
                    options,
                    version,
                    last_used: tick,
                    plan: Arc::clone(&cached),
                },
            );
        }
        Ok((cached, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::AggFunc;
    use crate::schema::Schema;
    use tamp_runtime::PooledClusterBackend;
    use tamp_topology::builders;

    fn ctx() -> QueryContext {
        let tree = builders::rack_tree(&[(3, 1.0, 2.0), (2, 2.0, 1.0)], 1.0);
        let mut ctx = QueryContext::new(tree.clone()).with_seed(11);
        let rows: Vec<Vec<u64>> = (0..150).map(|i| vec![i, i % 6, (i * 37) % 500]).collect();
        ctx.register(DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            &tree,
        ))
        .unwrap();
        ctx.register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..6).map(|g| vec![g, g + 10]).collect(),
            &tree,
        ))
        .unwrap();
        ctx
    }

    fn queries() -> Vec<LogicalPlan> {
        vec![
            LogicalPlan::scan("facts")
                .filter(col("x").lt(lit(250)))
                .aggregate("g", AggFunc::Sum, "x"),
            LogicalPlan::scan("facts").join_on(LogicalPlan::scan("dims"), "g", "g"),
            LogicalPlan::scan("facts").order_by("x").limit(10),
        ]
    }

    #[test]
    fn serves_bit_identically_to_a_fresh_session() {
        let service = QueryService::with_default_backend(ctx());
        for q in queries() {
            let served = service.serve(&q).unwrap();
            let fresh = ctx().prepare(&q).unwrap().run().unwrap();
            assert_eq!(served.result.rows(false), fresh.rows(false), "{q}");
            assert_eq!(
                served.result.cost.edge_totals, fresh.cost.edge_totals,
                "{q}"
            );
        }
    }

    #[test]
    fn cache_hits_after_warmup_and_invalidates_on_register() {
        let service = QueryService::with_default_backend(ctx());
        let q = &queries()[0];
        let first = service.serve(q).unwrap();
        assert!(!first.stats.cache_hit);
        for _ in 0..3 {
            assert!(service.serve(q).unwrap().stats.cache_hit);
        }
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (3, 1, 1));

        // Re-registering a table invalidates; the next serve replans.
        let v = service
            .register(DistributedTable::round_robin(
                "dims",
                Schema::new(vec!["g", "tier"]).unwrap(),
                (0..8).map(|g| vec![g, g + 20]).collect(),
                service.context().tree(),
            ))
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(service.cache_stats().entries, 0);
        assert_eq!(service.cache_stats().invalidations, 1);
        let replanned = service.serve(q).unwrap();
        assert!(!replanned.stats.cache_hit);
    }

    #[test]
    fn distinct_options_and_plans_get_distinct_entries() {
        let service = QueryService::with_default_backend(ctx());
        for q in queries() {
            service.serve(&q).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 3));
    }

    #[test]
    fn admission_bounds_inflight_and_keeps_results_exact() {
        let service = Arc::new(
            QueryService::new(ctx(), Arc::new(PooledClusterBackend::with_shared_pool(2)))
                .with_max_inflight(3)
                .unwrap(),
        );
        let qs = queries();
        let serial: Vec<_> = qs
            .iter()
            .map(|q| ctx().prepare(q).unwrap().run().unwrap())
            .collect();
        // Warm the cache serially: the threaded phase then hits
        // deterministically (a cold start could thundering-herd several
        // misses for the same plan, since lowering happens outside the
        // cache lock).
        for q in &qs {
            assert!(!service.serve(q).unwrap().stats.cache_hit);
        }
        std::thread::scope(|scope| {
            for t in 0..6 {
                let (service, qs, serial) = (&service, &qs, &serial);
                scope.spawn(move || {
                    for i in 0..6 {
                        let q = &qs[(t + i) % qs.len()];
                        let want = &serial[(t + i) % qs.len()];
                        let served = service.serve(q).unwrap();
                        assert!(served.stats.cache_hit);
                        assert_eq!(served.result.rows(false), want.rows(false));
                        assert_eq!(served.result.cost.edge_totals, want.cost.edge_totals);
                    }
                });
            }
        });
        let adm = service.admission_stats();
        assert_eq!(adm.admitted, 39); // 3 warm-up + 36 threaded
        assert!(adm.peak_inflight <= 3, "{adm:?}");
        let cache = service.cache_stats();
        assert_eq!((cache.hits, cache.misses), (36, 3));
    }

    #[test]
    fn cache_is_bounded_with_lru_eviction() {
        let service = QueryService::with_default_backend(ctx());
        // A stream of never-repeating plans must not grow the cache past
        // its capacity.
        for n in 0..PLAN_CACHE_CAPACITY + 8 {
            service
                .explain(&LogicalPlan::scan("facts").limit(n + 1))
                .unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(stats.entries, PLAN_CACHE_CAPACITY);
        assert_eq!(stats.misses, (PLAN_CACHE_CAPACITY + 8) as u64);
        // The oldest plans were evicted, the newest survive.
        assert!(
            !service
                .serve(&LogicalPlan::scan("facts").limit(1))
                .unwrap()
                .stats
                .cache_hit
        );
        assert!(
            service
                .serve(&LogicalPlan::scan("facts").limit(PLAN_CACHE_CAPACITY + 8))
                .unwrap()
                .stats
                .cache_hit
        );
    }

    #[test]
    fn explain_names_the_catalog_version_and_warms_the_cache() {
        let service = QueryService::with_default_backend(ctx());
        let q = queries()[1].clone();
        let text = service.explain(&q).unwrap();
        assert!(text.contains("catalog v0"), "{text}");
        assert!(text.contains("HashJoin"), "{text}");
        // The explain warmed the cache: the first serve is a hit.
        assert!(service.serve(&q).unwrap().stats.cache_hit);
    }

    #[test]
    fn zero_max_inflight_is_a_typed_error_not_a_deadlock() {
        // Regression: a zero-slot gate could never admit a query; reject
        // it at construction like the runtime rejects zero-width pools.
        let err = QueryService::with_default_backend(ctx())
            .with_max_inflight(0)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, QueryError::InvalidAdmissionLimit);
        assert!(err.to_string().contains("max_inflight"), "{err}");
        // Every nonzero bound still works, including 1.
        let service = QueryService::with_default_backend(ctx())
            .with_max_inflight(1)
            .unwrap();
        assert!(service.serve(&queries()[0]).is_ok());
        assert_eq!(service.admission_stats().max_inflight, 1);
    }

    #[test]
    fn backend_specs_resolve_and_zero_width_pools_are_rejected() {
        let ok = QueryService::from_backend_spec(ctx(), "pooled-cluster:2").unwrap();
        assert_eq!(ok.backend().name(), "pooled-cluster(2)");
        let err = QueryService::from_backend_spec(ctx(), "pooled-cluster:0").unwrap_err();
        assert!(matches!(err, QueryError::Backend(_)), "{err:?}");
        assert!(err.to_string().contains("zero-width"), "{err}");
    }

    #[test]
    fn degrading_an_uplink_invalidates_the_cache_and_flips_the_explain_winner() {
        // Two racks (4 + 2 computes) behind a fat core. Healthy, the
        // one-round partial repartition wins the aggregate. Degrade the
        // big rack's core uplink 16x and the repartition pays
        // per-(node, group) partials across the now-thin link while the
        // combining convergecast ships one partial set per level — the
        // winner must flip, which requires the degrade to move the
        // topology fingerprint and so invalidate the cached plan.
        let tree = builders::rack_tree(&[(4, 4.0, 8.0), (2, 4.0, 8.0)], 16.0);
        let mut ctx = QueryContext::new(tree.clone()).with_seed(7);
        let rows: Vec<Vec<u64>> = (0..600).map(|i| vec![i, i % 4, (i * 31) % 997]).collect();
        ctx.register(DistributedTable::round_robin(
            "facts",
            Schema::new(vec!["id", "g", "x"]).unwrap(),
            rows,
            &tree,
        ))
        .unwrap();
        let service = QueryService::with_default_backend(ctx);
        let q = LogicalPlan::scan("facts").aggregate("g", AggFunc::Sum, "x");

        let healthy = service.serve(&q).unwrap();
        assert!(!healthy.stats.cache_hit);
        assert!(service.serve(&q).unwrap().stats.cache_hit);
        let before = service.explain(&q).unwrap();
        assert!(before.contains("-repartition"), "{before}");
        assert!(!before.contains("via combining-tree"), "{before}");

        // The big rack's core uplink is EdgeId(0) in rack_tree order.
        let version = service.degrade_link(EdgeId(0), 16.0).unwrap();
        assert!(version > 0, "degrade must publish a new catalog version");
        assert_eq!(service.cache_stats().invalidations, 1);

        let repriced = service.serve(&q).unwrap();
        assert!(
            !repriced.stats.cache_hit,
            "degraded topology must invalidate the cached plan"
        );
        let after = service.explain(&q).unwrap();
        assert!(after.contains("via combining-tree"), "{after}");
        // Re-pricing changes the exchange schedule, never the answer.
        assert_eq!(healthy.result.rows(false), repriced.result.rows(false));

        // Bad degrades stay typed and leave the snapshot untouched.
        let fp_err = service.degrade_link(EdgeId(99), 2.0).unwrap_err();
        assert!(
            matches!(fp_err, QueryError::InvalidFaultTarget(_)),
            "{fp_err:?}"
        );
        let bw_err = service.degrade_link(EdgeId(0), 0.0).unwrap_err();
        assert!(
            matches!(bw_err, QueryError::InvalidFaultTarget(_)),
            "{bw_err:?}"
        );
        assert_eq!(service.cache_stats().invalidations, 1);
        assert!(service.serve(&q).unwrap().stats.cache_hit);
    }
}
