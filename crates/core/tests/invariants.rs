//! Property tests for the core planning primitives added by the
//! extensions: interval segmentation, the convergecast merge schedule,
//! bandwidth perturbation, and the unequal-size strategy chooser.

use proptest::prelude::*;
use tamp_core::aggregate::combining_schedule;
use tamp_core::cartesian::grid::interval_segments;
use tamp_core::cartesian::{
    cost_all_to_node, cost_broadcast_small, unequal_tree_lower_bound, UnequalTreeCartesianProduct,
    UnequalTreeStrategy,
};
use tamp_core::hashing::mix64;
use tamp_core::robustness::perturb_bandwidths;
use tamp_simulator::{run_protocol, Placement, Rel};
use tamp_topology::{builders, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every local index covered by some recipient appears in exactly one
    /// segment, and each segment's destination set is exactly the
    /// recipients covering it.
    #[test]
    fn interval_segments_partition_covered_indices(
        local_len in 0usize..64,
        local_start in 0u64..100,
        raw in proptest::collection::vec((0u64..160, 0u64..60, 0u32..6), 0..8),
    ) {
        let recipients: Vec<(NodeId, std::ops::Range<u64>)> = raw
            .iter()
            .map(|&(a, len, node)| (NodeId(node), a..a + len))
            .collect();
        let segments = interval_segments(local_len, local_start, &recipients);

        // Segments are disjoint, sorted, in-bounds.
        let mut prev_end = 0usize;
        for (dsts, range) in &segments {
            prop_assert!(range.start >= prev_end);
            prop_assert!(range.end <= local_len);
            prop_assert!(range.start < range.end);
            prop_assert!(!dsts.is_empty());
            prev_end = range.end;
        }

        // Per-index cross-check against the naive definition.
        for i in 0..local_len {
            let gi = local_start + i as u64;
            let mut want: Vec<NodeId> = recipients
                .iter()
                .filter(|(_, r)| r.contains(&gi))
                .map(|&(v, _)| v)
                .collect();
            want.sort_unstable();
            want.dedup();
            let got: Vec<NodeId> = segments
                .iter()
                .find(|(_, r)| r.contains(&i))
                .map(|(d, _)| {
                    let mut d = d.clone();
                    d.sort_unstable();
                    d.dedup();
                    d
                })
                .unwrap_or_default();
            prop_assert_eq!(got, want, "index {}", i);
        }
    }

    /// The convergecast schedule funnels every compute node's partial to
    /// the target: following the moves level by level, all mass ends at
    /// the target, and no node sends twice.
    #[test]
    fn combining_schedule_funnels_everything_to_target(
        topo_seed in 0u64..300,
        weights_seed in 0u64..300,
        target_pick in 0usize..32,
    ) {
        let tree = builders::random_tree(
            2 + (topo_seed % 7) as usize,
            1 + (topo_seed % 4) as usize,
            0.5,
            4.0,
            topo_seed,
        );
        let target = tree.compute_nodes()[target_pick % tree.num_compute()];
        let weights: Vec<u64> = (0..tree.num_nodes())
            .map(|i| {
                let v = NodeId(i as u32);
                if tree.is_compute(v) {
                    mix64(weights_seed ^ i as u64) % 100
                } else {
                    0
                }
            })
            .collect();
        let schedule = combining_schedule(&tree, &weights, target);

        // Simulate token flow: every compute node starts with one token.
        let mut holder: Vec<u64> = (0..tree.num_nodes())
            .map(|i| u64::from(tree.is_compute(NodeId(i as u32))))
            .collect();
        let mut sent = vec![false; tree.num_nodes()];
        for level in &schedule {
            for &(src, dst) in level {
                prop_assert!(!sent[src.index()], "node {src} sends twice");
                prop_assert!(holder[src.index()] > 0, "node {src} sends without tokens");
                sent[src.index()] = true;
                holder[dst.index()] += holder[src.index()];
                holder[src.index()] = 0;
            }
        }
        prop_assert_eq!(
            holder[target.index()],
            tree.num_compute() as u64,
            "not all partials reached the target"
        );
        // Bounded rounds: at most one level per BFS depth.
        prop_assert!(schedule.len() <= tree.num_nodes());
    }

    /// Perturbation at any spread preserves structure and per-edge bounds.
    #[test]
    fn perturbation_is_bounded_and_deterministic(
        topo_seed in 0u64..200,
        spread_milli in 1000u64..8000,
        seed in 0u64..1000,
    ) {
        let tree = builders::random_tree(4, 3, 0.5, 4.0, topo_seed);
        let spread = spread_milli as f64 / 1000.0;
        let a = perturb_bandwidths(&tree, spread, seed);
        let b = perturb_bandwidths(&tree, spread, seed);
        for e in tree.edges() {
            prop_assert_eq!(a.sym_bandwidth(e), b.sym_bandwidth(e));
            let ratio = a.sym_bandwidth(e).get() / tree.sym_bandwidth(e).get();
            prop_assert!(ratio >= 1.0 / spread - 1e-9 && ratio <= spread + 1e-9);
        }
    }

    /// The unequal-size chooser's analytic costs match the meter exactly,
    /// on arbitrary trees and placements.
    #[test]
    fn unequal_analytic_costs_match_meter(
        topo_seed in 0u64..150,
        r in 1u64..80,
        s in 1u64..200,
        data_seed in 0u64..500,
    ) {
        let tree = builders::random_tree(
            3 + (topo_seed % 5) as usize,
            1 + (topo_seed % 3) as usize,
            0.5,
            4.0,
            topo_seed,
        );
        let mut p = Placement::empty(&tree);
        let vc = tree.compute_nodes();
        for a in 0..r {
            p.push(vc[(mix64(a ^ data_seed) % vc.len() as u64) as usize], Rel::R, a);
        }
        for a in 0..s {
            p.push(
                vc[(mix64(a ^ data_seed ^ 0x5) % vc.len() as u64) as usize],
                Rel::S,
                10_000 + a,
            );
        }
        let stats = p.stats();
        let heaviest = vc.iter().copied().max_by_key(|&v| stats.n_v(v)).unwrap();

        let predicted = cost_all_to_node(&tree, &stats, heaviest);
        let measured = run_protocol(
            &tree,
            &p,
            &UnequalTreeCartesianProduct::with_strategy(UnequalTreeStrategy::AllToNode),
        )
        .unwrap()
        .cost
        .tuple_cost();
        prop_assert!((predicted - measured).abs() < 1e-9, "{} vs {}", predicted, measured);

        let predicted = cost_broadcast_small(&tree, &stats);
        let measured = run_protocol(
            &tree,
            &p,
            &UnequalTreeCartesianProduct::with_strategy(UnequalTreeStrategy::BroadcastSmall),
        )
        .unwrap()
        .cost
        .tuple_cost();
        prop_assert!((predicted - measured).abs() < 1e-9, "{} vs {}", predicted, measured);

        // And the auto protocol always respects the lower bound sanity
        // direction (cost can undercut Ω constants but not by 10×).
        let auto = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new())
            .unwrap()
            .cost
            .tuple_cost();
        let lb = unequal_tree_lower_bound(&tree, &stats).value();
        prop_assert!(auto >= lb / 10.0 - 1e-9);
    }
}
