//! Unequal-size cartesian product on general symmetric trees — the open
//! problem of §4.5 ("Extending our current result to the general
//! symmetric tree topology is left as future work"), implemented as a
//! best-of-three heuristic in the spirit of Algorithm 8's star strategy
//! menu:
//!
//! 1. **AllToNode** — when one node already holds more than half the
//!    data, ship everything there (optimal by the Theorem 3 argument,
//!    same as the equal case);
//! 2. **BroadcastSmall** — when `|small| · |V_C| ≤ |big|`, replicate the
//!    small relation to every compute node and leave the big one in
//!    place: node `v` covers `small × big_v`, for per-edge traffic
//!    `≤ |small|` — the `V_β` move of Algorithms 1 and 8;
//! 3. **PaddedSquares** — otherwise, run the §4.4 square plan on the
//!    virtual `max(|R|,|S|)²` grid (the smaller relation padded with
//!    phantom indices that are never actually sent): coverage of the real
//!    `|R| × |S|` sub-grid follows from Theorem 5's coverage of the
//!    padded grid.
//!
//! No matching tree lower bound is known for the middle regimes — that is
//! precisely why the paper leaves this open. The experiment reports the
//! measured ratio against the (valid but possibly loose) Theorem-8-style
//! per-edge bound `max_e min{N⁻, N⁺, |R|} / w_e`.

use tamp_simulator::{PlacementStats, Protocol, Rel, Session, SimError};
use tamp_topology::{CutWeights, NodeId, Tree};

use crate::ratio::LowerBound;

use super::grid::{distribute_intervals, Labels};
use super::star::all_to_node;
use super::tree::{plan_tree_packing, TreePlan};

/// The strategy menu for unequal sizes on trees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnequalTreeStrategy {
    /// Ship everything to one (data-heaviest) compute node.
    AllToNode,
    /// Replicate the smaller relation everywhere; the big one stays put.
    BroadcastSmall,
    /// Equal-case square packing on the padded square grid.
    PaddedSquares,
}

/// Exact tuple cost of shipping all data to node `target` in one round:
/// the edge direction toward `target` carries everything on its far side.
pub fn cost_all_to_node(tree: &Tree, stats: &PlacementStats, target: NodeId) -> f64 {
    let cuts = CutWeights::compute(tree, &stats.n);
    let mut cost = 0.0f64;
    for e in tree.edges() {
        let far = cuts.total() - cuts.side_containing(tree, e, target);
        if far == 0 {
            continue;
        }
        // Direction toward target = from the far endpoint's side.
        let (u, v) = tree.endpoints(e);
        let toward = if tree.cut_side_of(e, u) == tree.cut_side_of(e, target) {
            tree.dir_edge_between(v, u)
        } else {
            tree.dir_edge_between(u, v)
        }
        .expect("endpoints are adjacent");
        let w = tree.bandwidth(toward);
        if !w.is_infinite() {
            cost = cost.max(far as f64 / w.get());
        }
    }
    cost
}

/// Exact tuple cost of broadcasting the smaller relation to every compute
/// node in one round: directed edge `a → b` carries every small tuple held
/// on `a`'s side.
pub fn cost_broadcast_small(tree: &Tree, stats: &PlacementStats) -> f64 {
    let small = if stats.total_r <= stats.total_s {
        Rel::R
    } else {
        Rel::S
    };
    let weights: Vec<u64> = (0..tree.num_nodes())
        .map(|i| {
            let v = NodeId(i as u32);
            if tree.is_compute(v) {
                match small {
                    Rel::R => stats.r_v(v),
                    Rel::S => stats.s_v(v),
                }
            } else {
                0
            }
        })
        .collect();
    let cuts = CutWeights::compute(tree, &weights);
    // A multicast only crosses an edge when a compute node sits beyond it.
    let compute_mask: Vec<u64> = (0..tree.num_nodes())
        .map(|i| u64::from(tree.is_compute(NodeId(i as u32))))
        .collect();
    let compute_cuts = CutWeights::compute(tree, &compute_mask);
    let mut cost = 0.0f64;
    for d in tree.dir_edges() {
        let (a, b) = tree.dir_endpoints(d);
        let tail_side = cuts.side_containing(tree, d.edge(), a);
        let head_computes = compute_cuts.side_containing(tree, d.edge(), b);
        let w = tree.bandwidth(d);
        if tail_side == 0 || head_computes == 0 || w.is_infinite() {
            continue;
        }
        cost = cost.max(tail_side as f64 / w.get());
    }
    cost
}

/// Lemma-6-style *estimate* of the padded-square plan's cost:
/// `max{ max_v N_v / w_v , 2·max(|R|,|S|) / √(Σ_v w_v²) }` where `w_v` is
/// each compute leaf's adjacent bandwidth. An estimate, not a guarantee —
/// used only to rank strategies.
pub fn estimate_padded_squares(tree: &Tree, stats: &PlacementStats) -> f64 {
    let mut send = 0.0f64;
    let mut sum_w2 = 0.0f64;
    for &v in tree.compute_nodes() {
        let (_, e) = tree.neighbors(v)[0];
        let w = tree.sym_bandwidth(e).get();
        if w.is_finite() {
            send = send.max(stats.n_v(v) as f64 / w);
            sum_w2 += w * w;
        } else {
            return 0.0; // infinite links: effectively free
        }
    }
    let max_side = stats.total_r.max(stats.total_s) as f64;
    send.max(2.0 * max_side / sum_w2.sqrt())
}

/// Pick a strategy by comparing analytic costs: the heavy-node rule first
/// (provably best by the Theorem 3 argument), then the cheaper of the
/// exact broadcast cost and the padded-square estimate.
pub fn choose_strategy(tree: &Tree, stats: &PlacementStats) -> (UnequalTreeStrategy, NodeId) {
    let n = stats.total_n();
    let heaviest = tree
        .compute_nodes()
        .iter()
        .copied()
        .max_by_key(|&v| stats.n_v(v))
        .expect("tree has compute nodes");
    if 2 * stats.n_v(heaviest) > n {
        return (UnequalTreeStrategy::AllToNode, heaviest);
    }
    let broadcast = cost_broadcast_small(tree, stats);
    let padded = estimate_padded_squares(tree, stats);
    let all_to = cost_all_to_node(tree, stats, heaviest);
    if broadcast <= padded && broadcast <= all_to {
        (UnequalTreeStrategy::BroadcastSmall, heaviest)
    } else if all_to < padded {
        (UnequalTreeStrategy::AllToNode, heaviest)
    } else {
        (UnequalTreeStrategy::PaddedSquares, heaviest)
    }
}

/// Theorem-8-style per-edge lower bound for the unequal case on trees:
/// `max_e min{N⁻, N⁺, min(|R|,|S|)} / w_e`.
pub fn unequal_tree_lower_bound(tree: &Tree, stats: &PlacementStats) -> LowerBound {
    let small = stats.total_r.min(stats.total_s);
    let cuts = CutWeights::compute(tree, &stats.n);
    let mut best = LowerBound::zero();
    for e in tree.edges() {
        let m = cuts.min_side(e).min(small);
        let w = tree.sym_bandwidth(e);
        if m == 0 || w.is_infinite() {
            continue;
        }
        best = best.max(LowerBound::new(m as f64 / w.get(), Some(e)));
    }
    best
}

/// One-round cartesian product for `|R| ≠ |S|` on arbitrary symmetric
/// trees. Returns the strategy it picked.
#[derive(Clone, Debug, Default)]
pub struct UnequalTreeCartesianProduct {
    /// Force a strategy instead of the case analysis (for ablations).
    force: Option<UnequalTreeStrategy>,
}

impl UnequalTreeCartesianProduct {
    /// Create with automatic strategy selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Force one strategy (ablation / experiment use).
    pub fn with_strategy(strategy: UnequalTreeStrategy) -> Self {
        UnequalTreeCartesianProduct {
            force: Some(strategy),
        }
    }
}

impl Protocol for UnequalTreeCartesianProduct {
    type Output = UnequalTreeStrategy;

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        tree.require_symmetric()
            .map_err(|e| SimError::Protocol(e.to_string()))?;
        let stats = session.stats().clone();
        if stats.total_r == 0 || stats.total_s == 0 {
            return Ok(UnequalTreeStrategy::BroadcastSmall); // nothing to do
        }
        let (auto, heaviest) = choose_strategy(tree, &stats);
        let strategy = self.force.unwrap_or(auto);
        match strategy {
            UnequalTreeStrategy::AllToNode => {
                all_to_node(session, heaviest)?;
            }
            UnequalTreeStrategy::BroadcastSmall => {
                let small = if stats.total_r <= stats.total_s {
                    Rel::R
                } else {
                    Rel::S
                };
                let all: Vec<NodeId> = tree.compute_nodes().to_vec();
                session.round(|round| {
                    for &v in &all {
                        let vals = round.state(v).rel(small).clone();
                        round.send(v, &all, small, &vals)?;
                    }
                    Ok(())
                })?;
            }
            UnequalTreeStrategy::PaddedSquares => {
                // Square plan on the padded max² grid. The padding is
                // virtual: only real tuples are sent, but square sides are
                // computed as if both relations had `max` elements, so the
                // placed squares cover [0, max)² ⊇ [0,|R|) × [0,|S|).
                let max_side = stats.total_r.max(stats.total_s);
                let plan = plan_tree_packing(tree, &stats.n, 2 * max_side);
                match plan {
                    TreePlan::AllToRoot(target) => all_to_node(session, target)?,
                    TreePlan::Packed { root, squares, .. } => {
                        let labels = Labels::new(tree, &stats);
                        let r_recipients: Vec<(NodeId, std::ops::Range<u64>)> = squares
                            .iter()
                            .map(|sq| (sq.owner, sq.x..sq.x + sq.side))
                            .collect();
                        let s_recipients: Vec<(NodeId, std::ops::Range<u64>)> = squares
                            .iter()
                            .map(|sq| (sq.owner, sq.y..sq.y + sq.side))
                            .collect();
                        let computes: Vec<NodeId> = tree.compute_nodes().to_vec();
                        session.round(|round| {
                            for &v in &computes {
                                let r_vals = round.state(v).r.clone();
                                let r_start = labels.range(v, Rel::R, &stats).start;
                                distribute_intervals(
                                    round,
                                    v,
                                    Rel::R,
                                    &r_vals,
                                    r_start,
                                    &r_recipients,
                                    Some(root),
                                )?;
                                let s_vals = round.state(v).s.clone();
                                let s_start = labels.range(v, Rel::S, &stats).start;
                                distribute_intervals(
                                    round,
                                    v,
                                    Rel::S,
                                    &s_vals,
                                    s_start,
                                    &s_recipients,
                                    Some(root),
                                )?;
                            }
                            Ok(())
                        })?;
                    }
                }
            }
        }
        Ok(strategy)
    }

    fn name(&self) -> String {
        match self.force {
            Some(s) => format!("unequal-tree-cartesian({s:?})"),
            None => "unequal-tree-cartesian(auto)".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::mix64;
    use crate::ratio::ratio;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn unequal_placement(tree: &Tree, r: u64, s: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..r {
            let v = vc[(mix64(a ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, a);
        }
        for a in 0..s {
            let v = vc[(mix64(a ^ seed ^ 0xBEEF) % vc.len() as u64) as usize];
            p.push(v, Rel::S, 1_000_000 + a);
        }
        p
    }

    fn check(tree: &Tree, p: &Placement, proto: &UnequalTreeCartesianProduct) {
        let run = run_protocol(tree, p, proto).unwrap();
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s())
            .unwrap_or_else(|e| panic!("{}: {e}", run.name));
        assert_eq!(run.rounds, 1);
    }

    #[test]
    fn covers_all_pairs_across_ratios_and_trees() {
        for (r, s) in [(10u64, 640u64), (40, 160), (80, 120), (120, 80)] {
            for seed in 0..4u64 {
                let tree = builders::random_tree(5, 3, 0.5, 4.0, seed);
                let p = unequal_placement(&tree, r, s, seed);
                check(&tree, &p, &UnequalTreeCartesianProduct::new());
            }
        }
    }

    #[test]
    fn every_forced_strategy_is_correct() {
        let tree = builders::rack_tree(&[(3, 2.0, 4.0), (3, 1.0, 2.0)], 1.0);
        let p = unequal_placement(&tree, 30, 240, 7);
        for s in [
            UnequalTreeStrategy::AllToNode,
            UnequalTreeStrategy::BroadcastSmall,
            UnequalTreeStrategy::PaddedSquares,
        ] {
            check(&tree, &p, &UnequalTreeCartesianProduct::with_strategy(s));
        }
    }

    #[test]
    fn heavy_node_case_picks_all_to_node() {
        let tree = builders::star(4, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), (0..300).collect());
        p.set_s(NodeId(0), (1_000..1_100).collect());
        p.set_s(NodeId(1), (2_000..2_050).collect());
        let run = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new()).unwrap();
        assert_eq!(run.output, UnequalTreeStrategy::AllToNode);
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn very_lopsided_sizes_pick_broadcast() {
        let tree = builders::star(6, 1.0);
        let p = unequal_placement(&tree, 10, 600, 1);
        let run = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new()).unwrap();
        assert_eq!(run.output, UnequalTreeStrategy::BroadcastSmall);
        // Broadcast traffic per edge is bounded by |R| (+ the sender's own
        // fragment crossing its uplink once), so the cost is ≈ |R| per
        // unit bandwidth.
        assert!(run.cost.tuple_cost() <= 2.0 * 10.0 + 1e-9);
    }

    #[test]
    fn analytic_costs_match_measured_costs() {
        // The strategy chooser's analytic formulas must agree with what
        // the meter actually charges.
        let tree = builders::rack_tree(&[(3, 2.0, 4.0), (2, 1.0, 2.0)], 1.0);
        let p = unequal_placement(&tree, 100, 250, 2);
        let stats = p.stats();
        let heaviest = tree
            .compute_nodes()
            .iter()
            .copied()
            .max_by_key(|&v| stats.n_v(v))
            .unwrap();
        let predicted = cost_all_to_node(&tree, &stats, heaviest);
        let measured = run_protocol(
            &tree,
            &p,
            &UnequalTreeCartesianProduct::with_strategy(UnequalTreeStrategy::AllToNode),
        )
        .unwrap()
        .cost
        .tuple_cost();
        assert!(
            (predicted - measured).abs() < 1e-9,
            "{predicted} vs {measured}"
        );

        let predicted = cost_broadcast_small(&tree, &stats);
        let measured = run_protocol(
            &tree,
            &p,
            &UnequalTreeCartesianProduct::with_strategy(UnequalTreeStrategy::BroadcastSmall),
        )
        .unwrap()
        .cost
        .tuple_cost();
        assert!(
            (predicted - measured).abs() < 1e-9,
            "{predicted} vs {measured}"
        );
    }

    #[test]
    fn auto_is_never_much_worse_than_best_forced() {
        for (r, s, seed) in [(20u64, 500u64, 3u64), (100, 300, 4), (150, 200, 5)] {
            let tree = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0);
            let p = unequal_placement(&tree, r, s, seed);
            let auto = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new())
                .unwrap()
                .cost
                .tuple_cost();
            let best = [
                UnequalTreeStrategy::AllToNode,
                UnequalTreeStrategy::BroadcastSmall,
                UnequalTreeStrategy::PaddedSquares,
            ]
            .into_iter()
            .map(|st| {
                run_protocol(&tree, &p, &UnequalTreeCartesianProduct::with_strategy(st))
                    .unwrap()
                    .cost
                    .tuple_cost()
            })
            .fold(f64::INFINITY, f64::min);
            assert!(
                auto <= 4.0 * best + 1e-9,
                "r={r} s={s}: auto {auto} vs best {best}"
            );
        }
    }

    #[test]
    fn cost_respects_lower_bound() {
        for seed in 0..6u64 {
            let tree = builders::random_tree(6, 3, 0.5, 4.0, seed);
            let p = unequal_placement(&tree, 50, 350, seed);
            let run = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new()).unwrap();
            let lb = unequal_tree_lower_bound(&tree, &p.stats());
            let rat = ratio(run.cost.tuple_cost(), lb.value());
            assert!(rat >= 0.4, "seed {seed}: impossible ratio {rat}");
        }
    }

    #[test]
    fn empty_relation_is_free() {
        let tree = builders::star(3, 1.0);
        let mut p = Placement::empty(&tree);
        p.set_r(NodeId(0), (0..50).collect());
        let run = run_protocol(&tree, &p, &UnequalTreeCartesianProduct::new()).unwrap();
        assert_eq!(run.cost.tuple_cost(), 0.0);
    }
}
