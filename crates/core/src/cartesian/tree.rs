//! The §4.4 cartesian-product protocol on symmetric trees.
//!
//! All traffic routes through the root `r` of `G†`. Square sides come from
//! Algorithm 5 (`BalancedPackingTree`): a bottom-up pass computes
//! `w̃_v = min{w_v, √(Σ_{u∈ζ(v)} w̃_u²)}` (the effective output capacity of
//! each subtree), a top-down pass splits the unit budget
//! `l_v = l_{p_v} · w̃_v / √(Σ_{u∈ζ(p_v)} w̃_u²)`, and each compute node
//! gets a square of side `2^k ≥ N·l_v`. Squares are packed hierarchically
//! along `G†` so a subtree's squares stay co-located, which bounds the
//! data crossing each link `(u, p_u)` by `O(N · l_u)` — matching Theorem 4
//! — while the route-through-root legs match Theorem 3.

use tamp_simulator::{Protocol, Session, SimError};
use tamp_topology::{Dagger, NodeId, Tree};

use super::lower_bound::compute_w_tilde;
use super::packing::{PlacedSquare, SquareSet};
use super::star::all_to_node;
use super::whc::{execute_square_plan, log2_ceil};

/// The plan produced by Algorithm 5 for a tree.
#[derive(Clone, Debug)]
pub enum TreePlan {
    /// The root of `G†` is a compute node: route everything to it
    /// (asymptotically optimal by Theorem 3).
    AllToRoot(NodeId),
    /// Packed square assignment routed through a router root.
    Packed {
        /// The root of `G†` (a router) used as the routing relay.
        root: NodeId,
        /// Placed squares covering the output grid.
        squares: Vec<PlacedSquare>,
        /// Per-node `l_v` (indexed by node id; meaningful on `G†` nodes).
        l: Vec<f64>,
        /// Per-node `w̃_v` (indexed by node id).
        w_tilde: Vec<f64>,
    },
}

/// Run Algorithm 5 (`BalancedPackingTree`): derive `G†`, the `w̃`/`l`
/// quantities and the hierarchically-packed square assignment.
pub fn plan_tree_packing(tree: &Tree, n_weights: &[u64], total_n: u64) -> TreePlan {
    let dagger = Dagger::build(tree, n_weights);
    let root = dagger.root();
    if tree.is_compute(root) {
        return TreePlan::AllToRoot(root);
    }
    let fertile = super::lower_bound::fertile_nodes(tree, &dagger);
    let w_tilde = compute_w_tilde(tree, &dagger);
    // Top-down l_v, splitting each node's budget among *fertile* children
    // only (barren router branches produce no output).
    let mut l = vec![0.0f64; tree.num_nodes()];
    l[root.index()] = 1.0;
    for v in dagger.pre_order() {
        let kids: Vec<_> = dagger
            .children(v)
            .iter()
            .copied()
            .filter(|&u| fertile[u.index()])
            .collect();
        let denom: f64 = kids
            .iter()
            .map(|&u| w_tilde[u.index()] * w_tilde[u.index()])
            .sum::<f64>()
            .sqrt();
        if denom <= 0.0 {
            continue;
        }
        for &u in &kids {
            l[u.index()] = l[v.index()] * w_tilde[u.index()] / denom;
        }
    }
    // Bottom-up hierarchical packing along G†.
    let max_level = log2_ceil(total_n.max(1) + 1);
    let mut sets: Vec<SquareSet> = (0..tree.num_nodes()).map(|_| SquareSet::new()).collect();
    for v in dagger.post_order() {
        let mut set = SquareSet::new();
        for &u in dagger.children(v) {
            set.merge(std::mem::take(&mut sets[u.index()]));
        }
        if tree.is_compute(v) {
            let target = (total_n as f64 * l[v.index()]).ceil().max(1.0);
            let level = log2_ceil(target.min(u64::MAX as f64) as u64).min(max_level);
            set.merge(SquareSet::singleton(v, level));
        }
        sets[v.index()] = set;
    }
    let squares = std::mem::take(&mut sets[root.index()]).place();
    TreePlan::Packed {
        root,
        squares,
        l,
        w_tilde,
    }
}

/// One-round deterministic cartesian product on symmetric trees (§4.4,
/// Theorem 5). Requires `|R| = |S|` and every compute node a leaf.
/// Returns the plan used.
#[derive(Clone, Debug, Default)]
pub struct TreeCartesianProduct {
    /// Plan against this topology instead of the execution topology.
    /// Same structure, possibly different bandwidths — models planning
    /// with stale or imprecise bandwidth measurements (the §3.3 remark:
    /// unlike intersection and sorting, wHC's square sides *do* depend on
    /// bandwidths, so stale inputs degrade it).
    planning_tree: Option<Tree>,
}

impl TreeCartesianProduct {
    /// Create the protocol (plans against the execution topology).
    pub fn new() -> Self {
        TreeCartesianProduct::default()
    }

    /// Plan against `stale` (must share the execution tree's structure —
    /// same nodes and edges; only bandwidths may differ).
    pub fn with_planning_tree(stale: Tree) -> Self {
        TreeCartesianProduct {
            planning_tree: Some(stale),
        }
    }
}

impl Protocol for TreeCartesianProduct {
    type Output = TreePlan;

    fn name(&self) -> String {
        "tree-cartesian-product".into()
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        tree.require_symmetric()
            .map_err(|e| SimError::Protocol(e.to_string()))?;
        if !tree.compute_nodes_are_leaves() {
            return Err(SimError::Protocol(
                "TreeCartesianProduct requires compute nodes to be leaves (normalize first)".into(),
            ));
        }
        let stats = session.stats().clone();
        if stats.total_r != stats.total_s {
            return Err(SimError::Protocol(format!(
                "tree cartesian product requires |R| = |S| (got {} and {})",
                stats.total_r, stats.total_s
            )));
        }
        if stats.total_r == 0 {
            return Ok(TreePlan::AllToRoot(tree.compute_nodes()[0]));
        }
        let planning_tree = self.planning_tree.as_ref().unwrap_or(tree);
        if planning_tree.num_nodes() != tree.num_nodes()
            || planning_tree.num_edges() != tree.num_edges()
        {
            return Err(SimError::Protocol(
                "planning tree must share the execution tree's structure".into(),
            ));
        }
        let plan = plan_tree_packing(planning_tree, &stats.n, stats.total_n());
        match &plan {
            TreePlan::AllToRoot(target) => all_to_node(session, *target)?,
            TreePlan::Packed { root, squares, .. } => {
                execute_square_plan(session, squares, Some(*root))?;
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartesian::{cartesian_lower_bound, packing::check_covers_grid};
    use crate::ratio::ratio;
    use tamp_simulator::{run_protocol, verify, Placement, Rel};
    use tamp_topology::builders;

    fn equal_placement(tree: &Tree, half: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..half {
            let v = vc[(crate::hashing::mix64(a ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, a);
            let u = vc[(crate::hashing::mix64(a ^ seed ^ 0xF00D) % vc.len() as u64) as usize];
            p.push(u, Rel::S, 1_000_000 + a);
        }
        p
    }

    #[test]
    fn plan_covers_grid_on_rack_tree() {
        let t = builders::rack_tree(&[(3, 2.0, 4.0), (3, 1.0, 2.0)], 1.0);
        let mut n = vec![0u64; t.num_nodes()];
        for &v in t.compute_nodes() {
            n[v.index()] = 10;
        }
        match plan_tree_packing(&t, &n, 60) {
            TreePlan::Packed { squares, l, .. } => {
                check_covers_grid(&squares, 30, 30).unwrap();
                // Budget splits sum to 1 across compute nodes: Σ l_v² = 1
                // (Lemma 8, property 4 at the root).
                let sum: f64 = t
                    .compute_nodes()
                    .iter()
                    .map(|&v| l[v.index()] * l[v.index()])
                    .sum();
                assert!((sum - 1.0).abs() < 1e-9, "Σ l² = {sum}");
            }
            TreePlan::AllToRoot(_) => panic!("uniform data should not root at a compute node"),
        }
    }

    #[test]
    fn covers_all_pairs_on_trees() {
        for seed in 0..8u64 {
            let t = builders::random_tree(6, 4, 0.5, 8.0, seed);
            let p = equal_placement(&t, 48, seed);
            let run = run_protocol(&t, &p, &TreeCartesianProduct::new()).unwrap();
            assert_eq!(run.rounds, 1);
            verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn heavy_node_routes_all_to_root() {
        let t = builders::rack_tree(&[(2, 1.0, 2.0), (2, 1.0, 2.0)], 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        p.set_r(vc[0], (0..40).collect());
        p.set_s(vc[0], (100..130).collect());
        p.set_s(vc[3], (130..140).collect());
        let run = run_protocol(&t, &p, &TreeCartesianProduct::new()).unwrap();
        assert!(matches!(run.output, TreePlan::AllToRoot(v) if v == vc[0]));
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn constant_factor_optimal_on_fat_tree() {
        let t = builders::fat_tree(2, 3, 1.0);
        let p = equal_placement(&t, 90, 4);
        let run = run_protocol(&t, &p, &TreeCartesianProduct::new()).unwrap();
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        let lb = cartesian_lower_bound(&t, &p.stats());
        let rat = ratio(run.cost.tuple_cost(), lb.value());
        // Theorem 5: O(1) from optimal; the constant absorbs the power-of-2
        // rounding (≤2×), the two routing legs (≤2×) and clipping slack.
        assert!(rat.is_finite() && rat <= 24.0, "ratio {rat}");
    }

    #[test]
    fn empty_input_is_free() {
        let t = builders::star(3, 1.0);
        let p = Placement::empty(&t);
        let run = run_protocol(&t, &p, &TreeCartesianProduct::new()).unwrap();
        assert_eq!(run.cost.tuple_cost(), 0.0);
    }
}
