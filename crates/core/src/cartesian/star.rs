//! Algorithm 4: cartesian product on a symmetric star.
//!
//! If some node already holds more than half the data, routing everything
//! to it matches the Theorem 3 bound within a factor of two; otherwise the
//! weighted HyperCube is optimal (Lemma 7).

use tamp_simulator::{Protocol, Rel, Session, SimError};
use tamp_topology::NodeId;

use super::whc::{plan_whc, WeightedHyperCube};

/// One-round deterministic cartesian product on symmetric stars
/// (Algorithm 4). Requires `|R| = |S|`.
#[derive(Clone, Debug, Default)]
pub struct StarCartesianProduct;

impl StarCartesianProduct {
    /// Create the protocol.
    pub fn new() -> Self {
        StarCartesianProduct
    }
}

impl Protocol for StarCartesianProduct {
    type Output = ();

    fn name(&self) -> String {
        "star-cartesian-product".into()
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        if tree.num_nodes() != tree.num_compute() + 1 || !tree.compute_nodes_are_leaves() {
            return Err(SimError::Protocol(
                "StarCartesianProduct requires a star topology".into(),
            ));
        }
        let stats = session.stats().clone();
        let n_total = stats.total_n();
        let heavy = tree
            .compute_nodes()
            .iter()
            .copied()
            .max_by_key(|&v| (stats.n_v(v), std::cmp::Reverse(v.index())))
            .expect("star has compute nodes");
        if stats.n_v(heavy) * 2 > n_total {
            all_to_node(session, heavy)
        } else {
            let _plan = plan_whc(tree, n_total, None);
            WeightedHyperCube::new().run(session).map(|_| ())
        }
    }
}

/// Route every node's full local data to `target` in one round.
pub(crate) fn all_to_node(session: &mut Session<'_>, target: NodeId) -> Result<(), SimError> {
    session.round(|round| {
        let computes: Vec<NodeId> = round.tree().compute_nodes().to_vec();
        for v in computes {
            if v == target {
                continue;
            }
            let r = round.state(v).r.clone();
            round.send(v, &[target], Rel::R, &r)?;
            let s = round.state(v).s.clone();
            round.send(v, &[target], Rel::S, &s)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartesian::cartesian_lower_bound;
    use crate::ratio::ratio;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    #[test]
    fn heavy_node_shortcut() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..50).collect());
        p.set_s(NodeId(0), (100..130).collect());
        p.set_s(NodeId(1), (130..150).collect());
        let run = run_protocol(&t, &p, &StarCartesianProduct::new()).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        // Cost: node 1 ships its 20 tuples; node 0 receives them.
        assert_eq!(run.cost.tuple_cost(), 20.0);
        let lb = cartesian_lower_bound(&t, &p.stats());
        assert!(ratio(run.cost.tuple_cost(), lb.value()) <= 2.0);
    }

    #[test]
    fn balanced_case_uses_whc() {
        let t = builders::heterogeneous_star(&[1.0, 2.0, 4.0, 4.0]);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        for a in 0..40u64 {
            p.push(vc[(a % 4) as usize], Rel::R, a);
            p.push(vc[((a + 1) % 4) as usize], Rel::S, 1000 + a);
        }
        let run = run_protocol(&t, &p, &StarCartesianProduct::new()).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        // Lemma 7: O(1)-optimal. Constant here is generous but finite.
        let lb = cartesian_lower_bound(&t, &p.stats());
        let rat = ratio(run.cost.tuple_cost(), lb.value());
        assert!(rat <= 8.0, "ratio {rat}");
    }
}
