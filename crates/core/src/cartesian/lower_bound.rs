//! Theorems 3 and 4: cartesian-product lower bounds on symmetric trees.

use tamp_simulator::PlacementStats;
use tamp_topology::{CutWeights, Dagger, Tree};

use crate::ratio::LowerBound;

/// Theorem 3 (cut bound):
/// `C_LB = max_e (1/w_e) · min{Σ_{v∈V⁻_e} N_v, Σ_{v∈V⁺_e} N_v}`, in tuples.
///
/// If fewer than `min{…}` tuples cross a cut, some `R`-element never leaves
/// its side, forcing all of `S` to visit it — either way the cut carries
/// the min side.
pub fn cartesian_lower_bound_cut(tree: &Tree, stats: &PlacementStats) -> LowerBound {
    tree.require_symmetric()
        .expect("Theorem 3 requires a symmetric tree");
    let cuts = CutWeights::compute(tree, &stats.n);
    let mut best = LowerBound::zero();
    for e in tree.edges() {
        let value = tree.sym_bandwidth(e).cost_of(cuts.min_side(e) as f64);
        if value > best.value() {
            best = LowerBound::new(value, Some(e));
        }
    }
    best
}

/// Theorem 4 (counting bound): `C_LB = N / √(Σ_{v∈U} w_v²)` for the best
/// minimal cover `U ≠ {r}` of `G†`.
///
/// The best cover is found by the `w̃` recursion of Algorithm 5
/// (`w̃_v = min{w_v, √(Σ_{u∈ζ(v)} w̃_u²)}`), which computes exactly
/// `min_U √(Σ_{v∈U} w_v²)` over covers of each subtree; hence
/// `C_LB = N / w̃_r`. Returns `None` when the root of `G†` is a compute
/// node (then routing everything to the root is already optimal by
/// Theorem 3 and the counting bound is not needed).
pub fn cartesian_lower_bound_cover(tree: &Tree, stats: &PlacementStats) -> Option<LowerBound> {
    tree.require_symmetric()
        .expect("Theorem 4 requires a symmetric tree");
    let dagger = Dagger::build(tree, &stats.n);
    if tree.is_compute(dagger.root()) {
        return None;
    }
    let w_tilde = compute_w_tilde(tree, &dagger);
    let n_total = stats.total_n() as f64;
    let wr = w_tilde[dagger.root().index()];
    if wr <= 0.0 || !wr.is_finite() {
        return None;
    }
    Some(LowerBound::new(n_total / wr, None))
}

/// The pointwise max of Theorems 3 and 4.
pub fn cartesian_lower_bound(tree: &Tree, stats: &PlacementStats) -> LowerBound {
    let cut = cartesian_lower_bound_cut(tree, stats);
    match cartesian_lower_bound_cover(tree, stats) {
        Some(cover) => cut.max(cover),
        None => cut,
    }
}

/// Which `G†` nodes have a compute node in their subtree. Barren (router
/// only) branches produce no output, so they are excluded from the `w̃`
/// recursion and from the packing budget — the paper's w.l.o.g. "every
/// leaf is a compute node" makes every branch fertile, but we support
/// arbitrary trees.
pub(crate) fn fertile_nodes(tree: &Tree, dagger: &Dagger) -> Vec<bool> {
    let mut fertile = vec![false; tree.num_nodes()];
    for v in dagger.post_order() {
        fertile[v.index()] =
            tree.is_compute(v) || dagger.children(v).iter().any(|&u| fertile[u.index()]);
    }
    fertile
}

/// The `w̃` recursion of Algorithm 5 over `G†` (indexed by node id),
/// restricted to fertile branches.
pub(crate) fn compute_w_tilde(tree: &Tree, dagger: &Dagger) -> Vec<f64> {
    let fertile = fertile_nodes(tree, dagger);
    let mut w_tilde = vec![0.0f64; tree.num_nodes()];
    for v in dagger.post_order() {
        if !fertile[v.index()] {
            continue;
        }
        let kids: Vec<_> = dagger
            .children(v)
            .iter()
            .copied()
            .filter(|&u| fertile[u.index()])
            .collect();
        if kids.is_empty() {
            w_tilde[v.index()] = dagger.out_bandwidth(tree, v).map_or(0.0, |b| b.get());
        } else {
            let sub: f64 = kids
                .iter()
                .map(|&u| w_tilde[u.index()] * w_tilde[u.index()])
                .sum::<f64>()
                .sqrt();
            w_tilde[v.index()] = match dagger.out_bandwidth(tree, v) {
                Some(w) => w.get().min(sub),
                None => sub, // the root takes √(Σ ζ(r) w̃²)
            };
        }
    }
    w_tilde
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{Placement, Rel};
    use tamp_topology::{builders, NodeId};

    fn uniform_star_placement(p: usize, per_node: u64) -> (Tree, Placement) {
        let t = builders::star(p, 1.0);
        let mut pl = Placement::empty(&t);
        let mut next = 0u64;
        for &v in t.compute_nodes() {
            for _ in 0..per_node / 2 {
                pl.push(v, Rel::R, next);
                next += 1;
            }
            for _ in 0..per_node / 2 {
                pl.push(v, Rel::S, 1_000_000 + next);
                next += 1;
            }
        }
        (t, pl)
    }

    #[test]
    fn cut_bound_on_uniform_star() {
        let (t, pl) = uniform_star_placement(4, 10);
        let lb = cartesian_lower_bound_cut(&t, &pl.stats());
        // Every leaf cut is min{10, 30} = 10 over bw 1.
        assert_eq!(lb.value(), 10.0);
    }

    #[test]
    fn cover_bound_on_uniform_star() {
        let (t, pl) = uniform_star_placement(4, 10);
        // G† root is the hub (router); U = the 4 leaves, each w = 1:
        // LB = N / √4 = 40 / 2 = 20.
        let lb = cartesian_lower_bound_cover(&t, &pl.stats()).unwrap();
        assert!((lb.value() - 20.0).abs() < 1e-9);
        // Combined takes the max.
        assert_eq!(cartesian_lower_bound(&t, &pl.stats()).value(), 20.0);
    }

    #[test]
    fn cover_bound_none_when_root_is_compute() {
        let t = builders::star(3, 1.0);
        let mut pl = Placement::empty(&t);
        pl.set_r(NodeId(0), (0..80).collect());
        pl.set_s(NodeId(0), (100..180).collect());
        pl.set_s(NodeId(1), (200..210).collect());
        // Node 0 holds > N/2 ⇒ it is the root of G†.
        assert!(cartesian_lower_bound_cover(&t, &pl.stats()).is_none());
        assert!(cartesian_lower_bound(&t, &pl.stats()).value() > 0.0);
    }

    #[test]
    fn w_tilde_caps_at_uplink() {
        // Rack tree with thin uplinks: w̃ of a rack router is capped by its
        // uplink, so the best cover uses the uplinks, not the leaves.
        // (Three racks so that every rack side is strictly light and the
        // core router is the root of G†.)
        let t = builders::rack_tree(&[(4, 10.0, 1.0), (4, 10.0, 1.0), (4, 10.0, 1.0)], 1.0);
        let mut pl = Placement::empty(&t);
        for &v in t.compute_nodes() {
            pl.set_r(v, vec![v.index() as u64]);
            pl.set_s(v, vec![100 + v.index() as u64]);
        }
        let stats = pl.stats();
        let dagger = Dagger::build(&t, &stats.n);
        assert!(!t.is_compute(dagger.root()));
        let wt = compute_w_tilde(&t, &dagger);
        // Rack router w̃ = min{1, √(4·10²)} = 1; root = √(1+1+1) = √3.
        assert!((wt[dagger.root().index()] - 3f64.sqrt()).abs() < 1e-9);
        let lb = cartesian_lower_bound_cover(&t, &stats).unwrap();
        assert!((lb.value() - 24.0 / 3f64.sqrt()).abs() < 1e-9);
    }
}
