//! Lemma 5: packing power-of-two squares without overlap.
//!
//! Any multiset of squares whose sides are powers of two can be packed so
//! that they fully cover a square of side at least `½·√(Σ dᵢ²)`. The
//! construction groups four equal squares into one of twice the side until
//! at most three of each size remain, then places recursively: the largest
//! (possibly composite) square goes to the origin quadrant — which is
//! therefore *fully covered* — up to two more of that size take two other
//! quadrants, and everything smaller recurses into the last quadrant.
//!
//! The same machinery packs *hierarchically* for the tree protocol
//! (§4.4): a [`SquareSet`] per `G†` node is merged bottom-up, so squares
//! of a subtree coalesce into composite blocks and stay co-located in the
//! final layout — that co-location is what bounds per-link traffic by
//! `O(N · l_u)`.

use std::collections::BTreeMap;

use tamp_topology::NodeId;

/// A placed square: `owner` receives `R`-rows `[x, x+side)` and `S`-columns
/// `[y, y+side)` of the output grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacedSquare {
    /// The compute node assigned this square.
    pub owner: NodeId,
    /// First `R`-row covered.
    pub x: u64,
    /// First `S`-column covered.
    pub y: u64,
    /// Side length (a power of two).
    pub side: u64,
}

#[derive(Clone, Debug)]
enum Item {
    Leaf(NodeId),
    /// Four items of the next-smaller level, packed 2×2.
    Group(Box<[Item; 4]>),
}

/// A multiset of power-of-two squares, kept collapsed: at most three
/// squares of each size (quadruples merge into composite squares of twice
/// the side).
#[derive(Clone, Debug, Default)]
pub struct SquareSet {
    /// level (log₂ side) → items of that level.
    by_level: BTreeMap<u32, Vec<Item>>,
}

impl SquareSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single square of side `2^level` owned by `owner`.
    pub fn singleton(owner: NodeId, level: u32) -> Self {
        let mut by_level = BTreeMap::new();
        by_level.insert(level, vec![Item::Leaf(owner)]);
        SquareSet { by_level }
    }

    /// `true` if no squares are present.
    pub fn is_empty(&self) -> bool {
        self.by_level.is_empty()
    }

    /// Largest level present (`i*`), if any.
    pub fn max_level(&self) -> Option<u32> {
        self.by_level.keys().next_back().copied()
    }

    /// Total area `Σ dᵢ²` of the squares.
    pub fn total_area(&self) -> u128 {
        self.by_level
            .iter()
            .map(|(&l, items)| (items.len() as u128) << (2 * l as u128))
            .sum()
    }

    /// Absorb `other`, then merge quadruples bottom-up so at most three
    /// squares of each size remain.
    pub fn merge(&mut self, other: SquareSet) {
        for (l, items) in other.by_level {
            self.by_level.entry(l).or_default().extend(items);
        }
        self.collapse();
    }

    fn collapse(&mut self) {
        let mut level = match self.by_level.keys().next() {
            Some(&l) => l,
            None => return,
        };
        loop {
            let count = self.by_level.get(&level).map_or(0, Vec::len);
            if count >= 4 {
                let items = self.by_level.get_mut(&level).expect("present");
                let d = items.pop().expect("len ≥ 4");
                let c = items.pop().expect("len ≥ 4");
                let b = items.pop().expect("len ≥ 4");
                let a = items.pop().expect("len ≥ 4");
                if items.is_empty() {
                    self.by_level.remove(&level);
                }
                self.by_level
                    .entry(level + 1)
                    .or_default()
                    .push(Item::Group(Box::new([a, b, c, d])));
                level += 1;
                continue;
            }
            // Advance to the next present level above.
            match self.by_level.range(level + 1..).next().map(|(&l, _)| l) {
                Some(next) => level = next,
                None => break,
            }
        }
    }

    /// Place all squares without overlap. The first square of the largest
    /// level lands at the origin, so the region `[0, 2^{i*})²` is fully
    /// covered — and `2^{i*} ≥ ½·√(Σ dᵢ²)` (Lemma 5).
    pub fn place(mut self) -> Vec<PlacedSquare> {
        self.collapse();
        let mut out = Vec::new();
        let Some(top) = self.max_level() else {
            return out;
        };
        // Items per level, ascending (so `last()` is the largest level);
        // ≤ 3 items per level after collapse.
        let mut pending: Vec<(u32, Vec<Item>)> = self.by_level.into_iter().collect();
        // Recursive placement into the region [x, x+2^log)²; every pending
        // item has level < log, at most 3 per level.
        fn fill_region(
            x: u64,
            y: u64,
            log: u32,
            pending: &mut Vec<(u32, Vec<Item>)>,
            out: &mut Vec<PlacedSquare>,
        ) {
            // Take up to 3 items of level log-1 for three quadrants,
            // recurse the rest into the fourth.
            let Some(level) = log.checked_sub(1) else {
                return;
            };
            let half = 1u64 << level;
            let quadrants = [(0, 0), (half, 0), (0, half)];
            let mut used = 0;
            while used < 3 {
                let item = match pending.last_mut() {
                    Some((l, items)) if *l == level => items.pop(),
                    _ => None,
                };
                let Some(item) = item else { break };
                let (dx, dy) = quadrants[used];
                expand(item, x + dx, y + dy, level, out);
                used += 1;
            }
            if let Some((_, items)) = pending.last() {
                if items.is_empty() {
                    pending.pop();
                }
            }
            if !pending.is_empty() {
                fill_region(x + half, y + half, level, pending, out);
            }
        }
        // Expand an item (leaf or composite) at a position.
        fn expand(item: Item, x: u64, y: u64, level: u32, out: &mut Vec<PlacedSquare>) {
            match item {
                Item::Leaf(owner) => out.push(PlacedSquare {
                    owner,
                    x,
                    y,
                    side: 1u64 << level,
                }),
                Item::Group(children) => {
                    let half = 1u64 << (level - 1);
                    let offs = [(0, 0), (half, 0), (0, half), (half, half)];
                    for (child, (dx, dy)) in children.into_iter().zip(offs) {
                        expand(child, x + dx, y + dy, level - 1, out);
                    }
                }
            }
        }
        fill_region(0, 0, top + 1, &mut pending, &mut out);
        out
    }
}

/// Check that `squares` are pairwise disjoint.
pub fn check_no_overlap(squares: &[PlacedSquare]) -> Result<(), String> {
    for (i, a) in squares.iter().enumerate() {
        for b in &squares[i + 1..] {
            let disjoint = a.x + a.side <= b.x
                || b.x + b.side <= a.x
                || a.y + a.side <= b.y
                || b.y + b.side <= a.y;
            if !disjoint {
                return Err(format!("squares overlap: {a:?} vs {b:?}"));
            }
        }
    }
    Ok(())
}

/// Check that `squares` fully cover the rectangle `[0,rows) × [0,cols)`.
/// Since squares are disjoint and axis-aligned with power-of-two geometry,
/// it suffices to compare the covered area inside the rectangle with
/// `rows · cols`.
pub fn check_covers_grid(squares: &[PlacedSquare], rows: u64, cols: u64) -> Result<(), String> {
    check_no_overlap(squares)?;
    let mut covered: u128 = 0;
    for sq in squares {
        let x1 = (sq.x + sq.side).min(rows);
        let y1 = (sq.y + sq.side).min(cols);
        if x1 > sq.x && y1 > sq.y {
            covered += (x1 - sq.x) as u128 * (y1 - sq.y) as u128;
        }
    }
    let need = rows as u128 * cols as u128;
    if covered == need {
        Ok(())
    } else {
        Err(format!(
            "covered area {covered} ≠ grid area {need} ({rows}×{cols})"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn collapse_merges_quadruples() {
        let mut set = SquareSet::new();
        for i in 0..4 {
            set.merge(SquareSet::singleton(n(i), 3));
        }
        assert_eq!(set.max_level(), Some(4));
        assert_eq!(set.total_area(), 4 * (8 * 8));
    }

    #[test]
    fn single_square_lands_at_origin() {
        let placed = SquareSet::singleton(n(0), 5).place();
        assert_eq!(
            placed,
            vec![PlacedSquare {
                owner: n(0),
                x: 0,
                y: 0,
                side: 32
            }]
        );
    }

    #[test]
    fn lemma5_coverage_guarantee() {
        // Mixed sides: the packed squares must fully cover
        // [0, 2^{i*})² with 2^{i*} ≥ ½√(Σ d²).
        let sides_log: Vec<u32> = vec![0, 0, 1, 1, 1, 2, 2, 3, 0, 4, 2];
        let mut set = SquareSet::new();
        let mut area: u128 = 0;
        for (i, &l) in sides_log.iter().enumerate() {
            set.merge(SquareSet::singleton(n(i as u32), l));
            area += 1u128 << (2 * l);
        }
        let top = set.max_level().unwrap();
        let placed = set.place();
        assert_eq!(placed.len(), sides_log.len());
        check_no_overlap(&placed).unwrap();
        let covered_side = 1u64 << top;
        assert!(
            (covered_side as f64) >= 0.5 * (area as f64).sqrt(),
            "2^i* = {covered_side}, √area = {}",
            (area as f64).sqrt()
        );
        check_covers_grid(&placed, covered_side, covered_side).unwrap();
    }

    #[test]
    fn many_equal_squares_tile_perfectly() {
        let mut set = SquareSet::new();
        for i in 0..16 {
            set.merge(SquareSet::singleton(n(i), 2));
        }
        // 16 squares of side 4 collapse into one side-16 composite.
        assert_eq!(set.max_level(), Some(4));
        let placed = set.place();
        check_covers_grid(&placed, 16, 16).unwrap();
    }

    #[test]
    fn hierarchical_merge_keeps_groups_local() {
        // Two subtrees, each with 4 unit squares: after per-subtree merges,
        // each subtree forms one 2×2 block; blocks must be contiguous.
        let mut left = SquareSet::new();
        for i in 0..4 {
            left.merge(SquareSet::singleton(n(i), 0));
        }
        let mut right = SquareSet::new();
        for i in 4..8 {
            right.merge(SquareSet::singleton(n(i), 0));
        }
        let mut root = SquareSet::new();
        root.merge(left);
        root.merge(right);
        let placed = root.place();
        check_no_overlap(&placed).unwrap();
        // Each original subtree's squares span a 2×2 region.
        for group in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
            let xs: Vec<u64> = group
                .iter()
                .map(|&i| placed.iter().find(|p| p.owner == n(i)).unwrap().x)
                .collect();
            let ys: Vec<u64> = group
                .iter()
                .map(|&i| placed.iter().find(|p| p.owner == n(i)).unwrap().y)
                .collect();
            let w = xs.iter().max().unwrap() - xs.iter().min().unwrap();
            let h = ys.iter().max().unwrap() - ys.iter().min().unwrap();
            assert!(w <= 1 && h <= 1, "subtree scattered: xs={xs:?} ys={ys:?}");
        }
    }

    #[test]
    fn empty_set_places_nothing() {
        assert!(SquareSet::new().place().is_empty());
        assert!(SquareSet::new().is_empty());
    }

    #[test]
    fn overlap_checker_detects() {
        let a = PlacedSquare {
            owner: n(0),
            x: 0,
            y: 0,
            side: 4,
        };
        let b = PlacedSquare {
            owner: n(1),
            x: 2,
            y: 2,
            side: 4,
        };
        assert!(check_no_overlap(&[a, b]).is_err());
        let c = PlacedSquare {
            owner: n(1),
            x: 4,
            y: 0,
            side: 4,
        };
        assert!(check_no_overlap(&[a, c]).is_ok());
    }
}
