//! The weighted HyperCube protocol (§4.2) on symmetric stars.
//!
//! Each compute node `v` is assigned a square of side `d_v = 2^{l_v}`, the
//! smallest power of two at least `w_v · L` where `L = N / √(Σ_u w_u²)`.
//! The squares pack without overlap (Lemma 5) and, since
//! `Σ d_v² ≥ L² Σ w_v² = N²`, they fully cover the `(N/2) × (N/2)` output
//! grid. Node `v` then receives the `R`-rows and `S`-columns its square
//! spans — `O(w_v · L)` tuples — for a total cost of
//! `O(max{max_v N_v/w_v, N/√(Σ_v w_v²)})` (Lemma 6), matching Theorems 3
//! and 4 on the star.

use tamp_simulator::{Protocol, Rel, Session, SimError};
use tamp_topology::{NodeId, Tree};

use super::grid::{distribute_intervals, Labels};
use super::packing::{PlacedSquare, SquareSet};

/// The square assignment computed by the wHC planner.
#[derive(Clone, Debug)]
pub struct WhcPlan {
    /// Placed, non-overlapping squares covering the output grid.
    pub squares: Vec<PlacedSquare>,
    /// The scale `L = N / √(Σ w²)`.
    pub l: f64,
}

/// Compute the wHC square assignment for the compute nodes of `tree`.
///
/// `capacities`, indexed by node id, overrides the per-node capacity `w_v`
/// (defaults to the bandwidth of each leaf's adjacent edge). Squares are
/// clamped to `[1, 2^⌈log₂(N+1)⌉]` — a clamped square already covers the
/// whole grid alone, so coverage is unaffected.
pub fn plan_whc(tree: &Tree, total_n: u64, capacities: Option<&[f64]>) -> WhcPlan {
    let caps: Vec<(NodeId, f64)> = tree
        .compute_nodes()
        .iter()
        .map(|&v| {
            let w = match capacities {
                Some(c) => c[v.index()],
                None => {
                    let (_, e) = tree.neighbors(v)[0];
                    tree.sym_bandwidth(e).get()
                }
            };
            (v, w)
        })
        .collect();
    let sum_sq: f64 = caps.iter().map(|&(_, w)| w * w).sum();
    let l = if sum_sq > 0.0 {
        total_n as f64 / sum_sq.sqrt()
    } else {
        0.0
    };
    let max_level = log2_ceil(total_n.max(1) + 1);
    let mut set = SquareSet::new();
    for &(v, w) in &caps {
        let target = (w * l).ceil().max(1.0);
        let level = log2_ceil(target.min(u64::MAX as f64) as u64).min(max_level);
        set.merge(SquareSet::singleton(v, level));
    }
    WhcPlan {
        squares: set.place(),
        l,
    }
}

/// Smallest `k` with `2^k ≥ x` (for `x ≥ 1`).
pub(crate) fn log2_ceil(x: u64) -> u32 {
    64 - x.saturating_sub(1).leading_zeros()
}

/// The one-round deterministic weighted HyperCube protocol for symmetric
/// stars. Requires `|R| = |S|`. Returns the square plan used.
#[derive(Clone, Debug, Default)]
pub struct WeightedHyperCube;

impl WeightedHyperCube {
    /// Create the protocol.
    pub fn new() -> Self {
        WeightedHyperCube
    }
}

impl Protocol for WeightedHyperCube {
    type Output = WhcPlan;

    fn name(&self) -> String {
        "weighted-hypercube".into()
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        tree.require_symmetric()
            .map_err(|e| SimError::Protocol(e.to_string()))?;
        if !tree.compute_nodes_are_leaves() {
            return Err(SimError::Protocol(
                "wHC requires every compute node to be a leaf (normalize first)".into(),
            ));
        }
        let stats = session.stats().clone();
        if stats.total_r != stats.total_s {
            return Err(SimError::Protocol(format!(
                "wHC requires |R| = |S| (got {} and {}); use cartesian::unequal",
                stats.total_r, stats.total_s
            )));
        }
        if stats.total_r == 0 {
            return Ok(WhcPlan {
                squares: Vec::new(),
                l: 0.0,
            });
        }
        let plan = plan_whc(tree, stats.total_n(), None);
        execute_square_plan(session, &plan.squares, None)?;
        Ok(plan)
    }
}

/// Ship every node's local `R`/`S` fragments to the owners of the squares
/// whose row/column intervals contain them (optionally via a relay —
/// the §4.4 root-routing pattern).
pub(crate) fn execute_square_plan(
    session: &mut Session<'_>,
    squares: &[PlacedSquare],
    relay: Option<NodeId>,
) -> Result<(), SimError> {
    let tree = session.tree();
    let stats = session.stats().clone();
    let labels = Labels::new(tree, &stats);
    // Recipient intervals, clipped to the grid.
    let r_recipients: Vec<(NodeId, std::ops::Range<u64>)> = squares
        .iter()
        .filter(|sq| sq.x < labels.total_r)
        .map(|sq| (sq.owner, sq.x..(sq.x + sq.side).min(labels.total_r)))
        .collect();
    let s_recipients: Vec<(NodeId, std::ops::Range<u64>)> = squares
        .iter()
        .filter(|sq| sq.y < labels.total_s)
        .map(|sq| (sq.owner, sq.y..(sq.y + sq.side).min(labels.total_s)))
        .collect();
    session.round(|round| {
        for &v in round.tree().compute_nodes() {
            let local_r = round.state(v).r.clone();
            let start_r = labels.range(v, Rel::R, &stats).start;
            distribute_intervals(round, v, Rel::R, &local_r, start_r, &r_recipients, relay)?;
            let local_s = round.state(v).s.clone();
            let start_s = labels.range(v, Rel::S, &stats).start;
            distribute_intervals(round, v, Rel::S, &local_s, start_s, &s_recipients, relay)?;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::super::packing::check_covers_grid;
    use super::*;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn equal_placement(tree: &Tree, half: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..half {
            let v = vc[(crate::hashing::mix64(a ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, a);
        }
        for a in 0..half {
            let v = vc[(crate::hashing::mix64(a ^ seed ^ 0x5555) % vc.len() as u64) as usize];
            p.push(v, Rel::S, 1_000_000 + a);
        }
        p
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1 << 20), 20);
    }

    #[test]
    fn plan_covers_grid() {
        let t = builders::heterogeneous_star(&[1.0, 2.0, 4.0, 8.0]);
        let plan = plan_whc(&t, 200, None);
        check_covers_grid(&plan.squares, 100, 100).unwrap();
    }

    #[test]
    fn whc_covers_all_pairs_uniform() {
        let t = builders::star(4, 2.0);
        let p = equal_placement(&t, 60, 3);
        let run = run_protocol(&t, &p, &WeightedHyperCube::new()).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        check_covers_grid(&run.output.squares, 60, 60).unwrap();
    }

    #[test]
    fn whc_covers_all_pairs_heterogeneous() {
        let t = builders::heterogeneous_star(&[1.0, 1.0, 8.0, 16.0, 2.0]);
        let p = equal_placement(&t, 80, 9);
        let run = run_protocol(&t, &p, &WeightedHyperCube::new()).unwrap();
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        // Fat links get bigger squares.
        let side_of = |i: u32| {
            run.output
                .squares
                .iter()
                .find(|s| s.owner == NodeId(i))
                .unwrap()
                .side
        };
        assert!(side_of(3) >= side_of(0));
    }

    #[test]
    fn whc_receive_load_tracks_bandwidth() {
        // Lemma 6: node v receives at most 4·w_v·L tuples.
        let t = builders::heterogeneous_star(&[1.0, 2.0, 4.0, 8.0]);
        let p = equal_placement(&t, 100, 5);
        let run = run_protocol(&t, &p, &WeightedHyperCube::new()).unwrap();
        let l = run.output.l;
        let hub = NodeId(4);
        for (i, &v) in t.compute_nodes().iter().enumerate() {
            let w = [1.0, 2.0, 4.0, 8.0][i];
            let down = t.dir_edge_between(hub, v).unwrap();
            let received = run.cost.edge_total(down) as f64;
            assert!(
                received <= 4.0 * w * l + 1.0,
                "node {v}: received {received} > 4wL = {}",
                4.0 * w * l
            );
        }
    }

    #[test]
    fn whc_rejects_unequal() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![1]);
        p.set_s(NodeId(1), vec![2, 3]);
        assert!(matches!(
            run_protocol(&t, &p, &WeightedHyperCube::new()),
            Err(SimError::Protocol(_))
        ));
    }

    #[test]
    fn whc_empty_input_is_free() {
        let t = builders::star(3, 1.0);
        let p = Placement::empty(&t);
        let run = run_protocol(&t, &p, &WeightedHyperCube::new()).unwrap();
        assert_eq!(run.cost.tuple_cost(), 0.0);
        assert!(run.output.squares.is_empty());
    }
}
