//! Cartesian product (Section 4).
//!
//! Given `R` and `S` with `|R| = |S| = N/2` partitioned over the compute
//! nodes, enumerate `R × S`. Two lower bounds constrain any algorithm:
//!
//! - **Theorem 3** (cut bound): `C_LB = max_e (1/w_e) ·
//!   min{Σ_{V⁻_e} N_v, Σ_{V⁺_e} N_v}` — data must cross every cut;
//! - **Theorem 4** (counting bound): for any minimal cover `U ≠ {r}` of
//!   `G†`, `C_LB = N / √(Σ_{v∈U} w_v²)` — every output pair must be
//!   co-located at some node, and subtree output capacity scales with the
//!   square of its uplink budget.
//!
//! The matching deterministic one-round protocols assign each node a
//! *square* of the `|R| × |S|` output grid, sized proportionally to its
//! link bandwidth and rounded to a power of two so the squares pack
//! without overlap (Lemma 5):
//!
//! - [`WeightedHyperCube`] — the wHC protocol on stars (§4.2),
//!   generalizing the HyperCube / shares algorithm of Afrati–Ullman;
//! - [`StarCartesianProduct`] — Algorithm 4 (star, with the heavy-node
//!   shortcut);
//! - [`TreeCartesianProduct`] — the §4.4 protocol: everything routes
//!   through the root of `G†`, with squares packed bottom-up along `G†`
//!   by Algorithm 5 (`BalancedPackingTree`);
//! - [`unequal`] — Appendix A.1: `|R| ≠ |S|` on stars;
//! - [`unequal_tree`] — §4.5's open problem: `|R| ≠ |S|` on general trees
//!   (best-of-three heuristic, no matching lower bound known);
//! - [`UniformHyperCube`] / [`AllToOne`] — topology-agnostic baselines.

mod baseline;
pub mod grid;
mod lower_bound;
pub mod packing;
mod star;
mod tree;
pub mod unequal;
pub mod unequal_tree;
mod whc;

pub use baseline::{AllToOne, UniformHyperCube};
pub use lower_bound::{
    cartesian_lower_bound, cartesian_lower_bound_cover, cartesian_lower_bound_cut,
};
pub use star::StarCartesianProduct;
pub use tree::{plan_tree_packing, TreeCartesianProduct, TreePlan};
pub use unequal_tree::{
    choose_strategy, cost_all_to_node, cost_broadcast_small, estimate_padded_squares,
    unequal_tree_lower_bound, UnequalTreeCartesianProduct, UnequalTreeStrategy,
};
pub use whc::{plan_whc, WeightedHyperCube, WhcPlan};
