//! Appendix A.1: cartesian product with `|R| ≠ |S|` on symmetric stars.
//!
//! W.l.o.g. `|R| < |S|`. The output grid is a `|R| × |S|` rectangle, so a
//! node's optimal share is no longer a square: nodes with budget
//! `C·w_v ≥ |R|` take full-height *strips* while the rest take squares.
//! The scale `L* = L(R, S, V_C)` is the least `C` satisfying the counting
//! inequality `Σ_v min{C·w_v, |R|} · C·w_v ≥ |R|·|S|` (equation (2)).
//!
//! The paper sketches the packing ("while the grid is not fully covered");
//! we make it concrete: strips go first, the remaining columns split into
//! panels of power-of-two width `H ≥ |R|`, and squares (sides rounded to
//! powers of two) buddy-pack into the panels, lowest rows first. If
//! rounding/clipping leaves the grid uncovered the scale doubles and the
//! packing retries — the planner records the final scale, keeping the
//! measured cost honest.
//!
//! `GeneralizedStarCartesianProduct` (Algorithm 8) broadcasts `R` to the
//! `V_β` nodes and then picks the cheapest of the three strategies the
//! paper lists; the lower bounds are Theorems 8 and 9.

use std::ops::Range;

use tamp_simulator::{Placement, Protocol, Rel, Session, SimError};
use tamp_topology::{NodeId, Tree};

use crate::ratio::LowerBound;

use super::grid::distribute_intervals;
use super::star::all_to_node;
use super::whc::log2_ceil;

/// A rectangle of the output grid assigned to a node: rows
/// `[row, row+h)` of `R` × columns `[col, col+w)` of `S`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rect {
    /// Assigned compute node.
    pub owner: NodeId,
    /// First `R`-row.
    pub row: u64,
    /// First `S`-column.
    pub col: u64,
    /// Number of rows.
    pub h: u64,
    /// Number of columns.
    pub w: u64,
}

/// The generalized-wHC plan: rectangles covering the `|R| × |S|` grid.
#[derive(Clone, Debug)]
pub struct UnequalPlan {
    /// Assigned rectangles (disjoint inside the grid, union covers it).
    pub rects: Vec<Rect>,
    /// The scale `C` actually used (`≥ L*`; doubled on packing retries).
    pub c: f64,
    /// How many times the scale was doubled to achieve coverage.
    pub retries: u32,
}

/// Solve equation (2): the least `C ≥ 0` with
/// `Σ_v min{C·w_v, r_total} · C·w_v ≥ r_total · s_total`.
pub fn solve_l_star(r_total: u64, s_total: u64, caps: &[f64]) -> f64 {
    let need = r_total as f64 * s_total as f64;
    if need == 0.0 || caps.is_empty() {
        return 0.0;
    }
    let area = |c: f64| -> f64 {
        caps.iter()
            .map(|&w| (c * w).min(r_total as f64) * c * w)
            .sum()
    };
    let mut hi = 1.0f64;
    while area(hi) < need {
        hi *= 2.0;
        if hi > 1e30 {
            return f64::INFINITY;
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if area(mid) >= need {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Quadtree buddy cell used while packing squares into a panel.
enum Cell {
    Free,
    Allocated,
    Split(Box<[Cell; 4]>),
}

impl Cell {
    /// Child quadrant offsets `(d_col, d_row)` in fill-priority order
    /// (low rows first, then low columns).
    fn offsets(half: u64) -> [(u64, u64); 4] {
        [(0, 0), (half, 0), (0, half), (half, half)]
    }

    /// Allocate a `side × side` cell; returns its `(col, row)` offset.
    fn alloc(&mut self, size: u64, side: u64) -> Option<(u64, u64)> {
        debug_assert!(side <= size);
        match self {
            Cell::Allocated => None,
            Cell::Free if side == size => {
                *self = Cell::Allocated;
                Some((0, 0))
            }
            Cell::Free => {
                *self = Cell::Split(Box::new([Cell::Free, Cell::Free, Cell::Free, Cell::Free]));
                self.alloc(size, side)
            }
            Cell::Split(children) => {
                let half = size / 2;
                if side > half {
                    return None;
                }
                for (i, (dc, dr)) in Self::offsets(half).into_iter().enumerate() {
                    if let Some((c, r)) = children[i].alloc(half, side) {
                        return Some((dc + c, dr + r));
                    }
                }
                None
            }
        }
    }

    /// `true` if the region of interest (rows `< row_lim`, cols `< col_lim`,
    /// relative to this cell) is fully allocated.
    fn covers(&self, size: u64, row_lim: u64, col_lim: u64) -> bool {
        if row_lim == 0 || col_lim == 0 {
            return true;
        }
        match self {
            Cell::Allocated => true,
            Cell::Free => false,
            Cell::Split(children) => {
                let half = size / 2;
                for (i, (dc, dr)) in Self::offsets(half).into_iter().enumerate() {
                    let rl = row_lim.saturating_sub(dr).min(half);
                    let cl = col_lim.saturating_sub(dc).min(half);
                    if !children[i].covers(half, rl, cl) {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// Plan the generalized wHC packing for an `r_total × s_total` grid over
/// nodes with capacities `caps` (pairs `(node, w)`).
pub fn plan_unequal(r_total: u64, s_total: u64, caps: &[(NodeId, f64)]) -> UnequalPlan {
    if r_total == 0 || s_total == 0 || caps.is_empty() {
        return UnequalPlan {
            rects: Vec::new(),
            c: 0.0,
            retries: 0,
        };
    }
    let ws: Vec<f64> = caps.iter().map(|&(_, w)| w).collect();
    let l_star = solve_l_star(r_total, s_total, &ws);
    let mut sorted: Vec<(NodeId, f64)> = caps.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut c = l_star.max(1.0 / sorted[0].1.max(f64::MIN_POSITIVE));
    for retry in 0..16u32 {
        if let Some(rects) = try_pack(r_total, s_total, &sorted, c) {
            return UnequalPlan {
                rects,
                c,
                retries: retry,
            };
        }
        c *= 2.0;
    }
    unreachable!("a scale with one node spanning the whole grid always packs");
}

fn try_pack(r_total: u64, s_total: u64, sorted: &[(NodeId, f64)], c: f64) -> Option<Vec<Rect>> {
    let side_cap = 1u64 << log2_ceil(r_total.max(s_total).max(1) + 1).min(62);
    let h_panel = 1u64 << log2_ceil(r_total);
    let mut rects = Vec::new();
    // `frontier`: first column not yet claimed by a strip or an opened
    // panel. Strips cover their columns outright; panel coverage is
    // verified at the end.
    let mut frontier = 0u64;
    let mut panels: Vec<(u64, Cell)> = Vec::new(); // (panel start col, buddy)
    for &(owner, w) in sorted {
        let budget = (c * w).ceil().max(1.0).min(side_cap as f64) as u64;
        let side = 1u64 << log2_ceil(budget).min(62);
        if budget >= r_total || side >= h_panel {
            // Full-height strip (either by budget or by rounding).
            if frontier < s_total {
                let width = budget.max(side).min(s_total - frontier);
                rects.push(Rect {
                    owner,
                    row: 0,
                    col: frontier,
                    h: r_total,
                    w: width,
                });
                frontier += width;
            }
            continue;
        }
        // Square node: try existing panels, else open a new one at the
        // frontier. (Sorted descending, so strips always precede squares.)
        let mut placed = false;
        for (start, cell) in panels.iter_mut() {
            if let Some((dc, dr)) = cell.alloc(h_panel, side) {
                rects.push(Rect {
                    owner,
                    row: dr,
                    col: *start + dc,
                    h: side,
                    w: side,
                });
                placed = true;
                break;
            }
        }
        if !placed && frontier < s_total {
            let mut cell = Cell::Free;
            let (dc, dr) = cell
                .alloc(h_panel, side)
                .expect("fresh panel fits any side");
            rects.push(Rect {
                owner,
                row: dr,
                col: frontier + dc,
                h: side,
                w: side,
            });
            panels.push((frontier, cell));
            frontier += h_panel;
        }
    }
    // Coverage: frontier must reach s_total, and every panel must cover
    // its in-grid region (rows < r_total, columns up to the grid edge).
    if frontier < s_total {
        return None;
    }
    for (start, cell) in &panels {
        let col_lim = (s_total.saturating_sub(*start)).min(h_panel);
        if !cell.covers(h_panel, r_total.min(h_panel), col_lim) {
            return None;
        }
    }
    Some(rects)
}

/// Theorem 8: `C ≥ max{ max_{v∈V_α} min{N_v, N−N_v}/w_v,
/// max_{v∈V_β} |R|/w_v }` on a symmetric star, where
/// `V_α = {v : min{N_v, N−N_v} < |R|}`.
pub fn unequal_lower_bound_thm8(tree: &Tree, stats: &tamp_simulator::PlacementStats) -> LowerBound {
    let r_total = stats.total_r.min(stats.total_s);
    let n_total = stats.total_n();
    let mut best = LowerBound::zero();
    for &v in tree.compute_nodes() {
        let (_, e) = tree.neighbors(v)[0];
        let w = tree.sym_bandwidth(e);
        let nv = stats.n_v(v);
        let cut = nv.min(n_total - nv);
        let numer = if cut < r_total { cut } else { r_total };
        let value = w.cost_of(numer as f64);
        if value > best.value() {
            best = LowerBound::new(value, Some(e));
        }
    }
    best
}

/// Theorem 9: when `max_v N_v ≤ N/2`,
/// `C ≥ min{ |S|/max_v w_v, Σ_{V_α}|S_v| / (2·Σ_{V_β} w_v),
/// L(R, ⋃_{V_α} S_v, V_α) }`. Returns `None` when the premise fails.
pub fn unequal_lower_bound_thm9(
    tree: &Tree,
    stats: &tamp_simulator::PlacementStats,
) -> Option<LowerBound> {
    let n_total = stats.total_n();
    let max_nv = tree
        .compute_nodes()
        .iter()
        .map(|&v| stats.n_v(v))
        .max()
        .unwrap_or(0);
    if max_nv * 2 > n_total {
        return None;
    }
    // Orient so R is the smaller relation.
    let (r_total, s_rel) = if stats.total_r <= stats.total_s {
        (stats.total_r, Rel::S)
    } else {
        (stats.total_s, Rel::R)
    };
    let s_total = stats.total_rel(s_rel);
    let w_of = |v: NodeId| {
        let (_, e) = tree.neighbors(v)[0];
        tree.sym_bandwidth(e).get()
    };
    let mut max_w = 0.0f64;
    let mut s_alpha = 0u64;
    let mut w_beta_sum = 0.0f64;
    let mut alpha_caps = Vec::new();
    for &v in tree.compute_nodes() {
        let w = w_of(v);
        max_w = max_w.max(w);
        let nv = stats.n_v(v);
        if nv.min(n_total - nv) < r_total {
            s_alpha += stats.rel(s_rel)[v.index()];
            alpha_caps.push(w);
        } else {
            w_beta_sum += w;
        }
    }
    let term1 = if max_w > 0.0 {
        s_total as f64 / max_w
    } else {
        f64::INFINITY
    };
    let term2 = if w_beta_sum > 0.0 {
        s_alpha as f64 / (2.0 * w_beta_sum)
    } else {
        f64::INFINITY
    };
    let term3 = solve_l_star(r_total, s_alpha, &alpha_caps);
    Some(LowerBound::new(term1.min(term2).min(term3), None))
}

/// `max(Theorem 8, Theorem 9)`.
pub fn unequal_lower_bound(tree: &Tree, stats: &tamp_simulator::PlacementStats) -> LowerBound {
    let t8 = unequal_lower_bound_thm8(tree, stats);
    match unequal_lower_bound_thm9(tree, stats) {
        Some(t9) => t8.max(t9),
        None => t8,
    }
}

/// Which strategy Algorithm 8 executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnequalStrategy {
    /// Some node held more than half the data: everything went to it.
    HeavyNode,
    /// Everything to the node with the fattest link.
    AllToFattest,
    /// `R` broadcast to `V_β`; `V_α`'s `S`-tuples spread over `V_β`
    /// proportionally to bandwidth.
    ProportionalToBeta,
    /// `R` broadcast to `V_β`; generalized wHC on `V_α` for
    /// `R × ⋃_{V_α} S_v`.
    WhcOnAlpha,
}

/// Algorithm 8: cartesian product with `|R| ≠ |S|` on a symmetric star.
/// Runs the heavy-node shortcut if applicable; otherwise simulates the
/// three candidate strategies on the initial placement and executes the
/// cheapest (planning is local computation — free in the model).
#[derive(Clone, Debug, Default)]
pub struct GeneralizedStarCartesianProduct;

impl GeneralizedStarCartesianProduct {
    /// Create the protocol.
    pub fn new() -> Self {
        GeneralizedStarCartesianProduct
    }
}

impl Protocol for GeneralizedStarCartesianProduct {
    type Output = UnequalStrategy;

    fn name(&self) -> String {
        "generalized-star-cartesian-product".into()
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        if tree.num_nodes() != tree.num_compute() + 1 || !tree.compute_nodes_are_leaves() {
            return Err(SimError::Protocol(
                "GeneralizedStarCartesianProduct requires a star topology".into(),
            ));
        }
        let stats = session.stats().clone();
        let n_total = stats.total_n();
        if n_total == 0 {
            return Ok(UnequalStrategy::HeavyNode);
        }
        let heavy = tree
            .compute_nodes()
            .iter()
            .copied()
            .max_by_key(|&v| stats.n_v(v))
            .expect("star has compute nodes");
        if stats.n_v(heavy) * 2 > n_total {
            all_to_node(session, heavy)?;
            return Ok(UnequalStrategy::HeavyNode);
        }
        // Candidate strategies, evaluated by private simulation on the
        // initial placement.
        let placement = Placement::from_fragments(session.states().to_vec());
        let candidates = [
            UnequalStrategy::AllToFattest,
            UnequalStrategy::ProportionalToBeta,
            UnequalStrategy::WhcOnAlpha,
        ];
        let mut best: Option<(f64, UnequalStrategy)> = None;
        for &strat in &candidates {
            let proto = FixedStrategy(strat);
            if let Ok(run) = tamp_simulator::run_protocol(tree, &placement, &proto) {
                let cost = run.cost.tuple_cost();
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, strat));
                }
            }
        }
        let (_, strat) =
            best.ok_or_else(|| SimError::Protocol("no unequal-CP strategy applies".into()))?;
        FixedStrategy(strat).run(session)?;
        Ok(strat)
    }
}

/// Run one specific Algorithm-8 strategy (used for planning and ablation).
#[derive(Clone, Copy, Debug)]
pub struct FixedStrategy(pub UnequalStrategy);

impl Protocol for FixedStrategy {
    type Output = ();

    fn name(&self) -> String {
        format!("unequal-cp[{:?}]", self.0)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError> {
        let tree = session.tree();
        let stats = session.stats().clone();
        let n_total = stats.total_n();
        // Orient: `small` plays R.
        let (small, big) = if stats.total_r <= stats.total_s {
            (Rel::R, Rel::S)
        } else {
            (Rel::S, Rel::R)
        };
        let r_total = stats.total_rel(small);
        let computes: Vec<NodeId> = tree.compute_nodes().to_vec();
        let w_of = |v: NodeId| {
            let (_, e) = tree.neighbors(v)[0];
            tree.sym_bandwidth(e).get()
        };
        let v_beta: Vec<NodeId> = computes
            .iter()
            .copied()
            .filter(|&v| stats.n_v(v).min(n_total - stats.n_v(v)) >= r_total)
            .collect();
        let v_alpha: Vec<NodeId> = computes
            .iter()
            .copied()
            .filter(|&v| !v_beta.contains(&v))
            .collect();

        match self.0 {
            UnequalStrategy::HeavyNode | UnequalStrategy::AllToFattest => {
                let target = if self.0 == UnequalStrategy::HeavyNode {
                    computes
                        .iter()
                        .copied()
                        .max_by_key(|&v| stats.n_v(v))
                        .expect("nonempty")
                } else {
                    *computes
                        .iter()
                        .max_by(|&&a, &&b| w_of(a).total_cmp(&w_of(b)))
                        .expect("nonempty")
                };
                all_to_node(session, target)
            }
            UnequalStrategy::ProportionalToBeta => {
                if v_beta.is_empty() {
                    return Err(SimError::Protocol("V_β is empty".into()));
                }
                let w_sum: f64 = v_beta.iter().map(|&v| w_of(v)).sum();
                session.round(|round| {
                    for &v in &computes {
                        // R (small) tuples → all of V_β.
                        let small_vals = round.state(v).rel(small).clone();
                        round.send(v, &v_beta, small, &small_vals)?;
                        // S (big) tuples of V_α nodes → proportional split.
                        if v_alpha.contains(&v) {
                            let big_vals = round.state(v).rel(big).clone();
                            let mut start = 0usize;
                            let total = big_vals.len() as f64;
                            let mut acc = 0.0f64;
                            for (i, &u) in v_beta.iter().enumerate() {
                                acc += w_of(u);
                                let end = if i + 1 == v_beta.len() {
                                    big_vals.len()
                                } else {
                                    ((acc / w_sum) * total).round() as usize
                                };
                                let end = end.clamp(start, big_vals.len());
                                round.send(v, &[u], big, &big_vals[start..end])?;
                                start = end;
                            }
                        }
                    }
                    Ok(())
                })
            }
            UnequalStrategy::WhcOnAlpha => {
                // Global column labels over V_α's big-relation tuples.
                let mut offsets = vec![0u64; tree.num_nodes()];
                let mut s_alpha = 0u64;
                for &v in &v_alpha {
                    offsets[v.index()] = s_alpha;
                    s_alpha += stats.rel(big)[v.index()];
                }
                let caps: Vec<(NodeId, f64)> = v_alpha.iter().map(|&v| (v, w_of(v))).collect();
                let plan = plan_unequal(r_total, s_alpha, &caps);
                // Row (small-relation) recipients: V_β wants everything;
                // each rect owner wants its rows.
                let mut small_recipients: Vec<(NodeId, Range<u64>)> =
                    v_beta.iter().map(|&u| (u, 0..r_total)).collect();
                for rect in &plan.rects {
                    small_recipients.push((rect.owner, rect.row..(rect.row + rect.h).min(r_total)));
                }
                let big_recipients: Vec<(NodeId, Range<u64>)> = plan
                    .rects
                    .iter()
                    .filter(|rc| rc.col < s_alpha)
                    .map(|rc| (rc.owner, rc.col..(rc.col + rc.w).min(s_alpha)))
                    .collect();
                // Row labels over the small relation (all compute nodes).
                let mut small_offsets = vec![0u64; tree.num_nodes()];
                let mut acc = 0u64;
                for &v in &computes {
                    small_offsets[v.index()] = acc;
                    acc += stats.rel(small)[v.index()];
                }
                session.round(|round| {
                    for &v in &computes {
                        let small_vals = round.state(v).rel(small).clone();
                        distribute_intervals(
                            round,
                            v,
                            small,
                            &small_vals,
                            small_offsets[v.index()],
                            &small_recipients,
                            None,
                        )?;
                        if v_alpha.contains(&v) {
                            let big_vals = round.state(v).rel(big).clone();
                            distribute_intervals(
                                round,
                                v,
                                big,
                                &big_vals,
                                offsets[v.index()],
                                &big_recipients,
                                None,
                            )?;
                        }
                    }
                    Ok(())
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::ratio;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    #[test]
    fn l_star_solves_equation() {
        // Symmetric case: with all budgets below |R|, equation (2) becomes
        // C²·Σw² = |R||S| ⇒ C = √(|R||S|/Σw²).
        let caps = vec![1.0, 1.0, 1.0, 1.0];
        let c = solve_l_star(100, 100, &caps);
        assert!((c - 50.0).abs() < 1e-6, "c = {c}");
        // Degenerate inputs.
        assert_eq!(solve_l_star(0, 100, &caps), 0.0);
        assert_eq!(solve_l_star(100, 100, &[]), 0.0);
    }

    fn coverage_of(rects: &[Rect], rows: u64, cols: u64) -> Result<(), String> {
        // Exact cell check on small grids.
        let mut grid = vec![false; (rows * cols) as usize];
        for rc in rects {
            for i in rc.row..(rc.row + rc.h).min(rows) {
                for j in rc.col..(rc.col + rc.w).min(cols) {
                    grid[(i * cols + j) as usize] = true;
                }
            }
        }
        match grid.iter().position(|&b| !b) {
            None => Ok(()),
            Some(k) => Err(format!(
                "cell ({}, {}) uncovered",
                k as u64 / cols,
                k as u64 % cols
            )),
        }
    }

    #[test]
    fn plan_covers_rectangular_grids() {
        for (r, s) in [(16u64, 64u64), (10, 100), (7, 93), (32, 33), (1, 50)] {
            let caps: Vec<(NodeId, f64)> = (0..6)
                .map(|i| (NodeId(i), [8.0, 4.0, 2.0, 1.0, 1.0, 0.5][i as usize]))
                .collect();
            let plan = plan_unequal(r, s, &caps);
            coverage_of(&plan.rects, r, s).unwrap_or_else(|e| panic!("{r}×{s}: {e}"));
            assert!(plan.retries <= 6, "{r}×{s} took {} retries", plan.retries);
        }
    }

    fn skewed_placement(tree: &Tree, r_size: u64, s_size: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..r_size {
            p.push(vc[(a % vc.len() as u64) as usize], Rel::R, a);
        }
        for a in 0..s_size {
            p.push(
                vc[((a * 7 + 1) % vc.len() as u64) as usize],
                Rel::S,
                1_000_000 + a,
            );
        }
        p
    }

    #[test]
    fn generalized_cp_covers_all_pairs() {
        let t = builders::heterogeneous_star(&[4.0, 2.0, 1.0, 1.0]);
        let p = skewed_placement(&t, 12, 120);
        let run = run_protocol(&t, &p, &GeneralizedStarCartesianProduct::new()).unwrap();
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn heavy_node_unequal() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..5).collect());
        p.set_s(NodeId(0), (100..200).collect());
        p.set_s(NodeId(1), (200..210).collect());
        let run = run_protocol(&t, &p, &GeneralizedStarCartesianProduct::new()).unwrap();
        assert_eq!(run.output, UnequalStrategy::HeavyNode);
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn cost_within_constant_of_lower_bound() {
        for (r, s) in [(20u64, 200u64), (8, 512)] {
            let t = builders::heterogeneous_star(&[8.0, 4.0, 2.0, 1.0, 1.0]);
            let p = skewed_placement(&t, r, s);
            let run = run_protocol(&t, &p, &GeneralizedStarCartesianProduct::new()).unwrap();
            verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
            let lb = unequal_lower_bound(&t, &p.stats());
            let rat = ratio(run.cost.tuple_cost(), lb.value());
            assert!(
                rat.is_finite() && rat <= 40.0,
                "{r}×{s}: cost {} vs LB {} (ratio {rat})",
                run.cost.tuple_cost(),
                lb.value()
            );
        }
    }

    #[test]
    fn strategies_all_cover() {
        let t = builders::heterogeneous_star(&[4.0, 1.0, 1.0]);
        let p = skewed_placement(&t, 6, 60);
        for strat in [
            UnequalStrategy::AllToFattest,
            UnequalStrategy::ProportionalToBeta,
            UnequalStrategy::WhcOnAlpha,
        ] {
            match run_protocol(&t, &p, &FixedStrategy(strat)) {
                Ok(run) => {
                    verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s())
                        .unwrap_or_else(|e| panic!("{strat:?}: {e}"));
                }
                Err(SimError::Protocol(_)) => {} // strategy not applicable
                Err(e) => panic!("{strat:?}: {e}"),
            }
        }
    }
}
