//! Topology-agnostic cartesian-product baselines.

use tamp_simulator::{Protocol, Rel, Session, SimError};
use tamp_topology::NodeId;

use super::grid::{distribute_intervals, Labels};
use super::star::all_to_node;

/// The classic (unweighted) HyperCube / shares algorithm: arrange the `p`
/// compute nodes in a `p₁ × p₂` grid (`p₁·p₂ ≤ p`, near-square), split `R`
/// into `p₁` equal row bands and `S` into `p₂` equal column bands, and
/// give node `(i, j)` band `i` of `R` and band `j` of `S`. Ignores both
/// bandwidths and the initial distribution.
#[derive(Clone, Debug, Default)]
pub struct UniformHyperCube;

impl UniformHyperCube {
    /// Create the protocol.
    pub fn new() -> Self {
        UniformHyperCube
    }
}

impl Protocol for UniformHyperCube {
    type Output = ();

    fn name(&self) -> String {
        "uniform-hypercube".into()
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        let stats = session.stats().clone();
        let labels = Labels::new(tree, &stats);
        let computes = tree.compute_nodes().to_vec();
        let p = computes.len() as u64;
        // Near-square integer grid with p1·p2 ≤ p, maximizing p1·p2.
        let p1 = (p as f64).sqrt().floor() as u64;
        let p1 = p1.max(1);
        let p2 = (p / p1).max(1);
        let (total_r, total_s) = (labels.total_r, labels.total_s);
        if total_r == 0 || total_s == 0 {
            return Ok(());
        }
        let band = |total: u64, parts: u64, i: u64| -> std::ops::Range<u64> {
            let lo = total * i / parts;
            let hi = total * (i + 1) / parts;
            lo..hi
        };
        let mut r_recipients = Vec::new();
        let mut s_recipients = Vec::new();
        for (k, &v) in computes.iter().enumerate().take((p1 * p2) as usize) {
            let (i, j) = (k as u64 / p2, k as u64 % p2);
            r_recipients.push((v, band(total_r, p1, i)));
            s_recipients.push((v, band(total_s, p2, j)));
        }
        session.round(|round| {
            for &v in &computes {
                let local_r = round.state(v).r.clone();
                let start_r = labels.range(v, Rel::R, &stats).start;
                distribute_intervals(round, v, Rel::R, &local_r, start_r, &r_recipients, None)?;
                let local_s = round.state(v).s.clone();
                let start_s = labels.range(v, Rel::S, &stats).start;
                distribute_intervals(round, v, Rel::S, &local_s, start_s, &s_recipients, None)?;
            }
            Ok(())
        })
    }
}

/// Ship everything to one designated node (the simplest correct protocol;
/// optimal only when that node already holds more than half the data).
#[derive(Clone, Debug)]
pub struct AllToOne {
    target: NodeId,
}

impl AllToOne {
    /// Create with the gathering node.
    pub fn new(target: NodeId) -> Self {
        AllToOne { target }
    }
}

impl Protocol for AllToOne {
    type Output = ();

    fn name(&self) -> String {
        format!("all-to-one({})", self.target)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        if !session.tree().is_compute(self.target) {
            return Err(SimError::SendToRouter(self.target));
        }
        all_to_node(session, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    #[test]
    fn uniform_hypercube_covers_pairs() {
        let t = builders::star(6, 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        for a in 0..30u64 {
            p.push(vc[(a % 6) as usize], Rel::R, a);
            p.push(vc[((a + 3) % 6) as usize], Rel::S, 100 + a);
        }
        let run = run_protocol(&t, &p, &UniformHyperCube::new()).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn uniform_hypercube_nonsquare_p() {
        // p = 5 → 2×2 grid, one idle node; still correct.
        let t = builders::star(5, 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        for a in 0..25u64 {
            p.push(vc[(a % 5) as usize], Rel::R, a);
            p.push(vc[((a + 2) % 5) as usize], Rel::S, 100 + a);
        }
        let run = run_protocol(&t, &p, &UniformHyperCube::new()).unwrap();
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn all_to_one_covers_pairs() {
        let t = builders::rack_tree(&[(2, 1.0, 1.0), (2, 1.0, 1.0)], 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..10).collect());
        p.set_s(NodeId(3), (10..20).collect());
        let run = run_protocol(&t, &p, &AllToOne::new(NodeId(1))).unwrap();
        verify::check_pair_coverage(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        assert!(run.final_state[1].r.len() == 10 && run.final_state[1].s.len() == 10);
    }

    #[test]
    fn all_to_one_rejects_router_target() {
        let t = builders::star(2, 1.0);
        let p = Placement::empty(&t);
        assert!(run_protocol(&t, &p, &AllToOne::new(NodeId(2))).is_err());
    }
}
