//! Global labelling of tuples and interval-based distribution.
//!
//! The wHC protocols order the compute nodes (by node id) and label each
//! node's local tuples consecutively, so tuple `j` of node `v` has global
//! index `offset(v) + j`. Every output pair then maps to a point of the
//! `{1..|R|} × {1..|S|}` grid, and "send node `u` the `R`-rows of its
//! square" becomes an interval transfer.

use std::ops::Range;

use tamp_simulator::{PlacementStats, Rel, RoundCtx, SimError, Value};
use tamp_topology::{NodeId, Tree};

/// Global index offsets per node for both relations.
#[derive(Clone, Debug)]
pub struct Labels {
    r_offset: Vec<u64>,
    s_offset: Vec<u64>,
    /// `|R|`.
    pub total_r: u64,
    /// `|S|`.
    pub total_s: u64,
}

impl Labels {
    /// Label tuples following the node-id order of compute nodes.
    pub fn new(tree: &Tree, stats: &PlacementStats) -> Self {
        let n = tree.num_nodes();
        let mut r_offset = vec![0u64; n];
        let mut s_offset = vec![0u64; n];
        let (mut r_acc, mut s_acc) = (0u64, 0u64);
        for &v in tree.compute_nodes() {
            r_offset[v.index()] = r_acc;
            s_offset[v.index()] = s_acc;
            r_acc += stats.r_v(v);
            s_acc += stats.s_v(v);
        }
        Labels {
            r_offset,
            s_offset,
            total_r: r_acc,
            total_s: s_acc,
        }
    }

    /// Global index range of node `v`'s local tuples in relation `rel`.
    pub fn range(&self, v: NodeId, rel: Rel, stats: &PlacementStats) -> Range<u64> {
        match rel {
            Rel::R => self.r_offset[v.index()]..self.r_offset[v.index()] + stats.r_v(v),
            Rel::S => self.s_offset[v.index()]..self.s_offset[v.index()] + stats.s_v(v),
        }
    }
}

/// Split the local index interval `[local_start, local_start + local_len)`
/// into maximal segments whose recipient set is constant, returning
/// `(recipients, local index sub-range)` pairs. Segments covered by no
/// recipient are omitted.
pub fn interval_segments(
    local_len: usize,
    local_start: u64,
    recipients: &[(NodeId, Range<u64>)],
) -> Vec<(Vec<NodeId>, Range<usize>)> {
    if local_len == 0 {
        return Vec::new();
    }
    let local_end = local_start + local_len as u64;
    // Breakpoints where the recipient set can change.
    let mut cuts: Vec<u64> = vec![local_start, local_end];
    for (_, range) in recipients {
        for b in [range.start, range.end] {
            if b > local_start && b < local_end {
                cuts.push(b);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut out = Vec::new();
    for seg in cuts.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        let dsts: Vec<NodeId> = recipients
            .iter()
            .filter(|(_, range)| range.start <= a && b <= range.end)
            .map(|&(v, _)| v)
            .collect();
        if dsts.is_empty() {
            continue;
        }
        out.push((dsts, (a - local_start) as usize..(b - local_start) as usize));
    }
    out
}

/// Send the locally-held tuples of `rel` (with global indices starting at
/// `local_start`) to every recipient whose interval contains them, as
/// segment multicasts: tuples in the same set of recipient intervals share
/// one send, so common path prefixes are charged once.
///
/// With `relay = Some(r)`, each segment is routed `src → r → dsts`
/// (the §4.4 pattern); otherwise directly.
pub fn distribute_intervals(
    round: &mut RoundCtx<'_, '_>,
    src: NodeId,
    rel: Rel,
    local: &[Value],
    local_start: u64,
    recipients: &[(NodeId, Range<u64>)],
    relay: Option<NodeId>,
) -> Result<(), SimError> {
    for (dsts, idx) in interval_segments(local.len(), local_start, recipients) {
        let slice = &local[idx];
        match relay {
            Some(r) => round.send_via(src, r, &dsts, rel, slice)?,
            None => round.send(src, &dsts, rel, slice)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, Placement, Protocol, Session};
    use tamp_topology::builders;

    #[test]
    fn labels_are_consecutive() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![10, 11]);
        p.set_r(NodeId(2), vec![12, 13, 14]);
        p.set_s(NodeId(1), vec![20]);
        let stats = p.stats();
        let labels = Labels::new(&t, &stats);
        assert_eq!(labels.range(NodeId(0), Rel::R, &stats), 0..2);
        assert_eq!(labels.range(NodeId(1), Rel::R, &stats), 2..2);
        assert_eq!(labels.range(NodeId(2), Rel::R, &stats), 2..5);
        assert_eq!(labels.range(NodeId(1), Rel::S, &stats), 0..1);
        assert_eq!(labels.total_r, 5);
        assert_eq!(labels.total_s, 1);
    }

    struct Distribute {
        recipients: Vec<(NodeId, Range<u64>)>,
    }

    impl Protocol for Distribute {
        type Output = ();
        fn name(&self) -> String {
            "distribute".into()
        }
        fn run(&self, s: &mut Session<'_>) -> Result<(), SimError> {
            let vals: Vec<Value> = s.state(NodeId(0)).r.clone();
            s.round(|round| {
                distribute_intervals(round, NodeId(0), Rel::R, &vals, 0, &self.recipients, None)
            })
        }
    }

    #[test]
    fn interval_distribution_delivers_and_dedups() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (100..110).collect()); // global indices 0..10
                                                  // Node 1 wants [0, 6), node 2 wants [4, 10): overlap [4, 6).
        let proto = Distribute {
            recipients: vec![(NodeId(1), 0..6), (NodeId(2), 4..10)],
        };
        let run = run_protocol(&t, &p, &proto).unwrap();
        assert_eq!(run.final_state[1].r, (100..106).collect::<Vec<_>>());
        assert_eq!(run.final_state[2].r, (104..110).collect::<Vec<_>>());
        // Uplink 0→hub carries each tuple once: 10, not 12.
        let up = t.dir_edge_between(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(run.cost.edge_total(up), 10);
    }

    #[test]
    fn uncovered_segments_are_skipped() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..10).collect());
        let proto = Distribute {
            recipients: vec![(NodeId(1), 3..5)],
        };
        let run = run_protocol(&t, &p, &proto).unwrap();
        assert_eq!(run.final_state[1].r, vec![3, 4]);
        assert_eq!(run.cost.total_tuples(), 4); // 2 tuples × 2 hops
    }
}
