//! Topology-agnostic baseline: the uniform hash join.
//!
//! Classic MPC algorithms hash every tuple uniformly across all `p`
//! compute nodes, ignoring both the topology and the initial distribution.
//! On a homogeneous star this is fine; on heterogeneous trees it floods
//! thin links. `TreeIntersect`'s advantage over this baseline is exactly
//! the paper's motivation.

use std::collections::HashMap;

use tamp_simulator::{Protocol, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

use crate::hashing::WeightedHash;

use super::tree::emit_intersection;

/// Uniform (topology-agnostic) hash join: every tuple of both relations is
/// sent to a uniformly-hashed compute node.
#[derive(Clone, Debug)]
pub struct UniformHashJoin {
    seed: u64,
}

impl UniformHashJoin {
    /// Create with a hash seed.
    pub fn new(seed: u64) -> Self {
        UniformHashJoin { seed }
    }
}

impl Protocol for UniformHashJoin {
    type Output = Vec<Value>;

    fn name(&self) -> String {
        format!("uniform-hash-join(seed={})", self.seed)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        let weighted: Vec<(NodeId, u64)> = tree.compute_nodes().iter().map(|&v| (v, 1)).collect();
        let hash = WeightedHash::new(self.seed, &weighted).expect("at least one compute node");
        session.round(|round| {
            for &v in tree.compute_nodes() {
                for rel in [Rel::R, Rel::S] {
                    let mut by_dst: HashMap<NodeId, Vec<Value>> = HashMap::new();
                    for &a in round.state(v).rel(rel) {
                        by_dst.entry(hash.pick(a)).or_default().push(a);
                    }
                    for (dst, vals) in by_dst {
                        round.send(v, &[dst], rel, &vals)?;
                    }
                }
            }
            Ok(())
        })?;
        Ok(emit_intersection(session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    #[test]
    fn uniform_join_is_correct() {
        let t = builders::rack_tree(&[(2, 1.0, 2.0), (2, 1.0, 2.0)], 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..40).collect());
        p.set_s(NodeId(3), (20..60).collect());
        let run = run_protocol(&t, &p, &UniformHashJoin::new(2)).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        let expected: Vec<u64> = (20..40).collect();
        assert_eq!(run.output, expected);
    }

    #[test]
    fn uniform_join_pays_on_slow_links() {
        // One leaf has a 100× slower link. The uniform join still sends it
        // ~1/p of all data; the weighted algorithm avoids it when that node
        // holds nothing.
        let t = builders::heterogeneous_star(&[10.0, 10.0, 10.0, 0.1]);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..500).collect());
        p.set_s(NodeId(1), (0..500).collect());
        let uniform = run_protocol(&t, &p, &UniformHashJoin::new(3)).unwrap();
        let weighted = run_protocol(&t, &p, &crate::intersection::TreeIntersect::new(3)).unwrap();
        assert!(
            uniform.cost.tuple_cost() > 10.0 * weighted.cost.tuple_cost(),
            "uniform {} vs weighted {}",
            uniform.cost.tuple_cost(),
            weighted.cost.tuple_cost()
        );
    }
}
