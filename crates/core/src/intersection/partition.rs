//! Balanced partitions (Definition 1) and Algorithm 3.
//!
//! Edges split into α-edges (`min{Σ_{V⁺}N_v, Σ_{V⁻}N_v} < |R|`) and
//! β-edges (the rest). Lemma 2 shows the β-edges induce a connected
//! subtree `G_β`. Algorithm 3 peels leaves of `G_β`, greedily merging the
//! α-connected groups hanging off them until each group's weight reaches
//! `|R|`, yielding a partition of the compute nodes where:
//!
//! 1. α-connected nodes share a block;
//! 2. each edge lies in the spanning tree of at most one block;
//! 3. every block holds at least `|R|` data;
//! 4. every β-edge inside a block's spanning tree has one block-side of
//!    weight at most `|R|`.

use tamp_topology::{CutWeights, EdgeId, NodeId, Tree};

/// A balanced partition of the compute nodes, plus the edge classification
/// it was derived from.
#[derive(Clone, Debug)]
pub struct BalancedPartition {
    /// Blocks of compute nodes; their union is `V_C`, pairwise disjoint.
    pub blocks: Vec<Vec<NodeId>>,
    /// `alpha[e] == true` iff `e` is an α-edge.
    pub alpha: Vec<bool>,
    /// The threshold `|R|` (cardinality of the smaller relation) used.
    pub small_total: u64,
}

impl BalancedPartition {
    /// Number of blocks `k`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The block index of each compute node, indexed by node id
    /// (`usize::MAX` for routers).
    pub fn block_of(&self, num_nodes: usize) -> Vec<usize> {
        let mut out = vec![usize::MAX; num_nodes];
        for (i, block) in self.blocks.iter().enumerate() {
            for &v in block {
                out[v.index()] = i;
            }
        }
        out
    }
}

/// Classify each edge as α (`true`) or β (`false`) against threshold
/// `small_total = |R|`.
pub fn classify_alpha_edges(tree: &Tree, cuts: &CutWeights, small_total: u64) -> Vec<bool> {
    tree.edges()
        .map(|e| cuts.min_side(e) < small_total)
        .collect()
}

/// Algorithm 3: compute a balanced partition for per-node weights `n`
/// (`N_v`, zero at routers) and threshold `small_total = |R| =
/// min(|R|, |S|)`.
///
/// Runs in `O(|V|²)` worst case (the paper achieves `O(|V|)`; we favor a
/// simple scan since trees here are small).
pub fn balanced_partition(tree: &Tree, n: &[u64], small_total: u64) -> BalancedPartition {
    assert_eq!(n.len(), tree.num_nodes());
    let cuts = CutWeights::compute(tree, n);
    let alpha = classify_alpha_edges(tree, &cuts, small_total);

    // No β-edge: the whole compute set is one block (G_β is empty and all
    // nodes are α-connected).
    if alpha.iter().all(|&a| a) {
        return BalancedPartition {
            blocks: vec![tree.compute_nodes().to_vec()],
            alpha,
            small_total,
        };
    }

    let nv = tree.num_nodes();
    // β-adjacency and G_β membership.
    let mut beta_adj: Vec<Vec<usize>> = vec![Vec::new(); nv];
    let mut in_gbeta = vec![false; nv];
    for e in tree.edges() {
        if !alpha[e.index()] {
            let (u, v) = tree.endpoints(e);
            beta_adj[u.index()].push(v.index());
            beta_adj[v.index()].push(u.index());
            in_gbeta[u.index()] = true;
            in_gbeta[v.index()] = true;
        }
    }

    // Γ(x): compute nodes α-connected to each G_β vertex x. Every compute
    // node belongs to exactly one Γ (tree acyclicity ⇒ α-components contain
    // at most one G_β vertex, and with E_β ≠ ∅ each component reaches one).
    let mut gamma: Vec<Vec<NodeId>> = vec![Vec::new(); nv];
    let mut weight: Vec<u64> = vec![0; nv];
    let mut visited = vec![false; nv];
    for x in 0..nv {
        if !in_gbeta[x] {
            continue;
        }
        // BFS over α-edges from x.
        let mut queue = vec![x];
        visited[x] = true;
        while let Some(y) = queue.pop() {
            let y_id = NodeId::from_index(y);
            if tree.is_compute(y_id) {
                gamma[x].push(y_id);
                weight[x] += n[y];
            }
            for &(z, e) in tree.neighbors(y_id) {
                if alpha[e.index()] && !visited[z.index()] {
                    visited[z.index()] = true;
                    queue.push(z.index());
                }
            }
        }
    }
    debug_assert!(
        tree.compute_nodes().iter().all(|&c| visited[c.index()]),
        "every compute node must be α-connected to a G_β vertex"
    );

    // Peel leaves of G_β by smallest weight.
    let mut alive = in_gbeta.clone();
    let mut deg: Vec<usize> = (0..nv).map(|x| beta_adj[x].len()).collect();
    let mut alive_count = alive.iter().filter(|&&a| a).count();
    let mut blocks: Vec<Vec<NodeId>> = Vec::new();
    while alive_count > 1 {
        // Leaf of G_β with minimal weight.
        let x = (0..nv)
            .filter(|&x| alive[x] && deg[x] <= 1)
            .min_by_key(|&x| (weight[x], x))
            .expect("a tree with ≥ 2 vertices has a leaf");
        if weight[x] >= small_total {
            blocks.push(std::mem::take(&mut gamma[x]));
        } else {
            let y = beta_adj[x]
                .iter()
                .copied()
                .find(|&y| alive[y])
                .expect("non-isolated leaf has an alive neighbor");
            let moved = std::mem::take(&mut gamma[x]);
            gamma[y].extend(moved);
            weight[y] += weight[x];
        }
        alive[x] = false;
        alive_count -= 1;
        for &y in &beta_adj[x] {
            if alive[y] {
                deg[y] -= 1;
            }
        }
    }
    // The last vertex: Lemma 3 guarantees its weight reaches |R| whenever
    // it still carries nodes.
    if let Some(x) = (0..nv).find(|&x| alive[x]) {
        if !gamma[x].is_empty() {
            if weight[x] >= small_total || blocks.is_empty() {
                blocks.push(std::mem::take(&mut gamma[x]));
            } else {
                // Defensive: cannot happen per Lemma 3, but never lose nodes.
                debug_assert!(false, "last G_β vertex below threshold");
                let moved = std::mem::take(&mut gamma[x]);
                blocks.last_mut().expect("nonempty").extend(moved);
            }
        }
    }
    BalancedPartition {
        blocks,
        alpha,
        small_total,
    }
}

/// The Algorithm-2 routing plan: the balanced partition plus one
/// distribution-weighted hash per block (`Pr[h_i(a) = v] = N_v / Σ_{u ∈
/// V_Cⁱ} N_u`), seeded per block. This is the exact plan
/// [`TreeIntersect`](super::TreeIntersect) and
/// [`KeyedEquiJoin`](super::KeyedEquiJoin) derive internally; it is
/// exposed so other layers (the query planner's tree-partition join
/// strategy) can route — and therefore meter — identically. A block's
/// hash is `None` only when the block holds no data.
pub fn partition_hashes(
    tree: &Tree,
    n: &[u64],
    small_total: u64,
    seed: u64,
) -> (BalancedPartition, Vec<Option<crate::hashing::WeightedHash>>) {
    let partition = balanced_partition(tree, n, small_total);
    let hashes = partition
        .blocks
        .iter()
        .enumerate()
        .map(|(i, block)| {
            let weighted: Vec<(NodeId, u64)> = block.iter().map(|&v| (v, n[v.index()])).collect();
            crate::hashing::WeightedHash::new(
                seed.wrapping_add(i as u64).wrapping_mul(0x9E37),
                &weighted,
            )
        })
        .collect();
    (partition, hashes)
}

/// Check all four properties of Definition 1 for `partition` under weights
/// `n` and threshold `small_total`. Returns a description of the first
/// violated property.
pub fn verify_balanced_partition(
    tree: &Tree,
    n: &[u64],
    small_total: u64,
    partition: &BalancedPartition,
) -> Result<(), String> {
    let nv = tree.num_nodes();
    // Partition sanity: blocks cover V_C disjointly.
    let block_of = partition.block_of(nv);
    for &c in tree.compute_nodes() {
        if block_of[c.index()] == usize::MAX {
            return Err(format!("compute node {c} is in no block"));
        }
    }
    let assigned: usize = partition.blocks.iter().map(Vec::len).sum();
    if assigned != tree.num_compute() {
        return Err(format!(
            "blocks assign {assigned} slots to {} compute nodes",
            tree.num_compute()
        ));
    }

    // Property 1: α-connected compute nodes share a block.
    for e in tree.edges() {
        if !partition.alpha[e.index()] {
            continue;
        }
        // Contract α-edges: both endpoint components must agree. Simpler:
        // BFS α-components and check.
        // (Handled below via component scan.)
    }
    {
        let mut comp = vec![usize::MAX; nv];
        let mut next = 0usize;
        for start in 0..nv {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            let mut queue = vec![start];
            while let Some(y) = queue.pop() {
                for &(z, e) in tree.neighbors(NodeId::from_index(y)) {
                    if partition.alpha[e.index()] && comp[z.index()] == usize::MAX {
                        comp[z.index()] = next;
                        queue.push(z.index());
                    }
                }
            }
            next += 1;
        }
        for e in tree.edges() {
            let (u, v) = tree.endpoints(e);
            if partition.alpha[e.index()] {
                debug_assert_eq!(comp[u.index()], comp[v.index()]);
            }
        }
        let mut comp_block = vec![usize::MAX; next];
        for &c in tree.compute_nodes() {
            let k = comp[c.index()];
            if comp_block[k] == usize::MAX {
                comp_block[k] = block_of[c.index()];
            } else if comp_block[k] != block_of[c.index()] {
                return Err(format!(
                    "property 1: α-component of {c} spans blocks {} and {}",
                    comp_block[k],
                    block_of[c.index()]
                ));
            }
        }
    }

    // Spanning-tree edge sets per block: edge e belongs to block i's
    // spanning tree iff members of block i lie on both sides of e.
    let spanning: Vec<Vec<EdgeId>> = partition
        .blocks
        .iter()
        .map(|block| {
            let mut ind = vec![0u64; nv];
            for &v in block {
                ind[v.index()] = 1;
            }
            let cw = CutWeights::compute(tree, &ind);
            tree.edges()
                .filter(|&e| cw.side_u(e) > 0 && cw.side_v(e) > 0)
                .collect()
        })
        .collect();

    // Property 2: each edge in ≤ 1 spanning tree.
    let mut seen = vec![usize::MAX; tree.num_edges()];
    for (i, edges) in spanning.iter().enumerate() {
        for &e in edges {
            if seen[e.index()] != usize::MAX {
                return Err(format!(
                    "property 2: edge {e:?} in spanning trees of blocks {} and {i}",
                    seen[e.index()]
                ));
            }
            seen[e.index()] = i;
        }
    }

    // Property 3: block weight ≥ |R|.
    for (i, block) in partition.blocks.iter().enumerate() {
        let w: u64 = block.iter().map(|&v| n[v.index()]).sum();
        if w < small_total {
            return Err(format!(
                "property 3: block {i} has weight {w} < {small_total}"
            ));
        }
    }

    // Property 4: β-edges in a block's spanning tree have a light side.
    for (i, block) in partition.blocks.iter().enumerate() {
        let mut restricted = vec![0u64; nv];
        for &v in block {
            restricted[v.index()] = n[v.index()];
        }
        let cw = CutWeights::compute(tree, &restricted);
        for &e in &spanning[i] {
            if !partition.alpha[e.index()] && cw.min_side(e) > small_total {
                return Err(format!(
                    "property 4: β-edge {e:?} in block {i} has min side {} > {small_total}",
                    cw.min_side(e)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    fn weights(tree: &Tree, per_compute: &[u64]) -> Vec<u64> {
        let mut n = vec![0u64; tree.num_nodes()];
        for (&v, &w) in tree.compute_nodes().iter().zip(per_compute) {
            n[v.index()] = w;
        }
        n
    }

    #[test]
    fn single_block_when_no_beta_edges() {
        // Tiny |R| relative to every cut ⇒ all edges β... inverted: alpha
        // edges have min side < |R|. With |R| large, all edges are α.
        let t = builders::star(4, 1.0);
        let n = weights(&t, &[10, 10, 10, 10]);
        let p = balanced_partition(&t, &n, 15);
        // Every cut min-side is 10 < 15 ⇒ all α ⇒ one block.
        assert_eq!(p.num_blocks(), 1);
        assert_eq!(p.blocks[0].len(), 4);
        verify_balanced_partition(&t, &n, 15, &p).unwrap();
    }

    #[test]
    fn star_small_r_gives_many_blocks() {
        // |R| = 1: every edge with data on both sides is β.
        let t = builders::star(4, 1.0);
        let n = weights(&t, &[5, 5, 5, 5]);
        let p = balanced_partition(&t, &n, 1);
        verify_balanced_partition(&t, &n, 1, &p).unwrap();
        // Each node alone already meets the threshold.
        assert_eq!(p.num_blocks(), 4);
    }

    #[test]
    fn merging_below_threshold() {
        let t = builders::star(4, 1.0);
        let n = weights(&t, &[3, 3, 3, 11]);
        // Threshold 6: leaves with 3 must merge.
        let p = balanced_partition(&t, &n, 6);
        verify_balanced_partition(&t, &n, 6, &p).unwrap();
        for block in &p.blocks {
            let w: u64 = block.iter().map(|&v| n[v.index()]).sum();
            assert!(w >= 6);
        }
    }

    #[test]
    fn rack_tree_partition_valid() {
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (3, 1.0, 2.0), (2, 1.0, 2.0)], 4.0);
        let n = weights(&t, &[4, 9, 2, 7, 1, 12, 3, 8]);
        for small in [1u64, 3, 8, 15, 23] {
            let p = balanced_partition(&t, &n, small);
            verify_balanced_partition(&t, &n, small, &p)
                .unwrap_or_else(|e| panic!("small={small}: {e}"));
        }
    }

    #[test]
    fn random_trees_partition_valid() {
        for seed in 0..30u64 {
            let t = builders::random_tree(10, 6, 0.5, 8.0, seed);
            let mut n = vec![0u64; t.num_nodes()];
            let mut total = 0u64;
            for (i, &v) in t.compute_nodes().iter().enumerate() {
                let w = crate::hashing::mix64(seed * 100 + i as u64) % 20;
                n[v.index()] = w;
                total += w;
            }
            // small ≤ N/2 as guaranteed by the caller (|R| ≤ |S|).
            for small in [0u64, 1, total / 8 + 1, total / 2] {
                let p = balanced_partition(&t, &n, small);
                verify_balanced_partition(&t, &n, small, &p)
                    .unwrap_or_else(|e| panic!("seed={seed} small={small}: {e}"));
            }
        }
    }

    #[test]
    fn zero_threshold_every_group_emitted() {
        let t = builders::star(3, 1.0);
        let n = weights(&t, &[2, 0, 4]);
        let p = balanced_partition(&t, &n, 0);
        verify_balanced_partition(&t, &n, 0, &p).unwrap();
    }
}
