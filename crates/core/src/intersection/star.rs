//! Algorithm 1: `StarIntersect` — one-round set intersection on a
//! symmetric star.
//!
//! Nodes split into `V_α = {v : min{N_v, N − N_v} < |R|}` and
//! `V_β = V_C \ V_α`. A weighted random hash `h` maps each domain value to
//! node `v` with probability `N_v / N'` for `v ∈ V_α` and `|R_v| / N'` for
//! `v ∈ V_β`, where `N' = |R| + Σ_{v∈V_α} |S_v|`. Every `R`-tuple is
//! multicast to `V_β ∪ {h(a)}`; `S`-tuples of `V_α` nodes go to `h(a)`
//! (nodes in `V_β` keep their `S` local and join against the full `R` they
//! receive). Lemma 1: cost is `O(log N · log |V|)` from optimal w.h.p.

use std::collections::HashMap;

use tamp_simulator::{Protocol, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

use crate::hashing::WeightedHash;

use super::tree::emit_intersection;

/// One-round randomized set intersection for star topologies
/// (Algorithm 1). Returns the emitted intersection, sorted.
#[derive(Clone, Debug)]
pub struct StarIntersect {
    seed: u64,
}

impl StarIntersect {
    /// Create with a hash seed (the protocol's only randomness).
    pub fn new(seed: u64) -> Self {
        StarIntersect { seed }
    }
}

impl Protocol for StarIntersect {
    type Output = Vec<Value>;

    fn name(&self) -> String {
        format!("star-intersect(seed={})", self.seed)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        if tree.num_nodes() != tree.num_compute() + 1 || !tree.compute_nodes_are_leaves() {
            return Err(SimError::Protocol(
                "StarIntersect requires a star topology; use TreeIntersect for general trees"
                    .into(),
            ));
        }
        let stats = session.stats().clone();
        // Roles: `small` plays R (the smaller relation).
        let (small, big) = if stats.total_r <= stats.total_s {
            (Rel::R, Rel::S)
        } else {
            (Rel::S, Rel::R)
        };
        let small_total = stats.total_rel(small);
        let n_total = stats.total_n();
        if small_total == 0 {
            // Empty intersection; nothing to communicate.
            return Ok(Vec::new());
        }

        let computes: Vec<NodeId> = tree.compute_nodes().to_vec();
        let v_alpha: Vec<NodeId> = computes
            .iter()
            .copied()
            .filter(|&v| stats.n_v(v).min(n_total - stats.n_v(v)) < small_total)
            .collect();
        let v_beta: Vec<NodeId> = computes
            .iter()
            .copied()
            .filter(|&v| stats.n_v(v).min(n_total - stats.n_v(v)) >= small_total)
            .collect();

        // Hash weights: N_v on V_α, |R_v| (= small_v) on V_β.
        let weighted: Vec<(NodeId, u64)> = v_alpha
            .iter()
            .map(|&v| (v, stats.n_v(v)))
            .chain(v_beta.iter().map(|&v| (v, stats.rel(small)[v.index()])))
            .collect();
        let hash = WeightedHash::new(self.seed, &weighted)
            .expect("total weight ≥ |R| > 0 by construction");

        session.round(|round| {
            for &v in &computes {
                // Small-relation tuples → V_β ∪ {h(a)} (grouped by hash
                // target so shared path segments are charged once).
                let mut by_dst: HashMap<NodeId, Vec<Value>> = HashMap::new();
                for &a in round.state(v).rel(small) {
                    by_dst.entry(hash.pick(a)).or_default().push(a);
                }
                for (dst, vals) in by_dst {
                    let mut dsts = v_beta.clone();
                    if !dsts.contains(&dst) {
                        dsts.push(dst);
                    }
                    round.send(v, &dsts, small, &vals)?;
                }
                // Big-relation tuples of V_α nodes → h(a).
                if v_alpha.contains(&v) {
                    let mut by_dst: HashMap<NodeId, Vec<Value>> = HashMap::new();
                    for &a in round.state(v).rel(big) {
                        by_dst.entry(hash.pick(a)).or_default().push(a);
                    }
                    for (dst, vals) in by_dst {
                        round.send(v, &[dst], big, &vals)?;
                    }
                }
            }
            Ok(())
        })?;

        Ok(emit_intersection(session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    #[test]
    fn computes_intersection_on_uniform_star() {
        let t = builders::star(4, 1.0);
        let mut p = Placement::empty(&t);
        // R = {0..20}, S = {10..40}, intersection {10..20}.
        for (i, &v) in t.compute_nodes().iter().enumerate() {
            p.set_r(v, ((i * 5) as u64..(i * 5 + 5) as u64).collect());
            p.set_s(v, ((10 + i * 8) as u64..(10 + i * 8 + 8) as u64).collect());
        }
        let run = run_protocol(&t, &p, &StarIntersect::new(7)).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        let expected: Vec<u64> = verify::true_intersection(&p.all_r(), &p.all_s())
            .into_iter()
            .collect();
        assert_eq!(run.output, expected);
    }

    #[test]
    fn handles_heavy_beta_node() {
        // One node holds almost all of S, making it a β node: R must be
        // broadcast to it.
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![1, 2, 3]);
        p.set_s(NodeId(1), (2..100).collect());
        p.set_s(NodeId(2), vec![1]);
        let run = run_protocol(&t, &p, &StarIntersect::new(3)).unwrap();
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        assert_eq!(run.output, vec![1, 2, 3]);
    }

    #[test]
    fn swaps_roles_when_s_is_smaller() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..50).collect());
        p.set_r(NodeId(1), (50..100).collect());
        p.set_s(NodeId(2), vec![7, 99, 200]);
        let run = run_protocol(&t, &p, &StarIntersect::new(11)).unwrap();
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        assert_eq!(run.output, vec![7, 99]);
    }

    #[test]
    fn empty_relation_is_free() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_s(NodeId(0), vec![1, 2, 3]);
        let run = run_protocol(&t, &p, &StarIntersect::new(1)).unwrap();
        assert!(run.output.is_empty());
        assert_eq!(run.cost.tuple_cost(), 0.0);
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn rejects_non_star() {
        let t = builders::rack_tree(&[(2, 1.0, 1.0), (2, 1.0, 1.0)], 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![1]);
        p.set_s(NodeId(1), vec![1]);
        assert!(matches!(
            run_protocol(&t, &p, &StarIntersect::new(0)),
            Err(SimError::Protocol(_))
        ));
    }
}
