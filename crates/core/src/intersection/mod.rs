//! Set intersection (Section 3).
//!
//! Given sets `R` and `S` partitioned over the compute nodes, enumerate
//! `R ∩ S` — each result must be emitted by at least one node. This task is
//! communication-heavy but computation-light, so the entire game is routing
//! data according to each link's share of the lower bound
//!
//! ```text
//! C_LB = max_e (1/w_e) · min{ |R|, |S|, Σ_{v∈V⁻_e} N_v, Σ_{v∈V⁺_e} N_v }
//! ```
//!
//! (Theorem 1, via lopsided set disjointness). The matching protocols are
//! single-round weighted hash joins:
//!
//! - [`StarIntersect`] — Algorithm 1, for star topologies;
//! - [`TreeIntersect`] — Algorithm 2, for arbitrary symmetric trees, built
//!   on the *balanced partition* of Definition 1 / Algorithm 3
//!   ([`partition`]);
//! - [`UniformHashJoin`] — the topology-agnostic baseline (classic
//!   MPC-style uniform hashing).
//!
//! Notably, the protocols never read link bandwidths — only the topology
//! and the initial cardinalities (the paper's closing remark of §3.3).

mod baseline;
pub mod join;
mod lower_bound;
pub mod partition;
mod star;
mod tree;

pub use baseline::UniformHashJoin;
pub use join::KeyedEquiJoin;
pub use lower_bound::intersection_lower_bound;
pub use partition::{balanced_partition, verify_balanced_partition, BalancedPartition};
pub use star::StarIntersect;
pub use tree::TreeIntersect;
