//! Theorem 1: the set-intersection lower bound on symmetric trees.

use tamp_simulator::PlacementStats;
use tamp_topology::{CutWeights, Tree};

use crate::ratio::LowerBound;

/// Evaluate Theorem 1 on a concrete topology and placement:
///
/// ```text
/// C_LB = max_e (1/w_e) · min{ |R|, |S|, Σ_{v∈V⁻_e} N_v, Σ_{v∈V⁺_e} N_v }
/// ```
///
/// in tuples. The bound is derived by reducing, across every edge `e`, to
/// lopsided set disjointness between the two sides of the cut; it holds for
/// any number of rounds.
///
/// # Panics
/// Panics if the tree is not symmetric (the theorem is stated for
/// symmetric trees).
pub fn intersection_lower_bound(tree: &Tree, stats: &PlacementStats) -> LowerBound {
    tree.require_symmetric()
        .expect("Theorem 1 requires a symmetric tree");
    let cuts = CutWeights::compute(tree, &stats.n);
    let cap = stats.total_r.min(stats.total_s);
    let mut best = LowerBound::zero();
    for e in tree.edges() {
        let bound_tuples = cap.min(cuts.min_side(e)) as f64;
        let value = tree.sym_bandwidth(e).cost_of(bound_tuples);
        if value > best.value() {
            best = LowerBound::new(value, Some(e));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::Placement;
    use tamp_topology::{builders, NodeId};

    #[test]
    fn star_bound_is_min_side_over_bandwidth() {
        let t = builders::heterogeneous_star(&[1.0, 4.0]);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..10).collect());
        p.set_s(NodeId(1), (0..30).collect());
        let lb = intersection_lower_bound(&t, &p.stats());
        // Edge 0 (bw 1): min{10, 30, 10, 30} = 10 → 10.
        // Edge 1 (bw 4): min{10, 30, 30, 10} = 10 → 2.5.
        assert_eq!(lb.value(), 10.0);
        assert!(lb.witness().is_some());
    }

    #[test]
    fn bound_caps_at_smaller_relation() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![1]);
        p.set_s(NodeId(1), (0..100).collect());
        let lb = intersection_lower_bound(&t, &p.stats());
        // min{1, 100, 1, 100} = 1 even though the cut splits 1 vs 100.
        assert_eq!(lb.value(), 1.0);
    }

    #[test]
    fn all_on_one_node_gives_zero() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..5).collect());
        p.set_s(NodeId(0), (5..9).collect());
        let lb = intersection_lower_bound(&t, &p.stats());
        assert_eq!(lb.value(), 0.0);
        assert!(lb.witness().is_none());
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric() {
        let t = builders::mpc_star(2);
        let p = Placement::empty(&t);
        intersection_lower_bound(&t, &p.stats());
    }
}
