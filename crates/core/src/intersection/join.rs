//! Extension (paper §7, future work): a simple equi-join between two
//! relations.
//!
//! The paper closes by naming "a simple join between two relations" as the
//! next task to analyze in the topology-aware model. Structurally, an
//! equi-join is set intersection on *keys* with payloads carried along:
//! tuples of `R` and `S` are keyed, and the output is every pair
//! `(r, s)` with `key(r) = key(s)`. The one-round weighted-hash machinery
//! of Algorithm 2 applies unchanged — hash by key instead of by value —
//! with the caveat that the cost bound now depends on join skew (a heavy
//! key multiplies output, which Theorem 1's input-based bound does not
//! see; output-optimal bounds are genuinely future work).
//!
//! A tuple is a `Value` whose top bits are the key and bottom
//! `payload_bits` are the payload: `key(v) = v >> payload_bits`.

use std::collections::HashMap;

use tamp_simulator::{NodeState, Protocol, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

use super::partition::partition_hashes;

/// One-round distribution-aware equi-join on symmetric trees: the
/// Algorithm 2 routing, hashed by key. Output: the joined
/// `(r_tuple, s_tuple)` pairs, sorted and deduplicated.
#[derive(Clone, Debug)]
pub struct KeyedEquiJoin {
    seed: u64,
    payload_bits: u32,
}

impl KeyedEquiJoin {
    /// Create with a hash seed; keys are `value >> payload_bits`.
    pub fn new(seed: u64, payload_bits: u32) -> Self {
        assert!(payload_bits < 64);
        KeyedEquiJoin { seed, payload_bits }
    }

    /// The key of a tuple.
    #[inline]
    pub fn key(&self, v: Value) -> Value {
        v >> self.payload_bits
    }
}

impl Protocol for KeyedEquiJoin {
    type Output = Vec<(Value, Value)>;

    fn name(&self) -> String {
        format!(
            "keyed-equi-join(seed={}, payload_bits={})",
            self.seed, self.payload_bits
        )
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        tree.require_symmetric()
            .map_err(|e| SimError::Protocol(e.to_string()))?;
        let stats = session.stats().clone();
        let (small, big) = if stats.total_r <= stats.total_s {
            (Rel::R, Rel::S)
        } else {
            (Rel::S, Rel::R)
        };
        let small_total = stats.total_rel(small);
        if small_total == 0 {
            return Ok(Vec::new());
        }
        let (partition, hashes) = partition_hashes(tree, &stats.n, small_total, self.seed);
        let block_of = partition.block_of(tree.num_nodes());
        let bits = self.payload_bits;
        session.round(|round| {
            for &v in tree.compute_nodes() {
                // Small-relation tuples: multicast to every block's hash
                // target for the tuple's *key*.
                let mut by_dsts: HashMap<Vec<NodeId>, Vec<Value>> = HashMap::new();
                for &a in round.state(v).rel(small) {
                    let key = a >> bits;
                    let mut dsts: Vec<NodeId> =
                        hashes.iter().flatten().map(|h| h.pick(key)).collect();
                    dsts.sort_unstable();
                    dsts.dedup();
                    by_dsts.entry(dsts).or_default().push(a);
                }
                for (dsts, vals) in by_dsts {
                    round.send(v, &dsts, small, &vals)?;
                }
                let bi = block_of[v.index()];
                if bi == usize::MAX {
                    continue;
                }
                if let Some(h) = &hashes[bi] {
                    let mut by_dst: HashMap<NodeId, Vec<Value>> = HashMap::new();
                    for &a in round.state(v).rel(big) {
                        by_dst.entry(h.pick(a >> bits)).or_default().push(a);
                    }
                    for (dst, vals) in by_dst {
                        round.send(v, &[dst], big, &vals)?;
                    }
                }
            }
            Ok(())
        })?;
        Ok(emit_join(session.states(), bits))
    }
}

/// The join pairs the nodes can collectively emit: for each node, hash its
/// known `R` tuples by key and probe with its known `S` tuples.
pub fn emit_join(states: &[NodeState], payload_bits: u32) -> Vec<(Value, Value)> {
    let mut out: Vec<(Value, Value)> = Vec::new();
    for st in states {
        let mut by_key: HashMap<Value, Vec<Value>> = HashMap::new();
        for &r in &st.r {
            by_key.entry(r >> payload_bits).or_default().push(r);
        }
        for &s in &st.s {
            if let Some(rs) = by_key.get(&(s >> payload_bits)) {
                for &r in rs {
                    out.push((r, s));
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Ground truth: all `(r, s)` pairs with matching keys.
pub fn true_join(r: &[Value], s: &[Value], payload_bits: u32) -> Vec<(Value, Value)> {
    let mut by_key: HashMap<Value, Vec<Value>> = HashMap::new();
    for &x in r {
        by_key.entry(x >> payload_bits).or_default().push(x);
    }
    let mut out = Vec::new();
    for &y in s {
        if let Some(rs) = by_key.get(&(y >> payload_bits)) {
            for &x in rs {
                out.push((x, y));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, Placement};
    use tamp_topology::builders;

    /// Tuple with key `k` and payload `p` under 8 payload bits.
    fn kv(k: u64, p: u64) -> Value {
        (k << 8) | (p & 0xFF)
    }

    #[test]
    fn joins_matching_keys_with_payloads() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        // Key 5 appears twice in R and twice in S → 4 output pairs.
        p.set_r(NodeId(0), vec![kv(5, 1), kv(5, 2), kv(7, 3)]);
        p.set_s(NodeId(1), vec![kv(5, 9), kv(8, 4)]);
        p.set_s(NodeId(2), vec![kv(5, 10), kv(7, 11)]);
        let run = run_protocol(&t, &p, &KeyedEquiJoin::new(3, 8)).unwrap();
        assert_eq!(run.rounds, 1);
        let want = true_join(&p.all_r(), &p.all_s(), 8);
        assert_eq!(run.output, want);
        assert_eq!(run.output.len(), 5); // 2×2 on key 5, 1×1 on key 7
    }

    #[test]
    fn join_on_trees_with_skew() {
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes().to_vec();
        for i in 0..240u64 {
            p.push(vc[(i % 6) as usize], Rel::R, kv(i % 40, i));
        }
        for i in 0..720u64 {
            p.push(vc[((i * 5 + 1) % 6) as usize], Rel::S, kv(i % 120, i));
        }
        let run = run_protocol(&t, &p, &KeyedEquiJoin::new(11, 8)).unwrap();
        assert_eq!(run.rounds, 1);
        assert_eq!(run.output, true_join(&p.all_r(), &p.all_s(), 8));
        assert!(!run.output.is_empty());
    }

    #[test]
    fn join_with_no_matches() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![kv(1, 0)]);
        p.set_s(NodeId(1), vec![kv(2, 0)]);
        let run = run_protocol(&t, &p, &KeyedEquiJoin::new(0, 8)).unwrap();
        assert!(run.output.is_empty());
    }

    #[test]
    fn join_cost_tracks_intersection_cost() {
        // With unit payloads the join degenerates to intersection-by-key;
        // its cost should match TreeIntersect on the same key placement
        // up to the hash-seed noise.
        let t = builders::star(4, 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes().to_vec();
        for i in 0..400u64 {
            p.push(vc[(i % 4) as usize], Rel::R, kv(i, 0));
            p.push(vc[((i + 1) % 4) as usize], Rel::S, kv(i + 200, 0));
        }
        let join = run_protocol(&t, &p, &KeyedEquiJoin::new(5, 8)).unwrap();
        let inter = run_protocol(&t, &p, &crate::intersection::TreeIntersect::new(5)).unwrap();
        let (a, b) = (join.cost.tuple_cost(), inter.cost.tuple_cost());
        assert!(
            (a - b).abs() < 0.5 * b.max(1.0),
            "join {a} vs intersect {b}"
        );
    }
}
