//! Algorithm 2: `TreeIntersect` — one-round set intersection on arbitrary
//! symmetric trees via balanced partitions.
//!
//! Given a balanced partition `{V_C¹, …, V_Cᵏ}` (Algorithm 3), each block
//! `i` carries a weighted hash `h_i` with `Pr[h_i(a) = v] = N_v / Σ_{u∈V_Cⁱ}
//! N_u`. Every `R`-tuple is hashed into **all** blocks (one multicast to
//! `{h_1(a), …, h_k(a)}`), while each `S`-tuple is hashed only within its
//! owner's block. Block `i` therefore computes `R ∩ ⋃_{v∈V_Cⁱ} S_v`, and
//! the union over blocks is `R ∩ S`. Theorem 2: cost is
//! `O(log N · log |V|)` from optimal w.h.p., in a single round.

use std::collections::HashMap;

use tamp_simulator::{Protocol, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

use super::partition::partition_hashes;

/// One-round randomized set intersection for symmetric trees
/// (Algorithm 2). Returns the emitted intersection, sorted.
#[derive(Clone, Debug)]
pub struct TreeIntersect {
    seed: u64,
}

impl TreeIntersect {
    /// Create with a hash seed.
    pub fn new(seed: u64) -> Self {
        TreeIntersect { seed }
    }
}

impl Protocol for TreeIntersect {
    type Output = Vec<Value>;

    fn name(&self) -> String {
        format!("tree-intersect(seed={})", self.seed)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        tree.require_symmetric()
            .map_err(|e| SimError::Protocol(e.to_string()))?;
        let stats = session.stats().clone();
        let (small, big) = if stats.total_r <= stats.total_s {
            (Rel::R, Rel::S)
        } else {
            (Rel::S, Rel::R)
        };
        let small_total = stats.total_rel(small);
        if small_total == 0 {
            return Ok(Vec::new());
        }

        // One weighted hash per block, over the block's N_v weights.
        let (partition, hashes) = partition_hashes(tree, &stats.n, small_total, self.seed);
        let block_of = partition.block_of(tree.num_nodes());

        session.round(|round| {
            for &v in tree.compute_nodes() {
                // Small-relation tuples: multicast to {h_i(a)} over all
                // blocks with one send per distinct destination vector.
                let mut by_dsts: HashMap<Vec<NodeId>, Vec<Value>> = HashMap::new();
                for &a in round.state(v).rel(small) {
                    let mut dsts: Vec<NodeId> =
                        hashes.iter().flatten().map(|h| h.pick(a)).collect();
                    dsts.sort_unstable();
                    dsts.dedup();
                    by_dsts.entry(dsts).or_default().push(a);
                }
                for (dsts, vals) in by_dsts {
                    round.send(v, &dsts, small, &vals)?;
                }
                // Big-relation tuples: hash within the owner's block only.
                let bi = block_of[v.index()];
                if bi == usize::MAX {
                    continue;
                }
                if let Some(h) = &hashes[bi] {
                    let mut by_dst: HashMap<NodeId, Vec<Value>> = HashMap::new();
                    for &a in round.state(v).rel(big) {
                        by_dst.entry(h.pick(a)).or_default().push(a);
                    }
                    for (dst, vals) in by_dst {
                        round.send(v, &[dst], big, &vals)?;
                    }
                }
            }
            Ok(())
        })?;

        Ok(emit_intersection(session))
    }
}

/// Collect the union of all nodes' locally emittable intersections, sorted.
pub(crate) fn emit_intersection(session: &Session<'_>) -> Vec<Value> {
    tamp_simulator::verify::emitted_intersection(session.states())
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn planted_placement(
        tree: &tamp_topology::Tree,
        r_size: u64,
        s_size: u64,
        seed: u64,
    ) -> Placement {
        // R = 0..r_size, S = r_size/2..r_size/2+s_size (overlap planted),
        // scattered round-robin with a seeded twist.
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..r_size {
            let v = vc[(crate::hashing::mix64(a ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, a);
        }
        for a in 0..s_size {
            let val = r_size / 2 + a;
            let v = vc[(crate::hashing::mix64(val ^ seed ^ 0xABCD) % vc.len() as u64) as usize];
            p.push(v, Rel::S, val);
        }
        p
    }

    #[test]
    fn correct_on_star() {
        let t = builders::star(5, 1.0);
        let p = planted_placement(&t, 100, 300, 1);
        let run = run_protocol(&t, &p, &TreeIntersect::new(9)).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn correct_on_rack_tree() {
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0), (2, 1.0, 1.0)], 1.0);
        let p = planted_placement(&t, 200, 600, 2);
        let run = run_protocol(&t, &p, &TreeIntersect::new(5)).unwrap();
        assert_eq!(run.rounds, 1);
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn correct_on_random_trees() {
        for seed in 0..10u64 {
            let t = builders::random_tree(8, 5, 0.5, 4.0, seed);
            let p = planted_placement(&t, 80, 240, seed);
            let run = run_protocol(&t, &p, &TreeIntersect::new(seed)).unwrap();
            assert_eq!(run.rounds, 1);
            verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn skewed_placement_still_correct() {
        // All R on one node, S on another, far apart in a caterpillar.
        let t = builders::caterpillar(5, 2, 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        p.set_r(vc[0], (0..50).collect());
        p.set_s(vc[9], (25..75).collect());
        let run = run_protocol(&t, &p, &TreeIntersect::new(4)).unwrap();
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        let expected: Vec<u64> = (25..50).collect();
        assert_eq!(run.output, expected);
    }

    #[test]
    fn empty_small_relation_short_circuits() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_s(NodeId(0), (0..10).collect());
        let run = run_protocol(&t, &p, &TreeIntersect::new(0)).unwrap();
        assert!(run.output.is_empty());
        assert_eq!(run.cost.tuple_cost(), 0.0);
    }

    #[test]
    fn rejects_asymmetric_tree() {
        let t = builders::mpc_star(3);
        let p = Placement::empty(&t);
        assert!(matches!(
            run_protocol(&t, &p, &TreeIntersect::new(0)),
            Err(SimError::Protocol(_))
        ));
    }
}
