//! Topology-aware aggregation on symmetric trees.
//!
//! The paper's related-work section singles out aggregation as the one task
//! the topology-aware model had already been applied to (Liu et al. \[37\],
//! star topologies only; TAG \[38\] and LOOM \[16, 17\] as systems that are
//! "cognizant of the network topology, but agnostic to the distribution of
//! the input data" and "lack any theoretical guarantees"). This module
//! extends the repository beyond the paper's three tasks with
//! distribution-aware aggregation on **arbitrary symmetric trees**, in the
//! same cost model:
//!
//! - [`NaiveAggregate`] — every node ships raw tuples to the target
//!   (the "agnostic" strawman);
//! - [`FlatPartialAggregate`] — one round: nodes pre-aggregate locally and
//!   send one partial per *local* group to the target (combiner-less
//!   MapReduce-style pre-aggregation);
//! - [`CombiningTreeAggregate`] — multi-round hierarchical convergecast
//!   that merges partials at designated combiner nodes per subtree, so the
//!   traffic crossing an edge is one partial per group *present in the
//!   subtree below it* — the in-network-combining idea of TAG/LOOM, made
//!   distribution-aware;
//! - [`HashGroupBy`] — all-to-all grouped aggregation whose output is
//!   distributed across nodes proportionally to the initial data sizes
//!   (the same proportional-hashing idea as Algorithm 2);
//! - [`aggregation_lower_bound`] — the per-edge lower bound
//!   `max_e (#groups on the far side of e) / w_e` every all-to-one
//!   algorithm must pay, in the style of Theorems 1/3/6.
//!
//! # Data encoding
//!
//! The simulator's element type is `u64`. An aggregation input tuple is a
//! `(group, measure)` pair packed by [`encode`] into one value: the high
//! [`GROUP_BITS`] bits carry the group key, the low [`MEASURE_BITS`] bits
//! the measure. Partials reuse the same encoding, so a partial is charged
//! like any other tuple. `Sum` saturates at [`MEASURE_MAX`] rather than
//! corrupting the group bits.

pub mod groupby;
pub mod lower_bound;
pub mod protocols;

pub use groupby::HashGroupBy;
pub use lower_bound::{aggregation_lower_bound, groupby_lower_bound};
pub use protocols::{
    combining_schedule, CombiningTreeAggregate, FlatPartialAggregate, NaiveAggregate,
};

use std::collections::BTreeMap;

use tamp_simulator::Value;

/// Number of high bits holding the group key.
pub const GROUP_BITS: u32 = 24;
/// Number of low bits holding the measure.
pub const MEASURE_BITS: u32 = 40;
/// Largest encodable group key.
pub const GROUP_MAX: u64 = (1 << GROUP_BITS) - 1;
/// Largest encodable measure; `Sum` saturates here.
pub const MEASURE_MAX: u64 = (1 << MEASURE_BITS) - 1;

/// Pack a `(group, measure)` pair into a simulator value.
///
/// # Panics
///
/// Panics if `group > GROUP_MAX` or `measure > MEASURE_MAX`.
#[inline]
pub fn encode(group: u64, measure: u64) -> Value {
    assert!(
        group <= GROUP_MAX,
        "group {group} exceeds {GROUP_BITS} bits"
    );
    assert!(
        measure <= MEASURE_MAX,
        "measure {measure} exceeds {MEASURE_BITS} bits"
    );
    (group << MEASURE_BITS) | measure
}

/// Unpack a simulator value into its `(group, measure)` pair.
#[inline]
pub fn decode(value: Value) -> (u64, u64) {
    (value >> MEASURE_BITS, value & MEASURE_MAX)
}

/// A distributive aggregate function: partials combine associatively and
/// commutatively, so they can merge in any order at any node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Aggregator {
    /// Number of input tuples per group (measures are ignored).
    Count,
    /// Sum of measures per group, saturating at [`MEASURE_MAX`].
    Sum,
    /// Minimum measure per group.
    Min,
    /// Maximum measure per group.
    Max,
}

impl Aggregator {
    /// The partial a single input tuple contributes.
    #[inline]
    pub fn lift(self, measure: u64) -> u64 {
        match self {
            Aggregator::Count => 1,
            _ => measure,
        }
    }

    /// Merge two partials.
    #[inline]
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            Aggregator::Count | Aggregator::Sum => (a + b).min(MEASURE_MAX),
            Aggregator::Min => a.min(b),
            Aggregator::Max => a.max(b),
        }
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Aggregator::Count => "count",
            Aggregator::Sum => "sum",
            Aggregator::Min => "min",
            Aggregator::Max => "max",
        }
    }
}

/// Fold a slice of encoded tuples into per-group partials.
pub fn partials_of(values: &[Value], agg: Aggregator) -> BTreeMap<u64, u64> {
    let mut out: BTreeMap<u64, u64> = BTreeMap::new();
    for &v in values {
        let (g, m) = decode(v);
        let lifted = agg.lift(m);
        out.entry(g)
            .and_modify(|p| *p = agg.combine(*p, lifted))
            .or_insert(lifted);
    }
    out
}

/// Merge encoded *partials* (not raw tuples) into per-group partials.
pub fn merge_partials(values: &[Value], agg: Aggregator) -> BTreeMap<u64, u64> {
    let mut out: BTreeMap<u64, u64> = BTreeMap::new();
    for &v in values {
        let (g, m) = decode(v);
        out.entry(g)
            .and_modify(|p| *p = agg.combine(*p, m))
            .or_insert(m);
    }
    out
}

/// Encode a partial map back into simulator values, in group order.
pub fn encode_partials(partials: &BTreeMap<u64, u64>) -> Vec<Value> {
    partials.iter().map(|(&g, &m)| encode(g, m)).collect()
}

/// Ground-truth aggregate of the full input, for verification.
pub fn reference_aggregate(all_values: &[Value], agg: Aggregator) -> BTreeMap<u64, u64> {
    partials_of(all_values, agg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for (g, m) in [(0, 0), (1, 7), (GROUP_MAX, MEASURE_MAX), (12345, 67890)] {
            assert_eq!(decode(encode(g, m)), (g, m));
        }
    }

    #[test]
    #[should_panic(expected = "group")]
    fn encode_rejects_oversized_group() {
        encode(GROUP_MAX + 1, 0);
    }

    #[test]
    #[should_panic(expected = "measure")]
    fn encode_rejects_oversized_measure() {
        encode(0, MEASURE_MAX + 1);
    }

    #[test]
    fn count_ignores_measures() {
        let vals = vec![encode(3, 100), encode(3, 999), encode(5, 1)];
        let p = partials_of(&vals, Aggregator::Count);
        assert_eq!(p[&3], 2);
        assert_eq!(p[&5], 1);
    }

    #[test]
    fn sum_saturates() {
        let a = Aggregator::Sum.combine(MEASURE_MAX - 1, 10);
        assert_eq!(a, MEASURE_MAX);
    }

    #[test]
    fn min_max_combine() {
        assert_eq!(Aggregator::Min.combine(4, 9), 4);
        assert_eq!(Aggregator::Max.combine(4, 9), 9);
    }

    #[test]
    fn partials_then_merge_equals_reference() {
        let left = vec![encode(1, 5), encode(2, 3), encode(1, 2)];
        let right = vec![encode(1, 1), encode(3, 8)];
        for agg in [
            Aggregator::Count,
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
        ] {
            let mut all = left.clone();
            all.extend_from_slice(&right);
            let want = reference_aggregate(&all, agg);

            let pl = encode_partials(&partials_of(&left, agg));
            let pr = encode_partials(&partials_of(&right, agg));
            let mut both = pl;
            both.extend(pr);
            let got = merge_partials(&both, agg);
            assert_eq!(got, want, "agg {agg:?}");
        }
    }
}
