//! All-to-one aggregation protocols on symmetric trees.
//!
//! Three algorithms with increasing topology- and distribution-awareness:
//!
//! | Protocol | Rounds | Traffic on edge `e` (toward target) |
//! |----------|--------|--------------------------------------|
//! | [`NaiveAggregate`] | 1 | all raw tuples on the far side |
//! | [`FlatPartialAggregate`] | 1 | `Σ_{v far} g_v` (per-node partials) |
//! | [`CombiningTreeAggregate`] | O(depth) | ≈ groups present below `e` |
//!
//! The combining protocol designates one *combiner* compute node per
//! subtree (the one holding the most data, so the heaviest merge is a free
//! self-send), and converges partials level by level toward the target.
//! On a uniform-bandwidth star its cost meets
//! [`aggregation_lower_bound`](super::aggregation_lower_bound) exactly on
//! the bottleneck edge.

use std::collections::BTreeMap;

use tamp_simulator::{Protocol, Rel, Session, SimError, Value};
use tamp_topology::{NodeId, Tree};

use super::{encode_partials, merge_partials, partials_of, Aggregator};

/// A rooting of the physical tree at an arbitrary node, with parent
/// pointers, BFS depths and children lists. Shared by the aggregation
/// protocols, which all orient traffic toward a target.
#[derive(Clone, Debug)]
pub(crate) struct Rooted {
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// Hop distance from the root.
    pub depth: Vec<usize>,
    /// Children lists.
    pub children: Vec<Vec<NodeId>>,
    /// Nodes in BFS order from the root.
    pub order: Vec<NodeId>,
}

impl Rooted {
    /// Root `tree` at `root` via BFS.
    pub fn at(tree: &Tree, root: NodeId) -> Self {
        let n = tree.num_nodes();
        let mut parent = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        let mut children = vec![Vec::new(); n];
        let mut order = Vec::with_capacity(n);
        depth[root.index()] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, _) in tree.neighbors(u) {
                if depth[v.index()] == usize::MAX {
                    depth[v.index()] = depth[u.index()] + 1;
                    parent[v.index()] = Some(u);
                    children[u.index()].push(v);
                    queue.push_back(v);
                }
            }
        }
        Rooted {
            parent,
            depth,
            children,
            order,
        }
    }
}

fn require_compute(tree: &Tree, target: NodeId) -> Result<(), SimError> {
    if !tree.is_compute(target) {
        return Err(SimError::Protocol(format!(
            "aggregation target {target:?} is not a compute node"
        )));
    }
    Ok(())
}

fn finish_at_target(
    session: &Session<'_>,
    target: NodeId,
    agg: Aggregator,
    raw: bool,
) -> Vec<(u64, u64)> {
    let st = session.state(target);
    let mut acc: BTreeMap<u64, u64> = partials_of(&st.r, agg);
    let inbox = if raw {
        partials_of(&st.s, agg)
    } else {
        merge_partials(&st.s, agg)
    };
    for (g, m) in inbox {
        acc.entry(g)
            .and_modify(|p| *p = agg.combine(*p, m))
            .or_insert(m);
    }
    acc.into_iter().collect()
}

/// Strawman: every node ships its raw tuples to the target in one round.
///
/// This is the topology- and distribution-agnostic baseline; its cost on
/// edge `e` is the full raw data size of the far side.
#[derive(Clone, Debug)]
pub struct NaiveAggregate {
    target: NodeId,
    agg: Aggregator,
}

impl NaiveAggregate {
    /// Aggregate everything at `target` with `agg`.
    pub fn new(target: NodeId, agg: Aggregator) -> Self {
        NaiveAggregate { target, agg }
    }
}

impl Protocol for NaiveAggregate {
    type Output = Vec<(u64, u64)>;

    fn name(&self) -> String {
        format!("naive-aggregate({})", self.agg.name())
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        require_compute(tree, self.target)?;
        let target = self.target;
        session.round(|round| {
            for &v in tree.compute_nodes() {
                if v == target {
                    continue;
                }
                let vals = round.state(v).r.clone();
                round.send(v, &[target], Rel::S, &vals)?;
            }
            Ok(())
        })?;
        Ok(finish_at_target(session, target, self.agg, true))
    }
}

/// One-round pre-aggregation: each node folds its local tuples into one
/// partial per local group and sends those to the target.
#[derive(Clone, Debug)]
pub struct FlatPartialAggregate {
    target: NodeId,
    agg: Aggregator,
}

impl FlatPartialAggregate {
    /// Aggregate everything at `target` with `agg`.
    pub fn new(target: NodeId, agg: Aggregator) -> Self {
        FlatPartialAggregate { target, agg }
    }
}

impl Protocol for FlatPartialAggregate {
    type Output = Vec<(u64, u64)>;

    fn name(&self) -> String {
        format!("flat-partial-aggregate({})", self.agg.name())
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        require_compute(tree, self.target)?;
        let target = self.target;
        let agg = self.agg;
        session.round(|round| {
            for &v in tree.compute_nodes() {
                if v == target {
                    continue;
                }
                let partials = encode_partials(&partials_of(&round.state(v).r, agg));
                round.send(v, &[target], Rel::S, &partials)?;
            }
            Ok(())
        })?;
        Ok(finish_at_target(session, target, self.agg, false))
    }
}

/// Hierarchical in-network combining convergecast.
///
/// The tree is rooted at the target. Every subtree gets a *combiner*: the
/// compute node below it holding the most data (ties to the smallest id),
/// so that the largest child merge is a free self-send. Levels are
/// processed bottom-up, one round per level that actually moves data; the
/// traffic crossing a subtree's up-edge is one partial per distinct group
/// present in the subtree.
#[derive(Clone, Debug)]
pub struct CombiningTreeAggregate {
    target: NodeId,
    agg: Aggregator,
}

impl CombiningTreeAggregate {
    /// Aggregate everything at `target` with `agg`.
    pub fn new(target: NodeId, agg: Aggregator) -> Self {
        CombiningTreeAggregate { target, agg }
    }
}

/// The convergecast merge schedule: for each level (deepest first, empty
/// levels omitted), the `(source combiner, destination combiner)` moves.
/// A deterministic function of `(tree, per-node weights, target)`, so a
/// distributed node can re-derive it locally from the §2 model knowledge —
/// the runtime's `DistributedCombiningAggregate` does exactly that.
pub fn combining_schedule(
    tree: &Tree,
    weights: &[u64],
    target: NodeId,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let rooted = Rooted::at(tree, target);
    let n = tree.num_nodes();
    // Subtree data weight and combiner, bottom-up (reverse BFS order).
    let mut subtree_n: Vec<u64> = (0..n)
        .map(|i| {
            let v = NodeId(i as u32);
            if tree.is_compute(v) {
                weights[v.index()]
            } else {
                0
            }
        })
        .collect();
    let mut combiner: Vec<Option<NodeId>> = (0..n)
        .map(|i| {
            let v = NodeId(i as u32);
            tree.is_compute(v).then_some(v)
        })
        .collect();
    for &u in rooted.order.iter().rev() {
        if tree.is_compute(u) {
            continue; // compute nodes are their own combiner
        }
        // Prefer the *shallowest* child combiner (merging there keeps
        // light siblings' partials from travelling deep into a heavy
        // subtree and back), then the heaviest subtree (its merge is a
        // free self-send), then the smallest id for determinism.
        let mut best: Option<(usize, u64, NodeId)> = None;
        let mut total = 0u64;
        for &c in &rooted.children[u.index()] {
            total += subtree_n[c.index()];
            if let Some(cc) = combiner[c.index()] {
                let key = (rooted.depth[cc.index()], subtree_n[c.index()], cc);
                let better = match best {
                    None => true,
                    Some((bd, bn, bc)) => {
                        key.0 < bd
                            || (key.0 == bd && key.1 > bn)
                            || (key.0 == bd && key.1 == bn && cc < bc)
                    }
                };
                if better {
                    best = Some(key);
                }
            }
        }
        subtree_n[u.index()] = total;
        combiner[u.index()] = best.map(|(_, _, c)| c);
    }
    combiner[target.index()] = Some(target);

    // Merge levels, deepest parents first: every node pushes its
    // combiner up to its parent's combiner, at the level indexed by the
    // parent's depth. (BFS order visits a parent's children contiguously,
    // so this enumerates the same moves as walking children lists.)
    let max_depth = rooted
        .order
        .iter()
        .map(|&v| rooted.depth[v.index()])
        .max()
        .unwrap_or(0);
    let mut levels = Vec::new();
    for d in (0..max_depth).rev() {
        let mut moves: Vec<(NodeId, NodeId)> = Vec::new();
        for &c in &rooted.order {
            let Some(u) = rooted.parent[c.index()] else {
                continue; // the root has nowhere to push
            };
            if rooted.depth[u.index()] != d {
                continue;
            }
            if let (Some(src), Some(dst)) = (combiner[c.index()], combiner[u.index()]) {
                if src != dst {
                    moves.push((src, dst));
                }
            }
        }
        if !moves.is_empty() {
            levels.push(moves);
        }
    }
    levels
}

impl Protocol for CombiningTreeAggregate {
    type Output = Vec<(u64, u64)>;

    fn name(&self) -> String {
        format!("combining-tree-aggregate({})", self.agg.name())
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        require_compute(tree, self.target)?;
        let target = self.target;
        let agg = self.agg;
        let stats = session.stats().clone();
        let schedule = combining_schedule(tree, &stats.n, target);

        // Running partials per compute node, seeded from local data.
        let n = tree.num_nodes();
        let mut acc: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); n];
        for &v in tree.compute_nodes() {
            acc[v.index()] = partials_of(&session.state(v).r, agg);
        }

        for moves in schedule {
            let payloads: Vec<(NodeId, NodeId, Vec<Value>)> = moves
                .into_iter()
                .map(|(src, dst)| {
                    let vals = encode_partials(&acc[src.index()]);
                    (src, dst, vals)
                })
                .collect();
            session.round(|round| {
                for (src, dst, vals) in &payloads {
                    round.send(*src, &[*dst], Rel::S, vals)?;
                }
                Ok(())
            })?;
            for (src, dst, _) in payloads {
                let moved = std::mem::take(&mut acc[src.index()]);
                let dst_acc = &mut acc[dst.index()];
                for (g, m) in moved {
                    dst_acc
                        .entry(g)
                        .and_modify(|p| *p = agg.combine(*p, m))
                        .or_insert(m);
                }
            }
        }

        Ok(std::mem::take(&mut acc[target.index()])
            .into_iter()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregation_lower_bound, encode, reference_aggregate};
    use tamp_simulator::{run_protocol, Placement};
    use tamp_topology::builders;

    fn grouped_placement(tree: &Tree, groups: u64, per_node: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        for (i, &v) in tree.compute_nodes().iter().enumerate() {
            for j in 0..per_node {
                let g = crate::hashing::mix64(seed ^ (i as u64) << 20 ^ j) % groups;
                let m = (j % 100) + 1;
                p.push(v, Rel::R, encode(g, m));
            }
        }
        p
    }

    fn check_all(tree: &Tree, p: &Placement, target: NodeId, agg: Aggregator) {
        let all = p.all_r();
        let want: Vec<(u64, u64)> = reference_aggregate(&all, agg).into_iter().collect();
        let naive = run_protocol(tree, p, &NaiveAggregate::new(target, agg)).unwrap();
        let flat = run_protocol(tree, p, &FlatPartialAggregate::new(target, agg)).unwrap();
        let comb = run_protocol(tree, p, &CombiningTreeAggregate::new(target, agg)).unwrap();
        assert_eq!(naive.output, want, "naive {agg:?}");
        assert_eq!(flat.output, want, "flat {agg:?}");
        assert_eq!(comb.output, want, "combining {agg:?}");
        // Pre-aggregation never costs more than shipping raw tuples. (The
        // multi-round combining variant can exceed flat on adversarial
        // trees — its wins are asserted on the structured topologies.)
        assert!(flat.cost.tuple_cost() <= naive.cost.tuple_cost() + 1e-9);
    }

    #[test]
    fn all_protocols_agree_on_star() {
        let t = builders::star(5, 1.0);
        let p = grouped_placement(&t, 8, 50, 3);
        for agg in [
            Aggregator::Count,
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
        ] {
            check_all(&t, &p, NodeId(0), agg);
        }
    }

    #[test]
    fn all_protocols_agree_on_rack_tree() {
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (4, 2.0, 1.0), (2, 1.0, 4.0)], 1.5);
        let p = grouped_placement(&t, 16, 40, 7);
        let target = t.compute_nodes()[4];
        check_all(&t, &p, target, Aggregator::Sum);
    }

    #[test]
    fn all_protocols_agree_on_random_trees() {
        for seed in 0..8u64 {
            let t = builders::random_tree(7, 4, 0.5, 3.0, seed);
            let p = grouped_placement(&t, 5, 30, seed);
            let target = t.compute_nodes()[seed as usize % t.num_compute()];
            check_all(&t, &p, target, Aggregator::Count);
        }
    }

    #[test]
    fn combining_beats_flat_on_thin_core_racks() {
        // Three racks of 4 nodes behind thin uplinks, every node holding the
        // same 20 groups. In-network combining crosses each thin uplink with
        // one partial per group; flat crosses it with one partial per
        // (node, group) pair — a factor-4 difference on the bottleneck.
        let t = builders::rack_tree(&[(4, 4.0, 0.25), (4, 4.0, 0.25), (4, 4.0, 0.25)], 1.0);
        let mut p = Placement::empty(&t);
        for &v in t.compute_nodes() {
            for g in 0..20 {
                p.push(v, Rel::R, encode(g, 1));
            }
        }
        let target = t.compute_nodes()[0];
        let lb = aggregation_lower_bound(&t, &p, target);
        let comb = run_protocol(
            &t,
            &p,
            &CombiningTreeAggregate::new(target, Aggregator::Sum),
        )
        .unwrap();
        let flat =
            run_protocol(&t, &p, &FlatPartialAggregate::new(target, Aggregator::Sum)).unwrap();
        // Flat pays the full per-node duplication on a thin uplink.
        assert!(flat.cost.tuple_cost() >= 4.0 * lb.value() - 1e-9);
        // Combining stays within a small constant of the lower bound and
        // clearly beats flat.
        assert!(comb.cost.tuple_cost() < flat.cost.tuple_cost());
        assert!(
            comb.cost.tuple_cost() <= 4.0 * lb.value() + 1e-9,
            "comb {} vs lb {}",
            comb.cost.tuple_cost(),
            lb.value()
        );
    }

    #[test]
    fn star_flat_and_combining_are_comparable() {
        // On a star there is no compute node "inside" the network, so
        // combining cannot beat flat pre-aggregation: the merged partials
        // still funnel through some leaf's downlink.
        let t = builders::star(6, 1.0);
        let mut p = Placement::empty(&t);
        for &v in t.compute_nodes() {
            for g in 0..20 {
                p.push(v, Rel::R, encode(g, 1));
            }
        }
        let target = NodeId(0);
        let comb = run_protocol(
            &t,
            &p,
            &CombiningTreeAggregate::new(target, Aggregator::Sum),
        )
        .unwrap();
        let flat =
            run_protocol(&t, &p, &FlatPartialAggregate::new(target, Aggregator::Sum)).unwrap();
        assert_eq!(comb.output, flat.output);
        assert!(comb.cost.tuple_cost() <= flat.cost.tuple_cost() + 1e-9);
    }

    #[test]
    fn naive_pays_raw_sizes() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(1), (0..100).map(|i| encode(i % 4, 1)).collect());
        let run = run_protocol(&t, &p, &NaiveAggregate::new(NodeId(0), Aggregator::Count)).unwrap();
        // 100 raw tuples over the bottleneck link.
        assert_eq!(run.cost.tuple_cost(), 100.0);
        assert_eq!(run.output, vec![(0, 25), (1, 25), (2, 25), (3, 25)]);
    }

    #[test]
    fn rejects_router_target() {
        let t = builders::star(3, 1.0); // node 3 is the hub
        let p = Placement::empty(&t);
        for proto in [
            run_protocol(&t, &p, &NaiveAggregate::new(NodeId(3), Aggregator::Sum)).err(),
            run_protocol(
                &t,
                &p,
                &FlatPartialAggregate::new(NodeId(3), Aggregator::Sum),
            )
            .err(),
            run_protocol(
                &t,
                &p,
                &CombiningTreeAggregate::new(NodeId(3), Aggregator::Sum),
            )
            .err(),
        ] {
            assert!(matches!(proto, Some(SimError::Protocol(_))));
        }
    }

    #[test]
    fn empty_input_yields_empty_output_everywhere() {
        let t = builders::caterpillar(3, 2, 1.0);
        let p = Placement::empty(&t);
        let target = t.compute_nodes()[0];
        for out in [
            run_protocol(&t, &p, &NaiveAggregate::new(target, Aggregator::Sum))
                .unwrap()
                .output,
            run_protocol(&t, &p, &FlatPartialAggregate::new(target, Aggregator::Sum))
                .unwrap()
                .output,
            run_protocol(
                &t,
                &p,
                &CombiningTreeAggregate::new(target, Aggregator::Sum),
            )
            .unwrap()
            .output,
        ] {
            assert!(out.is_empty());
        }
    }

    #[test]
    fn combining_uses_few_rounds() {
        let t = builders::balanced_kary(3, 2, 1.0);
        let p = grouped_placement(&t, 4, 10, 1);
        let target = t.compute_nodes()[0];
        let run = run_protocol(
            &t,
            &p,
            &CombiningTreeAggregate::new(target, Aggregator::Max),
        )
        .unwrap();
        // At most one round per level of the tree rooted at the target
        // (leaf-rooting roughly doubles the router depth).
        assert!(run.rounds <= 8, "rounds = {}", run.rounds);
    }

    #[test]
    fn rooted_bfs_structure() {
        let t = builders::star(3, 1.0);
        let r = Rooted::at(&t, NodeId(0));
        assert_eq!(r.depth[0], 0);
        assert_eq!(r.depth[3], 1); // hub
        assert_eq!(r.depth[1], 2);
        assert_eq!(r.parent[3], Some(NodeId(0)));
        assert_eq!(r.order.len(), 4);
    }
}
