//! Per-edge lower bounds for aggregation, in the style of Theorems 1/3/6.
//!
//! For **all-to-one** aggregation toward a target node `t`, consider any
//! edge `e`. Removing `e` splits the compute nodes into the side containing
//! `t` and the far side. For every group that is present on the far side,
//! at least one tuple describing it (a raw tuple or a partial) must cross
//! `e` — a distributive aggregate cannot be reconstructed at `t` from
//! nothing. Hence any correct algorithm has tuple cost at least
//!
//! ```text
//! max_e  (# distinct groups present on the far side of e) / w_e .
//! ```
//!
//! For **distributed group-by** (output may live anywhere), a group only
//! forces a crossing of `e` when it has contributing tuples on *both*
//! sides: the two partials must meet at some node, which lives on one
//! side, so at least one crossing of the cut happens. Those crossings may
//! split between the edge's two directions, while the cost functional
//! charges only the busier direction — so the sound per-edge bound is
//!
//! ```text
//! max_e  (# groups with contributors on both sides of e) / (2 · w_e) .
//! ```
//!
//! Both bounds are computed exactly by enumeration — `O(|E| · Σ_v g_v)`
//! where `g_v` is the number of distinct groups at node `v` — which is
//! plenty fast for the topology sizes the experiments use.

use std::collections::BTreeSet;

use tamp_simulator::Placement;
use tamp_topology::{NodeId, Tree};

use crate::ratio::LowerBound;

use super::decode;

/// Distinct group keys in each node's `R` fragment.
fn groups_per_node(tree: &Tree, placement: &Placement) -> Vec<BTreeSet<u64>> {
    let mut per_node: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); tree.num_nodes()];
    for &v in tree.compute_nodes() {
        for &val in &placement.node(v).r {
            per_node[v.index()].insert(decode(val).0);
        }
    }
    per_node
}

/// Lower bound for all-to-one aggregation toward `target`:
/// `max_e (#groups on the far side of e) / w_e`.
pub fn aggregation_lower_bound(tree: &Tree, placement: &Placement, target: NodeId) -> LowerBound {
    let per_node = groups_per_node(tree, placement);
    let mut best = LowerBound::zero();
    for e in tree.edges() {
        let target_side = tree.cut_side_of(e, target);
        let mut far: BTreeSet<u64> = BTreeSet::new();
        for &v in tree.compute_nodes() {
            if tree.cut_side_of(e, v) != target_side {
                far.extend(per_node[v.index()].iter().copied());
            }
        }
        let w = tree.sym_bandwidth(e);
        if far.is_empty() || w.is_infinite() {
            continue;
        }
        best = best.max(LowerBound::new(far.len() as f64 / w.get(), Some(e)));
    }
    best
}

/// Lower bound for distributed group-by:
/// `max_e (#groups with contributors on both sides of e) / (2 · w_e)`.
pub fn groupby_lower_bound(tree: &Tree, placement: &Placement) -> LowerBound {
    let per_node = groups_per_node(tree, placement);
    let mut best = LowerBound::zero();
    for e in tree.edges() {
        let mut side_u: BTreeSet<u64> = BTreeSet::new();
        let mut side_v: BTreeSet<u64> = BTreeSet::new();
        let (u_end, _) = tree.endpoints(e);
        let u_side = tree.cut_side_of(e, u_end);
        for &v in tree.compute_nodes() {
            let bucket = if tree.cut_side_of(e, v) == u_side {
                &mut side_u
            } else {
                &mut side_v
            };
            bucket.extend(per_node[v.index()].iter().copied());
        }
        let both = side_u.intersection(&side_v).count();
        let w = tree.sym_bandwidth(e);
        if both == 0 || w.is_infinite() {
            continue;
        }
        best = best.max(LowerBound::new(both as f64 / (2.0 * w.get()), Some(e)));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::encode;
    use tamp_topology::builders;

    #[test]
    fn empty_placement_gives_zero() {
        let t = builders::star(4, 1.0);
        let p = Placement::empty(&t);
        assert_eq!(aggregation_lower_bound(&t, &p, NodeId(0)).value(), 0.0);
        assert_eq!(groupby_lower_bound(&t, &p).value(), 0.0);
    }

    #[test]
    fn all_to_one_counts_far_side_groups() {
        // Star, bw 2. Node 1 holds groups {0,1}, node 2 holds {1,2}.
        // Toward target node 0, the hub→0 edge sees 3 distinct far groups.
        let t = builders::star(3, 2.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(1), vec![encode(0, 1), encode(1, 1)]);
        p.set_r(NodeId(2), vec![encode(1, 1), encode(2, 1)]);
        let lb = aggregation_lower_bound(&t, &p, NodeId(0));
        assert_eq!(lb.value(), 3.0 / 2.0);
    }

    #[test]
    fn duplicate_groups_at_one_node_count_once() {
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(1), vec![encode(7, 1), encode(7, 2), encode(7, 3)]);
        let lb = aggregation_lower_bound(&t, &p, NodeId(0));
        assert_eq!(lb.value(), 1.0);
    }

    #[test]
    fn groupby_needs_contributors_on_both_sides() {
        // Groups fully local to one node force no crossing.
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![encode(1, 5)]);
        p.set_r(NodeId(1), vec![encode(2, 6)]);
        assert_eq!(groupby_lower_bound(&t, &p).value(), 0.0);

        // A shared group forces one crossing, in some direction.
        p.push(NodeId(0), tamp_simulator::Rel::R, encode(2, 9));
        assert_eq!(groupby_lower_bound(&t, &p).value(), 0.5);
    }

    #[test]
    fn narrow_core_link_dominates() {
        // Two racks joined by a thin core link; shared groups make the core
        // the bottleneck in the group-by bound.
        let t = builders::rack_tree(&[(2, 4.0, 0.5), (2, 4.0, 0.5)], 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        for g in 0..10 {
            p.push(vc[0], tamp_simulator::Rel::R, encode(g, 1));
            p.push(vc[2], tamp_simulator::Rel::R, encode(g, 2));
        }
        let lb = groupby_lower_bound(&t, &p);
        assert_eq!(lb.value(), 10.0 / (2.0 * 0.5));
    }

    #[test]
    fn target_side_groups_are_free() {
        // Groups already at the target do not appear in the bound.
        let t = builders::star(2, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![encode(1, 1), encode(2, 1), encode(3, 1)]);
        let lb = aggregation_lower_bound(&t, &p, NodeId(0));
        assert_eq!(lb.value(), 0.0);
    }
}
