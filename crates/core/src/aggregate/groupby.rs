//! Distributed group-by aggregation with proportional output placement.
//!
//! Each node folds its local tuples into one partial per local group, then
//! routes the partial for group `g` to the owner node `h(g)`, where `h` is
//! the same distribution-aware weighted hash Algorithm 2 uses:
//! `Pr[h(g) = v] = N_v / N`. Nodes that hold more input data receive
//! proportionally more of the output, which keeps every node's receive
//! volume within its share of the Theorem-1-style per-edge budget.
//!
//! One round; traffic on edge `e` is at most one partial per
//! (far-side node, group) pair whose owner lives across `e` — compare
//! [`groupby_lower_bound`](super::groupby_lower_bound), which charges one
//! crossing per group split by `e`.

use std::collections::{BTreeMap, HashMap};

use tamp_simulator::{Protocol, Rel, Session, SimError};
use tamp_topology::NodeId;

use crate::hashing::WeightedHash;

use super::{encode, merge_partials, partials_of, Aggregator};

/// One-round distributed group-by. The output is the full grouped
/// aggregate, tagged with the compute node that owns each group.
#[derive(Clone, Debug)]
pub struct HashGroupBy {
    seed: u64,
    agg: Aggregator,
}

impl HashGroupBy {
    /// Create with a hash seed.
    pub fn new(seed: u64, agg: Aggregator) -> Self {
        HashGroupBy { seed, agg }
    }
}

impl Protocol for HashGroupBy {
    type Output = Vec<(u64, u64, NodeId)>;

    fn name(&self) -> String {
        format!("hash-group-by({}, seed={})", self.agg.name(), self.seed)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        tree.require_symmetric()
            .map_err(|e| SimError::Protocol(e.to_string()))?;
        let stats = session.stats().clone();
        let weighted: Vec<(NodeId, u64)> = tree
            .compute_nodes()
            .iter()
            .map(|&v| (v, stats.n_v(v)))
            .collect();
        // All-empty input: nothing to do.
        let Some(hash) = WeightedHash::new(self.seed, &weighted) else {
            return Ok(Vec::new());
        };
        let agg = self.agg;

        // Local pre-aggregation, then route each partial to its group owner.
        let mut owned: Vec<BTreeMap<u64, u64>> = vec![BTreeMap::new(); tree.num_nodes()];
        let mut outbox: Vec<(NodeId, NodeId, Vec<u64>)> = Vec::new();
        for &v in tree.compute_nodes() {
            let partials = partials_of(&session.state(v).r, agg);
            let mut by_owner: HashMap<NodeId, Vec<u64>> = HashMap::new();
            for (g, m) in partials {
                let owner = hash.pick(g);
                if owner == v {
                    owned[v.index()]
                        .entry(g)
                        .and_modify(|p| *p = agg.combine(*p, m))
                        .or_insert(m);
                } else {
                    by_owner.entry(owner).or_default().push(encode(g, m));
                }
            }
            for (owner, vals) in by_owner {
                outbox.push((v, owner, vals));
            }
        }
        session.round(|round| {
            for (src, dst, vals) in &outbox {
                round.send(*src, &[*dst], Rel::S, vals)?;
            }
            Ok(())
        })?;
        for (_, dst, vals) in outbox {
            let merged = merge_partials(&vals, agg);
            let acc = &mut owned[dst.index()];
            for (g, m) in merged {
                acc.entry(g)
                    .and_modify(|p| *p = agg.combine(*p, m))
                    .or_insert(m);
            }
        }

        let mut out: Vec<(u64, u64, NodeId)> = Vec::new();
        for &v in tree.compute_nodes() {
            for (&g, &m) in &owned[v.index()] {
                out.push((g, m, v));
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{groupby_lower_bound, reference_aggregate};
    use tamp_simulator::{run_protocol, Placement};
    use tamp_topology::builders;

    fn check(tree: &tamp_topology::Tree, p: &Placement, agg: Aggregator, seed: u64) {
        let run = run_protocol(tree, p, &HashGroupBy::new(seed, agg)).unwrap();
        let want: Vec<(u64, u64)> = reference_aggregate(&p.all_r(), agg).into_iter().collect();
        let got: Vec<(u64, u64)> = run.output.iter().map(|&(g, m, _)| (g, m)).collect();
        assert_eq!(got, want);
        // Each group is owned by exactly one node.
        let mut groups: Vec<u64> = run.output.iter().map(|&(g, _, _)| g).collect();
        groups.dedup();
        assert_eq!(groups.len(), run.output.len());
    }

    #[test]
    fn correct_on_star() {
        let t = builders::star(4, 1.0);
        let mut p = Placement::empty(&t);
        for (i, &v) in t.compute_nodes().iter().enumerate() {
            for j in 0..60u64 {
                p.push(v, Rel::R, encode(j % 9, (i as u64) + j));
            }
        }
        for agg in [
            Aggregator::Count,
            Aggregator::Sum,
            Aggregator::Min,
            Aggregator::Max,
        ] {
            check(&t, &p, agg, 11);
        }
    }

    #[test]
    fn correct_on_rack_tree_and_random() {
        let t = builders::rack_tree(&[(2, 1.0, 2.0), (3, 2.0, 1.0)], 1.0);
        let mut p = Placement::empty(&t);
        for (i, &v) in t.compute_nodes().iter().enumerate() {
            for j in 0..40u64 {
                p.push(v, Rel::R, encode((i as u64 * 13 + j) % 7, j + 1));
            }
        }
        check(&t, &p, Aggregator::Sum, 5);

        for seed in 0..6u64 {
            let t = builders::random_tree(6, 3, 0.5, 2.0, seed);
            let mut p = Placement::empty(&t);
            for (i, &v) in t.compute_nodes().iter().enumerate() {
                for j in 0..25u64 {
                    p.push(v, Rel::R, encode((i as u64 + j) % 4, j));
                }
            }
            check(&t, &p, Aggregator::Min, seed);
        }
    }

    #[test]
    fn cost_exceeds_lower_bound() {
        let t = builders::rack_tree(&[(3, 1.0, 1.0), (3, 1.0, 1.0)], 0.5);
        let mut p = Placement::empty(&t);
        for (i, &v) in t.compute_nodes().iter().enumerate() {
            for g in 0..12u64 {
                p.push(v, Rel::R, encode(g, i as u64 + 1));
            }
        }
        let lb = groupby_lower_bound(&t, &p);
        let run = run_protocol(&t, &p, &HashGroupBy::new(3, Aggregator::Sum)).unwrap();
        assert!(run.cost.tuple_cost() >= lb.value() - 1e-9);
        assert!(lb.value() > 0.0);
    }

    #[test]
    fn local_groups_can_be_free() {
        // One node holds everything: with the proportional hash all groups
        // land on that node and no tuple moves.
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..30).map(|g| encode(g, 1)).collect());
        let run = run_protocol(&t, &p, &HashGroupBy::new(1, Aggregator::Count)).unwrap();
        assert_eq!(run.cost.tuple_cost(), 0.0);
        assert!(run.output.iter().all(|&(_, _, v)| v == NodeId(0)));
    }

    #[test]
    fn empty_input_is_empty_output() {
        let t = builders::star(3, 1.0);
        let p = Placement::empty(&t);
        let run = run_protocol(&t, &p, &HashGroupBy::new(0, Aggregator::Sum)).unwrap();
        assert!(run.output.is_empty());
    }
}
