//! Running the paper's algorithms on general (non-tree) topologies.
//!
//! §7 names general topologies — grids, tori — as the main open direction:
//! with multiple routing paths, algorithms must choose routes, and the
//! per-edge lower bounds become per-*cut* lower bounds. This module wires
//! the two halves the substrate provides:
//!
//! 1. **Upper bounds**: extract a spanning tree from the graph
//!    ([`Graph::max_bandwidth_spanning_tree`]) and run any tree protocol
//!    on it unchanged ([`run_on_graph`]). The cost is achievable on the
//!    graph because every tree edge is a graph edge.
//! 2. **Lower bounds**: for each bipartition induced by a spanning-tree
//!    edge, all data that must cross the bipartition can use *every*
//!    graph edge crossing it, so the denominator is the full
//!    [`cut_capacity`](Graph::cut_capacity) instead of a single link's
//!    bandwidth. [`graph_intersection_lower_bound`],
//!    [`graph_cartesian_lower_bound`] and [`graph_sorting_lower_bound`]
//!    instantiate the Theorems 1/3/6 numerators over those cuts.
//!
//! The measured gap between (1) and (2) is the price of single-tree
//! routing — the quantity a future multi-path algorithm would need to
//! close. On cut-dominated graphs (e.g. two cliques joined by one thin
//! link) the gap is a small constant; on expanders (hypercubes) it grows,
//! which is exactly why §7 calls the general case challenging.

use tamp_simulator::{run_protocol, PlacementStats, Protocol, Run, SimError};
use tamp_topology::{Graph, Tree};

use crate::ratio::LowerBound;

/// How to extract the routing tree from a general graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeExtraction {
    /// Keep the widest links (maximum-bandwidth spanning tree). Preserves
    /// every pair's widest-path bottleneck — the default.
    MaxBandwidth,
    /// Hop-minimal BFS tree rooted at the first compute node. Ablation
    /// baseline; ignores bandwidths entirely.
    BfsFromFirstCompute,
}

/// Extract a routing tree from `graph` per `how`.
pub fn extract_tree(graph: &Graph, how: TreeExtraction) -> Result<Tree, SimError> {
    let tree = match how {
        TreeExtraction::MaxBandwidth => graph.max_bandwidth_spanning_tree(),
        TreeExtraction::BfsFromFirstCompute => {
            let root = graph.compute_nodes()[0];
            graph.bfs_spanning_tree(root)
        }
    };
    tree.map_err(|e| SimError::Protocol(format!("tree extraction failed: {e}")))
}

/// Run a tree protocol on a general graph by restricting routing to an
/// extracted spanning tree. Returns the run and the tree used (node ids
/// match the graph's, so the placement is used as-is).
pub fn run_on_graph<P: Protocol>(
    graph: &Graph,
    placement: &tamp_simulator::Placement,
    protocol: &P,
    how: TreeExtraction,
) -> Result<(Run<P::Output>, Tree), SimError> {
    let tree = extract_tree(graph, how)?;
    let run = run_protocol(&tree, placement, protocol)?;
    Ok((run, tree))
}

/// Evaluate `numerator(N⁻, N⁺) / cut_capacity` over every bipartition
/// induced by a spanning-tree edge, returning the largest.
fn best_cut_bound<F>(graph: &Graph, tree: &Tree, stats: &PlacementStats, numerator: F) -> LowerBound
where
    F: Fn(u64, u64) -> u64,
{
    let mut best = LowerBound::zero();
    for e in tree.edges() {
        let side = graph.tree_cut_side(tree, e);
        let cap = graph.cut_capacity(&side);
        if !cap.is_finite() || cap <= 0.0 {
            continue;
        }
        let (mut n_minus, mut n_plus) = (0u64, 0u64);
        for (i, &s) in side.iter().enumerate() {
            let v = tamp_topology::NodeId(i as u32);
            if !tree.is_compute(v) {
                continue;
            }
            if s {
                n_minus += stats.n_v(v);
            } else {
                n_plus += stats.n_v(v);
            }
        }
        let num = numerator(n_minus, n_plus);
        if num == 0 {
            continue;
        }
        best = best.max(LowerBound::new(num as f64 / cap, Some(e)));
    }
    best
}

/// Per-cut analogue of Theorem 1 for set intersection on a graph:
/// `max_cut min{|R|, |S|, N⁻, N⁺} / cut_capacity`.
pub fn graph_intersection_lower_bound(
    graph: &Graph,
    tree: &Tree,
    stats: &PlacementStats,
) -> LowerBound {
    let (r, s) = (stats.total_r, stats.total_s);
    best_cut_bound(graph, tree, stats, |a, b| r.min(s).min(a).min(b))
}

/// Per-cut analogue of Theorem 3 for the cartesian product:
/// `max_cut min{N⁻, N⁺} / cut_capacity`.
pub fn graph_cartesian_lower_bound(
    graph: &Graph,
    tree: &Tree,
    stats: &PlacementStats,
) -> LowerBound {
    best_cut_bound(graph, tree, stats, |a, b| a.min(b))
}

/// Per-cut analogue of Theorem 6 for sorting:
/// `max_cut min{N⁻, N⁺} / cut_capacity`.
pub fn graph_sorting_lower_bound(graph: &Graph, tree: &Tree, stats: &PlacementStats) -> LowerBound {
    graph_cartesian_lower_bound(graph, tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersection::TreeIntersect;
    use crate::sorting::WeightedTeraSort;
    use tamp_simulator::{verify, Placement, Rel};
    use tamp_topology::graph::builders as gb;
    use tamp_topology::NodeId;

    fn scatter(graph: &Graph, r: u64, s: u64, seed: u64) -> Placement {
        // Place onto the *graph's* node set; the extracted tree shares ids.
        let vc = graph.compute_nodes();
        let mut frags = vec![tamp_simulator::NodeState::default(); graph.num_nodes()];
        for a in 0..r {
            let v = vc[(crate::hashing::mix64(a ^ seed) % vc.len() as u64) as usize];
            frags[v.index()].r.push(a);
        }
        for a in 0..s {
            let val = r / 2 + a;
            let v = vc[(crate::hashing::mix64(val ^ seed ^ 0xF00) % vc.len() as u64) as usize];
            frags[v.index()].s.push(val);
        }
        Placement::from_fragments(frags)
    }

    #[test]
    fn intersection_runs_on_grid() {
        let g = gb::grid(3, 3, 1.0);
        let p = scatter(&g, 60, 120, 1);
        let (run, tree) =
            run_on_graph(&g, &p, &TreeIntersect::new(3), TreeExtraction::MaxBandwidth).unwrap();
        assert_eq!(tree.num_edges(), 8);
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        let lb = graph_intersection_lower_bound(&g, &tree, &p.stats());
        assert!(run.cost.tuple_cost() >= lb.value() - 1e-9);
    }

    #[test]
    fn intersection_runs_on_torus_and_hypercube() {
        for g in [gb::torus(3, 3, 1.0), gb::hypercube(3, 1.0)] {
            let p = scatter(&g, 40, 80, 2);
            let (run, _) =
                run_on_graph(&g, &p, &TreeIntersect::new(7), TreeExtraction::MaxBandwidth).unwrap();
            verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
        }
    }

    #[test]
    fn sorting_runs_on_grid() {
        let g = gb::grid(2, 4, 2.0);
        let mut p = Placement::empty_sized(g.num_nodes());
        for a in 0..400u64 {
            let v = g.compute_nodes()[(a % 8) as usize];
            p.push(v, Rel::R, crate::hashing::mix64(a));
        }
        let (run, tree) = run_on_graph(
            &g,
            &p,
            &WeightedTeraSort::new(5),
            TreeExtraction::MaxBandwidth,
        )
        .unwrap();
        let order = tree.left_to_right_compute_order(NodeId(0));
        verify::check_sorted_partition(&order, &run.final_state, &p.all_r()).unwrap();
    }

    #[test]
    fn thin_bridge_cut_dominates() {
        // Two cliques joined by a single thin link: the bridge bipartition
        // dominates every lower bound, and the spanning tree must include
        // the bridge, so tree routing is near-optimal here.
        let mut b = tamp_topology::GraphBuilder::new();
        let left = b.computes(4);
        let right = b.computes(4);
        for i in 0..4 {
            for j in i + 1..4 {
                b.link(left[i], left[j], 10.0).unwrap();
                b.link(right[i], right[j], 10.0).unwrap();
            }
        }
        b.link(left[0], right[0], 0.5).unwrap();
        let g = b.build().unwrap();
        let tree = extract_tree(&g, TreeExtraction::MaxBandwidth).unwrap();

        let p = scatter(&g, 100, 100, 3);
        let stats = p.stats();
        let lb = graph_intersection_lower_bound(&g, &tree, &stats);
        assert!(lb.value() > 0.0);
        // The witness bipartition's capacity is the bridge's 2 × 0.5.
        let e = lb.witness().unwrap();
        let side = g.tree_cut_side(&tree, e);
        assert_eq!(g.cut_capacity(&side), 1.0);
    }

    #[test]
    fn bfs_extraction_also_correct() {
        let g = gb::torus(3, 3, 1.0);
        let p = scatter(&g, 50, 70, 9);
        let (run, _) = run_on_graph(
            &g,
            &p,
            &TreeIntersect::new(2),
            TreeExtraction::BfsFromFirstCompute,
        )
        .unwrap();
        verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn graph_lower_bounds_are_below_tree_lower_bounds() {
        // The graph-cut denominator only grows (extra crossing links), so
        // the graph bound is never above the tree bound computed on the
        // extracted tree alone.
        let g = gb::grid(3, 3, 1.0);
        let tree = extract_tree(&g, TreeExtraction::MaxBandwidth).unwrap();
        let p = scatter(&g, 30, 60, 4);
        let stats = p.stats();
        let graph_lb = graph_intersection_lower_bound(&g, &tree, &stats);
        let tree_lb = crate::intersection::intersection_lower_bound(&tree, &stats);
        assert!(graph_lb.value() <= tree_lb.value() + 1e-9);
    }

    #[test]
    fn empty_placement_zero_bound() {
        let g = gb::ring(4, 1.0);
        let tree = extract_tree(&g, TreeExtraction::MaxBandwidth).unwrap();
        let p = Placement::empty_sized(g.num_nodes());
        let lb = graph_cartesian_lower_bound(&g, &tree, &p.stats());
        assert_eq!(lb.value(), 0.0);
    }
}
