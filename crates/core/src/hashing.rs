//! Deterministic "random hash functions".
//!
//! The paper's randomized protocols draw a random hash function `h` mapping
//! domain values to nodes with *non-uniform*, data-dependent probabilities
//! (e.g. `Pr[h(a) = v] = N_v / N'` in Algorithm 1). We realize `h` as a
//! seeded mix of the value followed by an inverse-CDF lookup over integer
//! weights: the same `(seed, value)` always lands on the same node, and
//! over the domain the distribution follows the weights.

use tamp_simulator::Value;
use tamp_topology::NodeId;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A weighted random hash function `h : domain → nodes`.
///
/// `Pr[h(a) = v] = weight(v) / Σ weight`, deterministically per `(seed, a)`.
#[derive(Clone, Debug)]
pub struct WeightedHash {
    seed: u64,
    nodes: Vec<NodeId>,
    /// Cumulative weights; `cum[i]` = total weight of `nodes[0..=i]`.
    cum: Vec<u64>,
    total: u64,
}

impl WeightedHash {
    /// Build from `(node, weight)` pairs; zero-weight nodes are never
    /// chosen. Returns `None` when the total weight is zero.
    pub fn new(seed: u64, weighted: &[(NodeId, u64)]) -> Option<Self> {
        let mut nodes = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u64;
        for &(v, w) in weighted {
            if w > 0 {
                total += w;
                nodes.push(v);
                cum.push(total);
            }
        }
        if total == 0 {
            return None;
        }
        Some(WeightedHash {
            seed,
            nodes,
            cum,
            total,
        })
    }

    /// Map a value to its node.
    pub fn pick(&self, value: Value) -> NodeId {
        let h = mix64(value ^ self.seed) % self.total;
        // First index with cum > h.
        let i = self.cum.partition_point(|&c| c <= h);
        self.nodes[i]
    }

    /// The nodes with positive weight.
    pub fn support(&self) -> &[NodeId] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_weights() {
        let nodes = [(NodeId(0), 1u64), (NodeId(1), 0), (NodeId(2), 3)];
        let h = WeightedHash::new(7, &nodes).unwrap();
        let mut counts = [0usize; 3];
        let trials = 40_000u64;
        for a in 0..trials {
            counts[h.pick(a).index()] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight node must never be chosen");
        let frac0 = counts[0] as f64 / trials as f64;
        let frac2 = counts[2] as f64 / trials as f64;
        assert!((frac0 - 0.25).abs() < 0.02, "got {frac0}");
        assert!((frac2 - 0.75).abs() < 0.02, "got {frac2}");
    }

    #[test]
    fn deterministic_per_seed() {
        let pairs = [(NodeId(0), 5u64), (NodeId(1), 5)];
        let h1 = WeightedHash::new(42, &pairs).unwrap();
        let h2 = WeightedHash::new(42, &pairs).unwrap();
        let h3 = WeightedHash::new(43, &pairs).unwrap();
        let same = (0..1000).all(|a| h1.pick(a) == h2.pick(a));
        assert!(same);
        let differ = (0..1000).any(|a| h1.pick(a) != h3.pick(a));
        assert!(differ);
    }

    #[test]
    fn zero_total_weight_is_none() {
        assert!(WeightedHash::new(1, &[(NodeId(0), 0)]).is_none());
        assert!(WeightedHash::new(1, &[]).is_none());
    }
}
