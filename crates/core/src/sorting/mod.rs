//! Sorting (Section 5).
//!
//! Given a set `R` from a totally ordered domain, redistribute it so that
//! along a *valid ordering* of the compute nodes (a left-to-right traversal
//! of the tree) every node holds a sorted run and runs are globally
//! ordered. Theorem 6 lower-bounds any algorithm by
//! `max_e (1/w_e) · min{Σ_{V⁻_e} N_v, Σ_{V⁺_e} N_v}` tuples, realized by an
//! adversarial odd/even interleaved initial placement.
//!
//! - [`WeightedTeraSort`] — the 4-round sampling protocol of §5.2 (wTS):
//!   light nodes first push their data to heavy nodes proportionally
//!   (Algorithm 6), heavy nodes sample, one heavy node picks splitters
//!   sized `c_j = ⌈(|V_C|/N)·M_j⌉` per node, then data is re-ranged.
//!   Theorem 7: `O(1)`-optimal w.h.p. when `N ≥ 4|V_C|²ln(|V_C|N)`;
//! - [`TeraSort`] — the classic 3-round uniform-splitter baseline
//!   (O'Malley's TeraSort, run topology-agnostically);
//! - [`sorting_lower_bound`] / [`adversarial_placement`] — Theorem 6.

mod lower_bound;
mod proportional;
pub mod splitters;
mod terasort;
mod wts;

pub use lower_bound::{adversarial_placement, sorting_lower_bound};
pub use proportional::proportional_split;
pub use splitters::{proportional_splitters, uniform_splitters};
pub use terasort::{bucketize, coin, sample_rate, valid_order, TeraSort};
pub use wts::WeightedTeraSort;
