//! The classic TeraSort baseline (O'Malley 2008), run topology-agnostically.
//!
//! Three rounds: (1) every node samples its elements with probability
//! `ρ = 4·(|V_C|/N)·ln(|V_C|·N)` and ships samples to a coordinator;
//! (2) the coordinator sorts the samples and broadcasts `|V_C|−1` equally
//! spaced splitters; (3) every node re-ranges its data by splitter bucket
//! and sorts locally. Splitters are *uniform* — the protocol ignores both
//! the topology and the initial distribution, which is exactly what
//! [`super::WeightedTeraSort`] fixes.

use tamp_simulator::{Protocol, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

use crate::hashing::mix64;

/// The classic 3-round sampling sort. Output: the valid compute-node
/// ordering used (first node = coordinator).
#[derive(Clone, Debug)]
pub struct TeraSort {
    seed: u64,
}

impl TeraSort {
    /// Create with a sampling seed.
    pub fn new(seed: u64) -> Self {
        TeraSort { seed }
    }
}

/// Deterministic Bernoulli(ρ) coin on a value.
pub fn coin(seed: u64, value: Value, rho: f64) -> bool {
    (mix64(value ^ seed) as f64) / (u64::MAX as f64) < rho
}

/// Sampling probability `ρ = 4·(|V_C|/N)·ln(|V_C|·N)`, clamped to `[0, 1]`.
pub fn sample_rate(num_compute: usize, n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let k = num_compute as f64;
    (4.0 * k / n as f64 * ((k * n as f64).ln().max(1.0))).min(1.0)
}

/// A valid ordering of the compute nodes: left-to-right traversal rooted
/// at the first router (or node 0 if the tree has no routers).
pub fn valid_order(tree: &tamp_topology::Tree) -> Vec<NodeId> {
    let root = tree
        .nodes()
        .find(|&v| !tree.is_compute(v))
        .unwrap_or(NodeId(0));
    tree.left_to_right_compute_order(root)
}

/// Partition `data` into buckets by splitters (`b_i ≤ x < b_{i+1}`).
pub fn bucketize(data: &[Value], splitters: &[Value], buckets: usize) -> Vec<Vec<Value>> {
    let mut out = vec![Vec::new(); buckets];
    for &x in data {
        // Number of splitters ≤ x = index of the bucket.
        let i = splitters.partition_point(|&b| b <= x).min(buckets - 1);
        out[i].push(x);
    }
    out
}

/// Redistribute by splitters and rebuild local state: bucket `i` goes to
/// `order[i]`; every node keeps its own bucket and replaces its fragment
/// with own-bucket + received, sorted.
pub(crate) fn redistribute_and_sort(
    session: &mut Session<'_>,
    order: &[NodeId],
    splitters: &[Value],
) -> Result<(), SimError> {
    let k = order.len();
    let num_nodes = session.tree().num_nodes();
    let mut own_bucket: Vec<Vec<Value>> = vec![Vec::new(); num_nodes];
    let mut pre_len = vec![0usize; num_nodes];
    for (i, &v) in order.iter().enumerate() {
        let mut buckets = bucketize(&session.state(v).r, splitters, k);
        own_bucket[v.index()] = std::mem::take(&mut buckets[i]);
        pre_len[v.index()] = session.state(v).r.len();
    }
    session.round(|round| {
        for (i, &v) in order.iter().enumerate() {
            let buckets = bucketize(&round.state(v).r, splitters, k);
            for (j, bucket) in buckets.iter().enumerate() {
                if j != i && !bucket.is_empty() {
                    round.send(v, &[order[j]], Rel::R, bucket)?;
                }
            }
        }
        Ok(())
    })?;
    // Rebuild each node: own bucket + whatever arrived this round.
    for &v in order {
        let state = session.state_mut(v);
        let received = state.r.split_off(pre_len[v.index()]);
        state.r = std::mem::take(&mut own_bucket[v.index()]);
        state.r.extend(received);
        state.s.clear();
    }
    Ok(())
}

impl Protocol for TeraSort {
    type Output = Vec<NodeId>;

    fn name(&self) -> String {
        format!("terasort(seed={})", self.seed)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        let order = valid_order(tree);
        let stats = session.stats().clone();
        let n = stats.total_r;
        if n == 0 {
            return Ok(order);
        }
        let coordinator = order[0];
        let rho = sample_rate(order.len(), n);
        // Round 1: sample → coordinator (control channel S).
        session.round(|round| {
            for &v in &order {
                let samples: Vec<Value> = round
                    .state(v)
                    .r
                    .iter()
                    .copied()
                    .filter(|&x| coin(self.seed, x, rho))
                    .collect();
                round.send(v, &[coordinator], Rel::S, &samples)?;
            }
            Ok(())
        })?;
        // Round 2: coordinator sorts samples, broadcasts uniform splitters.
        let mut samples = session.state(coordinator).s.clone();
        samples.sort_unstable();
        let k = order.len();
        let step = samples.len().div_ceil(k).max(1);
        let splitters: Vec<Value> = (1..k)
            .map(|i| samples.get(i * step - 1).copied().unwrap_or(Value::MAX))
            .collect();
        session.state_mut(coordinator).s.clear();
        let order_clone = order.clone();
        session.round(|round| round.send(coordinator, &order_clone, Rel::S, &splitters))?;
        // Every node now "knows" the splitters (they sit in its S inbox);
        // use them directly. Round 3: redistribute and sort locally.
        redistribute_and_sort(session, &order, &splitters)?;
        for &v in &order {
            session.state_mut(v).r.sort_unstable();
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn scattered(tree: &tamp_topology::Tree, n: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for x in 0..n {
            let v = vc[(mix64(x ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, mix64(x.wrapping_mul(31) ^ seed));
        }
        p
    }

    #[test]
    fn bucketize_respects_boundaries() {
        let buckets = bucketize(&[1, 5, 5, 9, 20], &[5, 10], 3);
        assert_eq!(buckets[0], vec![1]);
        assert_eq!(buckets[1], vec![5, 5, 9]);
        assert_eq!(buckets[2], vec![20]);
    }

    #[test]
    fn sample_rate_clamps() {
        assert_eq!(sample_rate(4, 0), 0.0);
        assert_eq!(sample_rate(100, 10), 1.0);
        let r = sample_rate(4, 1_000_000);
        assert!(r > 0.0 && r < 0.001);
    }

    #[test]
    fn terasort_sorts_on_star() {
        let t = builders::star(4, 1.0);
        let p = scattered(&t, 400, 1);
        let run = run_protocol(&t, &p, &TeraSort::new(7)).unwrap();
        assert_eq!(run.rounds, 3);
        verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r()).unwrap();
    }

    #[test]
    fn terasort_sorts_on_trees() {
        for seed in 0..6u64 {
            let t = builders::random_tree(6, 4, 0.5, 4.0, seed);
            let p = scattered(&t, 300, seed);
            let run = run_protocol(&t, &p, &TeraSort::new(seed)).unwrap();
            verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn terasort_handles_duplicates() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![5; 50]);
        p.set_r(NodeId(1), vec![3; 50]);
        p.set_r(NodeId(2), (0..20).collect());
        let run = run_protocol(&t, &p, &TeraSort::new(2)).unwrap();
        verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r()).unwrap();
    }

    #[test]
    fn terasort_empty_input() {
        let t = builders::star(2, 1.0);
        let p = Placement::empty(&t);
        let run = run_protocol(&t, &p, &TeraSort::new(0)).unwrap();
        assert_eq!(run.cost.tuple_cost(), 0.0);
    }
}
