//! Weighted TeraSort (§5.2): the 4-round distribution-aware sorting
//! protocol.
//!
//! It generalizes TeraSort in three ways: (i) it runs on arbitrary
//! symmetric trees, (ii) only *heavy* nodes (`N_v ≥ N / (2|V_C|)`)
//! participate in sampling and splitting, and (iii) splitters are
//! allocated proportionally to post-round-1 node sizes
//! (`c_j = ⌈(|V_C|/N)·M_j⌉` sample intervals to heavy node `j`) instead of
//! uniformly.
//!
//! Rounds: (1) light nodes push their data to heavy nodes via the
//! drift-free proportional split of Algorithm 6; (2) heavy nodes sample
//! with rate `ρ` and ship samples to the first heavy node `v_1`;
//! (3) `v_1` sorts samples and broadcasts proportional splitters to the
//! heavy nodes; (4) heavy nodes re-range. Theorem 7: with
//! `N ≥ 4|V_C|²·ln(|V_C|·N)`, the cost is `O(1)` from the Theorem 6 bound
//! with probability `1 − 1/N`.
//!
//! (The paper's "heavy" is `N_v ≥ N/(2|V_C|)`: the proof of Theorem 7
//! uses that light nodes together hold `< N/2`; the `N_v ≥ |V_C|`
//! phrasing in §5.2 is a typo.)

use tamp_simulator::{Protocol, Rel, Session, SimError, Value};
use tamp_topology::NodeId;

use super::proportional::proportional_split;
use super::terasort::{coin, redistribute_and_sort, sample_rate, valid_order};

/// The 4-round weighted TeraSort protocol. Output: the valid compute-node
/// ordering (sortedness holds along it; light nodes end up empty).
#[derive(Clone, Debug)]
pub struct WeightedTeraSort {
    seed: u64,
}

impl WeightedTeraSort {
    /// Create with a sampling seed.
    pub fn new(seed: u64) -> Self {
        WeightedTeraSort { seed }
    }
}

impl Protocol for WeightedTeraSort {
    type Output = Vec<NodeId>;

    fn name(&self) -> String {
        format!("weighted-terasort(seed={})", self.seed)
    }

    fn run(&self, session: &mut Session<'_>) -> Result<Self::Output, SimError> {
        let tree = session.tree();
        tree.require_symmetric()
            .map_err(|e| SimError::Protocol(e.to_string()))?;
        let order = valid_order(tree);
        let stats = session.stats().clone();
        let n = stats.total_r;
        if n == 0 {
            return Ok(order);
        }
        let k_all = order.len() as u64;
        // Heavy ⇔ 2·N_v·|V_C| ≥ N (exact integer arithmetic).
        let heavy: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|&v| 2 * stats.n_v(v) * k_all >= n)
            .collect();
        let light: Vec<NodeId> = order
            .iter()
            .copied()
            .filter(|&v| !heavy.contains(&v))
            .collect();
        debug_assert!(!heavy.is_empty(), "max N_v ≥ N/|V_C| ≥ N/(2|V_C|)");
        let heavy_sizes: Vec<u64> = heavy.iter().map(|&v| stats.n_v(v)).collect();

        // Round 1: light → heavy, proportional consecutive chunks.
        session.round(|round| {
            for &u in &light {
                let local = round.state(u).r.clone();
                if local.is_empty() {
                    continue;
                }
                let counts = proportional_split(&heavy_sizes, local.len() as u64);
                let mut start = 0usize;
                for (i, &c) in counts.iter().enumerate() {
                    let end = (start + c as usize).min(local.len());
                    if end > start {
                        round.send(u, &[heavy[i]], Rel::R, &local[start..end])?;
                    }
                    start = end;
                }
            }
            Ok(())
        })?;
        for &u in &light {
            session.state_mut(u).r.clear();
        }

        // Round 2: heavy nodes sample → v_1.
        let v1 = heavy[0];
        let rho = sample_rate(order.len(), n);
        let heavy_clone = heavy.clone();
        let seed = self.seed;
        session.round(|round| {
            for &v in &heavy_clone {
                let samples: Vec<Value> = round
                    .state(v)
                    .r
                    .iter()
                    .copied()
                    .filter(|&x| coin(seed, x, rho))
                    .collect();
                round.send(v, &[v1], Rel::S, &samples)?;
            }
            Ok(())
        })?;

        // Round 3: v_1 picks proportional splitters, broadcasts to heavy.
        let mut samples = session.state(v1).s.clone();
        samples.sort_unstable();
        session.state_mut(v1).s.clear();
        let s_len = samples.len();
        let step = s_len.div_ceil(order.len()).max(1);
        // c_j = ⌈(|V_C|/N)·M_j⌉ sample intervals per heavy node, where M_j
        // is the node's size after round 1.
        let m: Vec<u64> = heavy
            .iter()
            .map(|&v| session.state(v).r.len() as u64)
            .collect();
        let mut splitters = Vec::with_capacity(heavy.len().saturating_sub(1));
        let mut c_acc = 0u64;
        for &mj in m.iter().take(heavy.len() - 1) {
            let cj = (mj * k_all).div_ceil(n);
            c_acc += cj;
            let idx = (c_acc as usize).saturating_mul(step);
            splitters.push(if idx == 0 {
                Value::MIN
            } else {
                samples.get(idx - 1).copied().unwrap_or(Value::MAX)
            });
        }
        let heavy_clone = heavy.clone();
        session.round(|round| round.send(v1, &heavy_clone, Rel::S, &splitters))?;

        // Round 4: heavy nodes re-range by the splitters.
        redistribute_and_sort(session, &heavy, &splitters)?;
        for &v in &heavy {
            session.state_mut(v).r.sort_unstable();
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::mix64;
    use crate::ratio::ratio;
    use crate::sorting::{adversarial_placement, sorting_lower_bound};
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn scattered(tree: &tamp_topology::Tree, n: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for x in 0..n {
            let v = vc[(mix64(x ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, mix64(x.wrapping_mul(31) ^ seed));
        }
        p
    }

    #[test]
    fn wts_sorts_on_star() {
        let t = builders::star(4, 1.0);
        let p = scattered(&t, 500, 1);
        let run = run_protocol(&t, &p, &WeightedTeraSort::new(7)).unwrap();
        assert_eq!(run.rounds, 4);
        verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r()).unwrap();
    }

    #[test]
    fn wts_sorts_on_trees() {
        for seed in 0..8u64 {
            let t = builders::random_tree(6, 4, 0.5, 4.0, seed);
            let p = scattered(&t, 400, seed);
            let run = run_protocol(&t, &p, &WeightedTeraSort::new(seed)).unwrap();
            assert_eq!(run.rounds, 4);
            verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn wts_with_light_nodes() {
        // One heavy node, several nearly-empty light nodes.
        let t = builders::star(5, 1.0);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        p.set_r(vc[0], (0..300).map(mix64).collect());
        p.set_r(vc[1], vec![9, 4]);
        p.set_r(vc[3], vec![7]);
        let run = run_protocol(&t, &p, &WeightedTeraSort::new(5)).unwrap();
        verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r()).unwrap();
        // Light nodes end empty.
        assert!(run.final_state[vc[1].index()].r.is_empty());
        assert!(run.final_state[vc[3].index()].r.is_empty());
    }

    #[test]
    fn wts_on_adversarial_placement_meets_bound() {
        // The Theorem 6 worst case: interleaved odd/even placement.
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (3, 1.0, 2.0)], 1.0);
        let sizes = vec![100u64; 6];
        let root = t.nodes().find(|&v| !t.is_compute(v)).unwrap();
        let p = adversarial_placement(&t, root, &sizes);
        let run = run_protocol(&t, &p, &WeightedTeraSort::new(3)).unwrap();
        verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r()).unwrap();
        let lb = sorting_lower_bound(&t, &p.stats());
        let rat = ratio(run.cost.tuple_cost(), lb.value());
        assert!(rat.is_finite() && rat <= 16.0, "ratio {rat}");
    }

    #[test]
    fn wts_handles_duplicates_and_single_heavy() {
        let t = builders::star(3, 1.0);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), vec![42; 200]);
        p.set_r(NodeId(1), vec![41]);
        let run = run_protocol(&t, &p, &WeightedTeraSort::new(1)).unwrap();
        verify::check_sorted_partition(&run.output, &run.final_state, &p.all_r()).unwrap();
    }

    #[test]
    fn wts_empty_input() {
        let t = builders::star(2, 1.0);
        let p = Placement::empty(&t);
        let run = run_protocol(&t, &p, &WeightedTeraSort::new(0)).unwrap();
        assert_eq!(run.cost.tuple_cost(), 0.0);
        assert_eq!(run.rounds, 0);
    }
}
