//! Splitter selection policies, factored out of the sorting protocols so
//! other layers (the query planner's range-shuffle strategies, the
//! distributed node programs) can derive the *same* splitters from the
//! same shared knowledge.
//!
//! Both policies take the coordinator's sorted sample vector and return
//! `k − 1` splitters for `k` destination nodes (bucket `i` holds the keys
//! `x` with `splitter[i-1] ≤ x < splitter[i]`):
//!
//! - [`proportional_splitters`] — the weighted-TeraSort rule (§5.2):
//!   node `j`'s bucket receives a share of the sampled key space
//!   proportional to its *current* load, so data that is already placed
//!   mostly stays put;
//! - [`uniform_splitters`] — the classic TeraSort rule: equally spaced
//!   sample quantiles, ignoring both the topology and the initial
//!   distribution.

use tamp_simulator::Value;

/// Proportional splitters: node `j` (of `weights.len()` nodes, in valid
/// order) gets a sample share proportional to `weights[j]`. Empty sample
/// vectors degrade to `Value::MAX` splitters (everything lands in the
/// first non-empty bucket), matching the protocols' behavior on tiny
/// inputs. All-zero weight vectors carry no load information at all, so
/// they degrade to the uniform rule instead of collapsing every bucket
/// onto one node.
pub fn proportional_splitters(sorted_samples: &[Value], weights: &[u64]) -> Vec<Value> {
    let k = weights.len();
    let wsum: u64 = weights.iter().sum();
    if wsum == 0 && k > 0 {
        // No weight signal: every `acc * len / wsum` quantile would be
        // degenerate. Fall back to equally spaced quantiles.
        let uniform = vec![1u64; k];
        return proportional_splitters(sorted_samples, &uniform);
    }
    let mut splitters = Vec::with_capacity(k.saturating_sub(1));
    let mut acc = 0u64;
    for &w in weights.iter().take(k.saturating_sub(1)) {
        acc += w;
        if sorted_samples.is_empty() {
            splitters.push(Value::MAX);
            continue;
        }
        // `acc ≤ wsum`, so the quantile index lands in `0..=len`; the
        // clamp keeps a malformed ratio from indexing past the samples.
        let idx = (((acc as u128 * sorted_samples.len() as u128) / wsum as u128) as usize)
            .min(sorted_samples.len());
        splitters.push(if idx == 0 {
            Value::MIN
        } else {
            sorted_samples[idx - 1]
        });
    }
    splitters
}

/// Uniform splitters: `k − 1` equally spaced sample quantiles — the
/// topology-agnostic TeraSort policy.
pub fn uniform_splitters(sorted_samples: &[Value], k: usize) -> Vec<Value> {
    let uniform = vec![1u64; k];
    proportional_splitters(sorted_samples, &uniform)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_tracks_weights() {
        let samples: Vec<Value> = (0..100).collect();
        // Node 0 holds 90% of the data: its bucket should span ~90% of
        // the sampled key space.
        let s = proportional_splitters(&samples, &[90, 5, 5]);
        assert_eq!(s.len(), 2);
        assert!(s[0] >= 85, "{s:?}");
        assert!(s[1] > s[0]);
    }

    #[test]
    fn uniform_is_equally_spaced() {
        let samples: Vec<Value> = (0..100).collect();
        let s = uniform_splitters(&samples, 4);
        assert_eq!(s, vec![24, 49, 74]);
    }

    #[test]
    fn empty_samples_degrade_to_max() {
        assert_eq!(proportional_splitters(&[], &[1, 1]), vec![Value::MAX]);
        assert_eq!(uniform_splitters(&[], 3), vec![Value::MAX, Value::MAX]);
    }

    #[test]
    fn zero_weights_do_not_panic() {
        let samples: Vec<Value> = (0..10).collect();
        let s = proportional_splitters(&samples, &[0, 0, 0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn all_zero_weights_degrade_to_the_uniform_rule() {
        // A zero weight vector carries no information; collapsing every
        // bucket onto one node (the old behavior) was a bug. The
        // degenerate case must match uniform splitters exactly.
        let samples: Vec<Value> = (0..100).collect();
        for k in 2..=6usize {
            let zeros = vec![0u64; k];
            assert_eq!(
                proportional_splitters(&samples, &zeros),
                uniform_splitters(&samples, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn splitters_are_nondecreasing_for_arbitrary_weights() {
        // Regression: any weight vector — zeros, huge skew, trailing
        // zeros, single survivors — must yield nondecreasing splitters
        // that stay inside the sampled key range.
        let samples: Vec<Value> = (0..64).map(|i| i * 3 + 7).collect();
        let weight_sets: &[&[u64]] = &[
            &[0, 0, 0, 0],
            &[1, 0, 0, 1],
            &[0, 5, 0, 0, 9],
            &[u64::MAX / 4, 1, u64::MAX / 4],
            &[90, 5, 5],
            &[0, 0, 1],
            &[1, 1, 1, 1, 1, 1, 1],
            &[3],
        ];
        for &weights in weight_sets {
            let s = proportional_splitters(&samples, weights);
            assert_eq!(s.len(), weights.len().saturating_sub(1), "{weights:?}");
            for w in s.windows(2) {
                assert!(w[0] <= w[1], "{weights:?} -> {s:?}");
            }
            for &x in &s {
                assert!(
                    x == Value::MIN || samples.contains(&x),
                    "{weights:?} -> splitter {x} outside the sample set"
                );
            }
        }
    }
}
