//! Algorithm 6: deterministic proportional splitting with bounded drift.
//!
//! A light node with `N_u` elements must split them across the heavy nodes
//! proportionally to their sizes `N_{v_1}, …, N_{v_k}`. Naive rounding can
//! drift by `k`; Algorithm 6 carries the rounding error `Δ` forward so
//! every *prefix* (and hence every contiguous range, Lemma 9) deviates
//! from the exact proportion by at most one element.

/// Split `n_u` items across heavy nodes with weights `heavy` (all
/// positive) proportionally, returning per-node counts `N_u^i` with
/// `Σ_i N_u^i ≥ n_u` and prefix error below one (Lemma 9).
pub fn proportional_split(heavy: &[u64], n_u: u64) -> Vec<u64> {
    let total: u64 = heavy.iter().sum();
    assert!(total > 0, "heavy nodes must carry weight");
    let mut out = Vec::with_capacity(heavy.len());
    let mut delta = 0.0f64;
    for &w in heavy {
        let x = (w as f64 / total as f64) * n_u as f64;
        let frac = x - x.floor();
        if delta >= frac {
            out.push(x.floor() as u64);
            delta -= frac;
        } else {
            out.push(x.floor() as u64 + 1);
            delta += 1.0 - frac;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lemma 9(1): prefix sums stay within 1 of the exact proportion.
    fn check_lemma9(heavy: &[u64], n_u: u64) {
        let split = proportional_split(heavy, n_u);
        let total: u64 = heavy.iter().sum();
        let mut acc_split = 0u64;
        let mut acc_w = 0u64;
        for (s, &w) in split.iter().zip(heavy) {
            acc_split += s;
            acc_w += w;
            let exact = (acc_w as f64 / total as f64) * n_u as f64;
            assert!(
                acc_split as f64 >= exact - 1e-9 && (acc_split as f64) <= exact + 1.0 + 1e-9,
                "prefix {acc_split} vs exact {exact} (heavy {heavy:?}, n_u {n_u})"
            );
        }
        // Lemma 9(3): everything is assigned.
        assert!(acc_split >= n_u);
    }

    #[test]
    fn lemma9_holds_on_varied_inputs() {
        check_lemma9(&[1, 1, 1], 10);
        check_lemma9(&[5, 3, 9, 2], 17);
        check_lemma9(&[100], 7);
        check_lemma9(&[1, 1000], 13);
        check_lemma9(&[3, 3, 3, 3, 3, 3, 3], 1);
        check_lemma9(&[7, 11, 13], 0);
    }

    #[test]
    fn range_error_bounded_by_one() {
        // Lemma 9(2): any contiguous range deviates by ≤ 1.
        let heavy = [4u64, 9, 2, 7, 5];
        let n_u = 23;
        let split = proportional_split(&heavy, n_u);
        let total: u64 = heavy.iter().sum();
        for i in 0..heavy.len() {
            for j in i..heavy.len() {
                let got: u64 = split[i..=j].iter().sum();
                let w: u64 = heavy[i..=j].iter().sum();
                let exact = (w as f64 / total as f64) * n_u as f64;
                assert!(
                    (got as f64) <= exact + 1.0 + 1e-9 && (got as f64) >= exact - 1.0 - 1e-9,
                    "range [{i},{j}]: {got} vs {exact}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rejects_zero_weights() {
        proportional_split(&[0, 0], 5);
    }
}
