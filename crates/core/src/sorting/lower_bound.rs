//! Theorem 6: the sorting lower bound and its adversarial placement.

use tamp_simulator::{Placement, PlacementStats, Rel};
use tamp_topology::{CutWeights, NodeId, Tree};

use crate::ratio::LowerBound;

/// Evaluate Theorem 6 on a concrete topology and placement:
///
/// ```text
/// C_LB = max_e (1/w_e) · min{ Σ_{v∈V⁻_e} N_v, Σ_{v∈V⁺_e} N_v }
/// ```
///
/// in tuples. The bound is witnessed by the interleaved placement of
/// [`adversarial_placement`]; for arbitrary placements it is still a valid
/// *distribution-specific* yardstick: the paper's algorithms meet it for
/// every placement, and no algorithm beats it on the adversarial one.
pub fn sorting_lower_bound(tree: &Tree, stats: &PlacementStats) -> LowerBound {
    tree.require_symmetric()
        .expect("Theorem 6 requires a symmetric tree");
    let cuts = CutWeights::compute(tree, &stats.n);
    let mut best = LowerBound::zero();
    for e in tree.edges() {
        let value = tree.sym_bandwidth(e).cost_of(cuts.min_side(e) as f64);
        if value > best.value() {
            best = LowerBound::new(value, Some(e));
        }
    }
    best
}

/// The adversarial initial distribution from the proof of Theorem 6.
///
/// Ranked elements `r_1 < r_2 < … < r_N` are laid out in the order
/// `{r_1, r_3, …, r_{N-1}, r_2, r_4, …, r_N}` and dealt to the compute
/// nodes in a left-to-right traversal order (rooted at `root`), `sizes[i]`
/// elements to the `i`-th node of that order. Every cut then separates
/// interleaved odd/even runs, forcing `Ω(min-side)` tuples across it.
///
/// Element values are `1..=N` (value = rank).
pub fn adversarial_placement(tree: &Tree, root: NodeId, sizes: &[u64]) -> Placement {
    let order = tree.left_to_right_compute_order(root);
    assert_eq!(
        sizes.len(),
        order.len(),
        "one size per compute node in traversal order"
    );
    let n: u64 = sizes.iter().sum();
    // The interleaved sequence: odds ascending, then evens ascending.
    let mut seq = Vec::with_capacity(n as usize);
    let mut v = 1u64;
    while v <= n {
        seq.push(v);
        v += 2;
    }
    v = 2;
    while v <= n {
        seq.push(v);
        v += 2;
    }
    let mut placement = Placement::empty(tree);
    let mut cursor = 0usize;
    for (&node, &size) in order.iter().zip(sizes) {
        for _ in 0..size {
            placement.push(node, Rel::R, seq[cursor]);
            cursor += 1;
        }
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamp_topology::builders;

    #[test]
    fn bound_is_min_cut_over_bandwidth() {
        let t = builders::heterogeneous_star(&[1.0, 2.0, 8.0]);
        let mut p = Placement::empty(&t);
        p.set_r(NodeId(0), (0..8).collect());
        p.set_r(NodeId(1), (8..24).collect());
        p.set_r(NodeId(2), (24..32).collect());
        let lb = sorting_lower_bound(&t, &p.stats());
        // Edges: min(8,24)/1 = 8; min(16,16)/2 = 8; min(8,24)/8 = 1.
        assert_eq!(lb.value(), 8.0);
    }

    #[test]
    fn adversarial_placement_interleaves() {
        let t = builders::star(2, 1.0);
        let hub = NodeId(2);
        let p = adversarial_placement(&t, hub, &[3, 3]);
        let order = t.left_to_right_compute_order(hub);
        // First node gets odds {1,3,5}, second gets {2,4,6}.
        assert_eq!(p.node(order[0]).r, vec![1, 3, 5]);
        assert_eq!(p.node(order[1]).r, vec![2, 4, 6]);
    }

    #[test]
    fn adversarial_placement_spills_across() {
        let t = builders::star(2, 1.0);
        let p = adversarial_placement(&t, NodeId(2), &[4, 2]);
        let order = t.left_to_right_compute_order(NodeId(2));
        // N = 6: sequence 1,3,5,2,4,6 → first node {1,3,5,2}, second {4,6}.
        assert_eq!(p.node(order[0]).r, vec![1, 3, 5, 2]);
        assert_eq!(p.node(order[1]).r, vec![4, 6]);
    }

    #[test]
    fn every_rank_placed_once() {
        let t = builders::rack_tree(&[(2, 1.0, 1.0), (3, 1.0, 1.0)], 1.0);
        let p = adversarial_placement(&t, NodeId(5), &[4, 1, 7, 0, 3]);
        let mut all = p.all_r();
        all.sort_unstable();
        assert_eq!(all, (1..=15).collect::<Vec<_>>());
    }
}
