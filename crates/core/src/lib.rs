//! # tamp-core
//!
//! The algorithms and lower bounds of *"Algorithms for a Topology-aware
//! Massively Parallel Computation Model"* (Hu, Koutris, Blanas — PODS
//! 2021), implemented against the executable cost model of
//! [`tamp_simulator`].
//!
//! | Paper section | Module |
//! |---------------|--------|
//! | §3 set intersection (Thm 1, Algs 1–3) | [`intersection`] |
//! | §4 cartesian product (Thms 3–5, wHC, Alg 5) | [`cartesian`] |
//! | §4.5 + App. A.1 unequal cartesian product | [`cartesian::unequal`] |
//! | §5 sorting (Thm 6, weighted TeraSort) | [`sorting`] |
//! | §6 related work: distribution-aware aggregation (extension) | [`aggregate`] |
//!
//! Each task module also ships the **topology-agnostic baseline** its
//! algorithm generalizes (uniform hash join, the classic HyperCube, classic
//! TeraSort), so that the paper's "who wins" claims can be measured, and a
//! `*_lower_bound` function evaluating the task's per-edge lower bound on a
//! concrete topology and placement. [`ratio`](ratio::ratio) computes
//! `cost(algorithm) / lower bound` — the quantity Table 1 bounds.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod cartesian;
pub mod general;
pub mod hashing;
pub mod intersection;
pub mod ratio;
pub mod robustness;
pub mod sorting;

pub use ratio::{ratio, LowerBound};
