//! Bandwidth imprecision and the cost of the model's knowledge assumption.
//!
//! §3.3's closing remark observes that the set-intersection routing "does
//! not use the link bandwidths to decide what to send and where to send
//! to … a significant practical advantage because bandwidth information
//! may be imprecise or have high variability at runtime". The same holds
//! for weighted TeraSort. The cartesian-product protocol is the
//! exception: its square sides are computed *from* the bandwidths
//! (Algorithm 5), so stale measurements change the plan.
//!
//! This module mechanizes both halves of that remark:
//!
//! - [`perturb_bandwidths`] rescales every link by a random factor in
//!   `[1/spread, spread]`, modelling drifted measurements;
//! - the tests (and the `bandwidth_drift` experiment) verify that
//!   intersection and sorting move **identical per-edge traffic** on the
//!   perturbed tree — routing is bandwidth-oblivious — while
//!   [`TreeCartesianProduct::with_planning_tree`](crate::cartesian::TreeCartesianProduct::with_planning_tree)
//!   quantifies how much a bandwidth-dependent plan degrades when fed
//!   stale numbers;
//! - [`BroadcastStatistics`] prices the §2 knowledge assumption itself
//!   (every algorithm "knows `|X_0(v)|` for each node"): one all-to-all
//!   round of two counters per node, `O(|V|)` tuples per edge —
//!   vanishingly cheap next to any data movement.

use tamp_simulator::{Protocol, Rel, Session, SimError};
use tamp_topology::{DirEdgeId, NodeKind, Tree};

/// Deterministically rescale every edge's bandwidth by a factor drawn
/// uniformly (per edge) from `[1/spread, spread]`. Structure, node kinds
/// and symmetry are preserved; `spread = 1.0` is the identity.
pub fn perturb_bandwidths(tree: &Tree, spread: f64, seed: u64) -> Tree {
    assert!(spread >= 1.0, "spread must be ≥ 1");
    let kinds: Vec<NodeKind> = (0..tree.num_nodes())
        .map(|i| tree.kind(tamp_topology::NodeId(i as u32)))
        .collect();
    let ln_spread = spread.ln();
    let edges: Vec<(usize, usize, f64, f64)> = tree
        .edges()
        .map(|e| {
            let (u, v) = tree.endpoints(e);
            // Log-uniform factor in [1/spread, spread].
            let r =
                crate::hashing::mix64(seed ^ (0xE1 + e.index() as u64)) as f64 / u64::MAX as f64;
            let factor = ((2.0 * r - 1.0) * ln_spread).exp();
            let scale = |w: f64| if w.is_infinite() { w } else { w * factor };
            let fwd = tree.bandwidth(DirEdgeId::new(e, false)).get();
            let rev = tree.bandwidth(DirEdgeId::new(e, true)).get();
            (u.index(), v.index(), scale(fwd), scale(rev))
        })
        .collect();
    Tree::from_parts(kinds, edges).expect("perturbation preserves tree structure")
}

/// The one-round protocol that realizes the model's knowledge assumption:
/// every compute node broadcasts its two fragment cardinalities to every
/// other compute node. Its cost — `O(|V_C|)` tuples over any edge — is
/// the price of "the algorithm knows `|X_0(v)|`" (§2), and the
/// experiments show it is negligible against any data-dependent cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct BroadcastStatistics;

impl BroadcastStatistics {
    /// Create the protocol.
    pub fn new() -> Self {
        BroadcastStatistics
    }
}

impl Protocol for BroadcastStatistics {
    type Output = ();

    fn name(&self) -> String {
        "broadcast-statistics".into()
    }

    fn run(&self, session: &mut Session<'_>) -> Result<(), SimError> {
        let tree = session.tree();
        let all: Vec<_> = tree.compute_nodes().to_vec();
        let stats = session.stats().clone();
        session.round(|round| {
            for &v in &all {
                let counters = [stats.r_v(v), stats.s_v(v)];
                round.send(v, &all, Rel::R, &counters)?;
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cartesian::TreeCartesianProduct;
    use crate::intersection::TreeIntersect;
    use crate::sorting::WeightedTeraSort;
    use tamp_simulator::{run_protocol, verify, Placement};
    use tamp_topology::builders;

    fn scatter(tree: &Tree, r: u64, s: u64, seed: u64) -> Placement {
        let mut p = Placement::empty(tree);
        let vc = tree.compute_nodes();
        for a in 0..r {
            let v = vc[(crate::hashing::mix64(a ^ seed) % vc.len() as u64) as usize];
            p.push(v, Rel::R, a);
        }
        for a in 0..s {
            let v = vc[(crate::hashing::mix64(a ^ seed ^ 0xFE) % vc.len() as u64) as usize];
            p.push(v, Rel::S, r / 2 + a);
        }
        p
    }

    #[test]
    fn perturbation_preserves_structure_and_bounds() {
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0);
        let p = perturb_bandwidths(&t, 3.0, 7);
        assert_eq!(p.num_nodes(), t.num_nodes());
        assert_eq!(p.num_edges(), t.num_edges());
        assert!(p.is_symmetric());
        for e in t.edges() {
            let ratio = p.sym_bandwidth(e).get() / t.sym_bandwidth(e).get();
            assert!(
                (1.0 / 3.0 - 1e-12..=3.0 + 1e-12).contains(&ratio),
                "ratio {ratio}"
            );
        }
        // Deterministic in the seed; identity at spread 1.
        let p2 = perturb_bandwidths(&t, 3.0, 7);
        for e in t.edges() {
            assert_eq!(p.sym_bandwidth(e), p2.sym_bandwidth(e));
        }
        let id = perturb_bandwidths(&t, 1.0, 99);
        for e in t.edges() {
            assert!((id.sym_bandwidth(e).get() - t.sym_bandwidth(e).get()).abs() < 1e-12);
        }
    }

    #[test]
    fn infinite_links_stay_infinite() {
        let t = builders::mpc_star(3);
        let p = perturb_bandwidths(&t, 2.0, 1);
        let inf_edges = t
            .dir_edges()
            .filter(|&d| t.bandwidth(d).is_infinite())
            .count();
        let still = p
            .dir_edges()
            .filter(|&d| p.bandwidth(d).is_infinite())
            .count();
        assert_eq!(inf_edges, still);
    }

    #[test]
    fn intersection_traffic_is_bandwidth_oblivious() {
        // The §3.3 remark, mechanized: same placement, same seed, wildly
        // different bandwidths ⇒ identical per-edge traffic.
        let t = builders::rack_tree(&[(3, 1.0, 2.0), (3, 2.0, 4.0)], 1.0);
        let drifted = perturb_bandwidths(&t, 8.0, 3);
        let p = scatter(&t, 100, 300, 5);
        let a = run_protocol(&t, &p, &TreeIntersect::new(11)).unwrap();
        let b = run_protocol(&drifted, &p, &TreeIntersect::new(11)).unwrap();
        assert_eq!(a.cost.edge_totals, b.cost.edge_totals);
        verify::check_intersection(&b.final_state, &p.all_r(), &p.all_s()).unwrap();
    }

    #[test]
    fn sorting_traffic_is_bandwidth_oblivious() {
        let t = builders::caterpillar(4, 2, 1.0);
        let drifted = perturb_bandwidths(&t, 8.0, 9);
        let mut p = Placement::empty(&t);
        let vc = t.compute_nodes();
        for x in 0..400u64 {
            p.push(
                vc[(x % vc.len() as u64) as usize],
                Rel::R,
                crate::hashing::mix64(x),
            );
        }
        let a = run_protocol(&t, &p, &WeightedTeraSort::new(4)).unwrap();
        let b = run_protocol(&drifted, &p, &WeightedTeraSort::new(4)).unwrap();
        assert_eq!(a.cost.edge_totals, b.cost.edge_totals);
    }

    #[test]
    fn cartesian_plan_is_bandwidth_sensitive() {
        // Unlike the two protocols above, wHC's traffic *changes* when it
        // is planned against different bandwidths on a heterogeneous tree.
        let t = builders::rack_tree(&[(3, 4.0, 8.0), (3, 0.5, 1.0)], 1.0);
        let drifted = perturb_bandwidths(&t, 8.0, 2);
        let p = scatter(&t, 60, 60, 1);
        let fresh = run_protocol(&t, &p, &TreeCartesianProduct::new()).unwrap();
        let stale =
            run_protocol(&t, &p, &TreeCartesianProduct::with_planning_tree(drifted)).unwrap();
        verify::check_pair_coverage(&stale.final_state, &p.all_r(), &p.all_s()).unwrap();
        assert_ne!(
            fresh.cost.edge_totals, stale.cost.edge_totals,
            "stale bandwidths should change the square plan's traffic"
        );
        // Both plans stay within Theorem 5's constant-factor envelope of
        // each other (Algorithm 5 guarantees O(1)-optimality, not a
        // cost-minimal plan, so either can win by a rounding constant).
        let (f, st) = (fresh.cost.tuple_cost(), stale.cost.tuple_cost());
        assert!(st <= 8.0 * f && f <= 8.0 * st, "fresh {f} vs stale {st}");
    }

    #[test]
    fn stale_planning_rejects_structural_mismatch() {
        let t = builders::star(3, 1.0);
        let other = builders::star(4, 1.0);
        let p = scatter(&t, 10, 10, 0);
        assert!(matches!(
            run_protocol(&t, &p, &TreeCartesianProduct::with_planning_tree(other)),
            Err(SimError::Protocol(_))
        ));
    }

    #[test]
    fn statistics_broadcast_is_cheap() {
        let t = builders::rack_tree(&[(4, 1.0, 2.0), (4, 1.0, 2.0)], 1.0);
        let p = scatter(&t, 5_000, 15_000, 3);
        let stats_cost = run_protocol(&t, &p, &BroadcastStatistics::new())
            .unwrap()
            .cost
            .tuple_cost();
        let data_cost = run_protocol(&t, &p, &TreeIntersect::new(1))
            .unwrap()
            .cost
            .tuple_cost();
        // Two counters per node vs thousands of tuples.
        assert!(
            stats_cost * 50.0 < data_cost,
            "stats {stats_cost} vs data {data_cost}"
        );
    }
}
