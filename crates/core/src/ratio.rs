//! Lower-bound values and competitive ratios.

use tamp_topology::EdgeId;

/// An evaluated lower bound: the bound's value (in tuples) and the edge
/// whose cut attains the maximum, when meaningful.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LowerBound {
    value: f64,
    witness: Option<EdgeId>,
}

impl LowerBound {
    /// A bound of `value` attained at `witness`.
    pub fn new(value: f64, witness: Option<EdgeId>) -> Self {
        LowerBound { value, witness }
    }

    /// The zero bound (e.g. when all data already sits on one node).
    pub fn zero() -> Self {
        LowerBound {
            value: 0.0,
            witness: None,
        }
    }

    /// The bound's value, in tuples.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The edge attaining the maximum.
    #[inline]
    pub fn witness(&self) -> Option<EdgeId> {
        self.witness
    }

    /// Pointwise maximum of two bounds.
    pub fn max(self, other: LowerBound) -> LowerBound {
        if other.value > self.value {
            other
        } else {
            self
        }
    }
}

/// Competitive ratio `cost / lb` with the degenerate cases pinned:
/// `0 / 0 = 1` (both vacuous) and `x / 0 = ∞` for `x > 0`.
pub fn ratio(cost: f64, lb: f64) -> f64 {
    if lb > 0.0 {
        cost / lb
    } else if cost == 0.0 {
        1.0
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_degenerate_cases() {
        assert_eq!(ratio(10.0, 5.0), 2.0);
        assert_eq!(ratio(0.0, 0.0), 1.0);
        assert_eq!(ratio(3.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn max_prefers_larger() {
        let a = LowerBound::new(3.0, None);
        let b = LowerBound::new(5.0, Some(EdgeId(1)));
        assert_eq!(a.max(b).value(), 5.0);
        assert_eq!(a.max(b).witness(), Some(EdgeId(1)));
        assert_eq!(b.max(a).value(), 5.0);
    }
}
