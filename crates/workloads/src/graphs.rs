//! Seeded graph generators and vertex partitions for iterative
//! analytics.
//!
//! The iterative workload family (PageRank, BFS, connected components —
//! `tamp_query::iterative`) consumes *edge relations*: a graph is a list
//! of directed arcs `(src, dst)` over vertices `0..n`, and every vertex
//! is owned by one compute node. This module generates both halves
//! reproducibly:
//!
//! - [`GraphSpec`] — seeded generators for the three canonical shapes:
//!   uniform random (no structure), power-law / skewed (a few hubs carry
//!   most of the degree mass, sampled from the same Zipf family as
//!   [`PlacementStrategy::Zipf`]), and grid-like (strong id-locality,
//!   the torus-style workload of the topology-comparison literature).
//! - [`VertexPartition`] — where vertices live: the topology-agnostic
//!   uniform [`Hash`](VertexPartition::Hash) baseline, or
//!   [`Blocked`](VertexPartition::Blocked) contiguous blocks balanced by
//!   *degree mass* against a [`PlacementStrategy`]'s per-node weights —
//!   the degree-aware, topology-aware placement (heavy vertices behind
//!   fat links, adjacent ids co-located).
//!
//! Everything is deterministic in `(spec, strategy, seed)`: the same
//! triple always yields the same edge list and the same owner vector
//! (property-tested below), which is what makes iterative schedules
//! replayable bit-for-bit across engines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tamp_topology::{NodeId, Tree};

use crate::placement::PlacementStrategy;

/// A directed graph over vertices `0..vertices()`, stored as arcs. The
/// generators emit symmetric arc pairs (an undirected edge contributes
/// `u→v` and `v→u`), so out-degree equals total degree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    vertices: usize,
    arcs: Vec<(u64, u64)>,
}

impl Graph {
    /// Build a graph from explicit arcs (deduplicated, sorted).
    pub fn from_arcs(vertices: usize, mut arcs: Vec<(u64, u64)>) -> Self {
        arcs.sort_unstable();
        arcs.dedup();
        Graph { vertices, arcs }
    }

    /// Number of vertices (`0..n` are all valid ids).
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// The arcs, sorted by `(src, dst)` and deduplicated.
    pub fn arcs(&self) -> &[(u64, u64)] {
        &self.arcs
    }

    /// Number of directed arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Out-degree per vertex (equals total degree for the symmetric
    /// generators).
    pub fn degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.vertices];
        for &(u, _) in &self.arcs {
            deg[u as usize] += 1;
        }
        deg
    }

    /// The graph as a width-2 edge relation (`[src, dst]` rows), ready
    /// for a `DistributedTable` or an iterative job.
    pub fn edge_rows(&self) -> Vec<Vec<u64>> {
        self.arcs.iter().map(|&(u, v)| vec![u, v]).collect()
    }
}

/// Seeded specification of a graph workload. `generate(seed)` is
/// deterministic in `(self, seed)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphSpec {
    /// `edges` undirected edges with independently uniform endpoints
    /// (self-loops redrawn, duplicates dropped): the no-structure
    /// baseline.
    Uniform {
        /// Number of vertices.
        vertices: usize,
        /// Undirected edges to sample (distinct edges kept).
        edges: usize,
    },
    /// Skewed: both endpoints Zipf-distributed over vertex ids (vertex
    /// `i` drawn with mass `∝ 1/(i+1)^alpha`), so low ids become hubs —
    /// the same skew family as [`PlacementStrategy::Zipf`]. With
    /// `alpha ≳ 0.8` vertex 0 is adjacent to most of the graph, the
    /// shape frontier-mode BFS and the skewed bench scenarios rely on.
    PowerLaw {
        /// Number of vertices.
        vertices: usize,
        /// Undirected edges to sample (distinct edges kept).
        edges: usize,
        /// Zipf skew (0 = uniform, 1+ = heavily skewed).
        alpha: f64,
    },
    /// A `rows × cols` grid: vertex `r·cols + c` connects to its right
    /// and down neighbors. Maximal id-locality — the torus-style
    /// workload (no randomness; the seed is ignored).
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

impl GraphSpec {
    /// Uniform random graph.
    pub fn uniform(vertices: usize, edges: usize) -> Self {
        GraphSpec::Uniform { vertices, edges }
    }

    /// Power-law / skewed graph.
    pub fn power_law(vertices: usize, edges: usize, alpha: f64) -> Self {
        GraphSpec::PowerLaw {
            vertices,
            edges,
            alpha,
        }
    }

    /// Grid graph.
    pub fn grid(rows: usize, cols: usize) -> Self {
        GraphSpec::Grid { rows, cols }
    }

    /// Number of vertices the spec describes.
    pub fn vertices(&self) -> usize {
        match *self {
            GraphSpec::Uniform { vertices, .. } | GraphSpec::PowerLaw { vertices, .. } => vertices,
            GraphSpec::Grid { rows, cols } => rows * cols,
        }
    }

    /// Generate the graph, deterministically in `(self, seed)`.
    pub fn generate(&self, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6EA7_6EA7);
        match *self {
            GraphSpec::Uniform { vertices, edges } => {
                let n = vertices.max(2);
                let mut arcs = Vec::with_capacity(edges * 2);
                for _ in 0..edges {
                    let (u, v) = loop {
                        let u = rng.random_range(0..n as u64);
                        let v = rng.random_range(0..n as u64);
                        if u != v {
                            break (u, v);
                        }
                    };
                    arcs.push((u, v));
                    arcs.push((v, u));
                }
                Graph::from_arcs(vertices.max(2), arcs)
            }
            GraphSpec::PowerLaw {
                vertices,
                edges,
                alpha,
            } => {
                let n = vertices.max(2);
                // Cumulative Zipf mass over vertex ids, sampled by
                // inversion (the placement scatter's idiom).
                let cum: Vec<f64> = (0..n)
                    .scan(0.0, |acc, i| {
                        *acc += 1.0 / ((i + 1) as f64).powf(alpha);
                        Some(*acc)
                    })
                    .collect();
                let total = *cum.last().unwrap();
                let pick = |rng: &mut StdRng| {
                    let t = rng.random::<f64>() * total;
                    cum.partition_point(|&c| c < t).min(n - 1) as u64
                };
                let mut arcs = Vec::with_capacity(edges * 2);
                for _ in 0..edges {
                    let (u, v) = loop {
                        let u = pick(&mut rng);
                        let v = pick(&mut rng);
                        if u != v {
                            break (u, v);
                        }
                    };
                    arcs.push((u, v));
                    arcs.push((v, u));
                }
                Graph::from_arcs(n, arcs)
            }
            GraphSpec::Grid { rows, cols } => {
                let at = |r: usize, c: usize| (r * cols + c) as u64;
                let mut arcs = Vec::new();
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            arcs.push((at(r, c), at(r, c + 1)));
                            arcs.push((at(r, c + 1), at(r, c)));
                        }
                        if r + 1 < rows {
                            arcs.push((at(r, c), at(r + 1, c)));
                            arcs.push((at(r + 1, c), at(r, c)));
                        }
                    }
                }
                Graph::from_arcs(rows * cols, arcs)
            }
        }
    }
}

/// Where each vertex lives: the placement half of an iterative workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VertexPartition {
    /// Independently uniform over compute nodes — the topology-agnostic
    /// baseline (the MPC hash partition): no locality, no degree
    /// awareness.
    Hash,
    /// Contiguous vertex blocks, one per compute node, sized so each
    /// node's block carries a share of the total *degree mass*
    /// proportional to the strategy's
    /// [`node_weights`](PlacementStrategy::node_weights). Degree-aware
    /// (a hub-heavy block stays small) and topology-aware (with
    /// [`PlacementStrategy::ProportionalToBandwidth`], heavy blocks sit
    /// behind fat links); contiguity preserves the id-locality of
    /// grid-like graphs. Deterministic — the seed only feeds
    /// [`Hash`](Self::Hash).
    Blocked(PlacementStrategy),
}

impl VertexPartition {
    /// The owner of every vertex, aligned with vertex ids.
    /// Deterministic in `(self, graph, seed)`.
    pub fn owners(&self, tree: &Tree, graph: &Graph, seed: u64) -> Vec<NodeId> {
        let vc = tree.compute_nodes();
        let n = graph.vertices();
        match self {
            VertexPartition::Hash => {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x17E8_17E8);
                (0..n).map(|_| vc[rng.random_range(0..vc.len())]).collect()
            }
            VertexPartition::Blocked(strategy) => {
                let mut weights = strategy.node_weights(tree);
                if weights.iter().sum::<f64>() <= 0.0 {
                    weights = vec![1.0; vc.len()];
                }
                let total_w: f64 = weights.iter().sum();
                // Each vertex weighs deg + 1 (isolated vertices still
                // occupy a slot), so block boundaries balance traffic
                // mass, not raw vertex counts.
                let mass: Vec<f64> = graph.degrees().iter().map(|&d| d as f64 + 1.0).collect();
                let total_mass: f64 = mass.iter().sum();
                let mut owners = Vec::with_capacity(n);
                let mut node = 0usize;
                let mut acc = 0.0;
                let mut cum_w = weights[0];
                for m in mass {
                    owners.push(vc[node]);
                    acc += m;
                    while node + 1 < vc.len() && acc >= total_mass * cum_w / total_w {
                        node += 1;
                        cum_w += weights[node];
                    }
                }
                owners
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tamp_topology::builders;

    #[test]
    fn grid_has_exact_arc_count_and_locality() {
        let g = GraphSpec::grid(4, 5).generate(0);
        assert_eq!(g.vertices(), 20);
        // 4·4 horizontal + 3·5 vertical undirected edges, two arcs each.
        assert_eq!(g.num_arcs(), 2 * (4 * 4 + 3 * 5));
        for &(u, v) in g.arcs() {
            let d = u.abs_diff(v);
            assert!(d == 1 || d == 5, "grid arcs join neighbors: {u}→{v}");
        }
    }

    #[test]
    fn power_law_concentrates_degree_on_low_ids() {
        let g = GraphSpec::power_law(200, 2000, 1.0).generate(3);
        let deg = g.degrees();
        let hub = deg[0];
        let tail: u64 = deg[150..].iter().sum::<u64>() / 50;
        assert!(hub > 8 * tail.max(1), "hub {hub} vs tail mean {tail}");
    }

    #[test]
    fn uniform_spreads_degree() {
        let g = GraphSpec::uniform(100, 1000).generate(1);
        let deg = g.degrees();
        assert!(
            deg.iter().all(|&d| d > 0),
            "dense uniform leaves no isolated vertex"
        );
        let max = *deg.iter().max().unwrap();
        let min = *deg.iter().min().unwrap();
        assert!(max < 8 * min.max(1), "uniform degrees stay comparable");
    }

    #[test]
    fn blocked_partition_is_contiguous_and_degree_balanced() {
        let t = builders::star(4, 1.0);
        let g = GraphSpec::power_law(200, 1500, 0.9).generate(5);
        let owners = VertexPartition::Blocked(PlacementStrategy::Uniform).owners(&t, &g, 5);
        assert_eq!(owners.len(), 200);
        // Contiguous: owner ids are non-decreasing in vertex order.
        for w in owners.windows(2) {
            assert!(w[0].index() <= w[1].index(), "blocks are contiguous");
        }
        // Degree-balanced: every node's block carries a comparable
        // degree mass, so the hub block is much smaller in vertices.
        let deg = g.degrees();
        let mut mass = vec![0.0; t.num_nodes()];
        let mut count = vec![0usize; t.num_nodes()];
        for (v, &o) in owners.iter().enumerate() {
            mass[o.index()] += deg[v] as f64 + 1.0;
            count[o.index()] += 1;
        }
        let masses: Vec<f64> = t.compute_nodes().iter().map(|v| mass[v.index()]).collect();
        let hi = masses.iter().cloned().fold(0.0, f64::max);
        let lo = masses.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(hi < 3.0 * lo, "degree mass balanced: {masses:?}");
        let hub_block = count[owners[0].index()];
        let tail_block = count[owners[199].index()];
        assert!(
            hub_block < tail_block,
            "hub block holds fewer vertices ({hub_block} vs {tail_block})"
        );
    }

    #[test]
    fn blocked_follows_bandwidth_weights() {
        // One fat leaf, three thin: the proportional partition parks
        // most of the degree mass behind the fat link.
        let t = builders::heterogeneous_star(&[9.0, 1.0, 1.0, 1.0]);
        let g = GraphSpec::uniform(120, 600).generate(2);
        let owners =
            VertexPartition::Blocked(PlacementStrategy::ProportionalToBandwidth).owners(&t, &g, 2);
        let fat = t.compute_nodes()[0];
        let on_fat = owners.iter().filter(|&&o| o == fat).count();
        assert!(on_fat > 60, "fat leaf owns most vertices, got {on_fat}");
    }

    #[test]
    fn hash_partition_spreads() {
        let t = builders::star(4, 1.0);
        let g = GraphSpec::uniform(400, 800).generate(9);
        let owners = VertexPartition::Hash.owners(&t, &g, 9);
        for &v in t.compute_nodes() {
            let c = owners.iter().filter(|&&o| o == v).count();
            assert!(c > 50, "node {v} got {c} vertices");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The satellite determinism property: `(GraphSpec,
        /// PlacementStrategy, seed)` always yields identical edge lists
        /// and placements across runs — the precondition for bit-identical
        /// iterative schedules.
        #[test]
        fn generation_and_partition_are_deterministic(
            seed in 0u64..1_000,
            shape in 0usize..3,
            skew in 0usize..3,
            n in 20usize..120,
            m in 30usize..400,
        ) {
            let spec = match shape {
                0 => GraphSpec::uniform(n, m),
                1 => GraphSpec::power_law(n, m, 0.4 + 0.3 * skew as f64),
                _ => GraphSpec::grid(n / 5 + 1, 5),
            };
            let strategy = match skew {
                0 => PlacementStrategy::Uniform,
                1 => PlacementStrategy::Zipf { alpha: 1.0 },
                _ => PlacementStrategy::ProportionalToBandwidth,
            };
            let tree = builders::rack_tree(&[(3, 2.0, 4.0), (2, 1.0, 2.0)], 1.0);
            let a = spec.generate(seed);
            let b = spec.generate(seed);
            prop_assert_eq!(a.arcs(), b.arcs());
            prop_assert_eq!(a.vertices(), b.vertices());
            for part in [VertexPartition::Hash, VertexPartition::Blocked(strategy)] {
                let oa = part.owners(&tree, &a, seed);
                let ob = part.owners(&tree, &b, seed);
                prop_assert_eq!(&oa, &ob);
                prop_assert_eq!(oa.len(), a.vertices());
                for &o in &oa {
                    prop_assert!(tree.is_compute(o));
                }
            }
        }
    }
}
