//! Placement strategies: where the input starts.
//!
//! The paper's algorithms are *distribution-aware*; these strategies span
//! the benign (uniform) to the adversarial (everything far from where it
//! is needed, or piled on the slowest link).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tamp_simulator::{Placement, Rel, Value};
use tamp_topology::{NodeId, Tree};

use crate::sets::Workload;

/// How to scatter a [`Workload`] over the compute nodes of a tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlacementStrategy {
    /// Independently uniform over compute nodes.
    Uniform,
    /// Zipf-distributed over compute nodes: node `i` (in id order) gets
    /// mass `∝ 1/(i+1)^alpha`.
    Zipf {
        /// Skew parameter (0 = uniform, 1+ = heavily skewed).
        alpha: f64,
    },
    /// Everything on the `k`-th compute node (in id order).
    SingleNode {
        /// Index into the compute-node list.
        k: usize,
    },
    /// `R` entirely on the first compute node, `S` entirely on the last —
    /// maximal separation of the two relations.
    Separated,
    /// Mass proportional to each leaf's adjacent-link bandwidth (the
    /// "friendly" placement: data already sits behind fat links).
    ProportionalToBandwidth,
    /// Mass *inversely* proportional to bandwidth (the hostile placement:
    /// data piles up behind thin links).
    InverseBandwidth,
}

impl PlacementStrategy {
    /// Materialize a placement of `workload` on `tree`'s compute nodes.
    pub fn place(&self, tree: &Tree, workload: &Workload, seed: u64) -> Placement {
        let weights = self.node_weights(tree);
        let mut placement = Placement::empty(tree);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9C3A_77EE);
        match self {
            PlacementStrategy::Separated => {
                let vc = tree.compute_nodes();
                let first = vc[0];
                let last = vc[vc.len() - 1];
                placement.set_r(first, workload.r.to_vec());
                placement.set_s(last, workload.s.to_vec());
            }
            _ => {
                scatter(
                    &mut placement,
                    &workload.r,
                    Rel::R,
                    tree,
                    &weights,
                    &mut rng,
                );
                scatter(
                    &mut placement,
                    &workload.s,
                    Rel::S,
                    tree,
                    &weights,
                    &mut rng,
                );
            }
        }
        placement
    }

    /// Per-compute-node placement weights (aligned with
    /// `tree.compute_nodes()`).
    pub fn node_weights(&self, tree: &Tree) -> Vec<f64> {
        let vc = tree.compute_nodes();
        match *self {
            PlacementStrategy::Uniform | PlacementStrategy::Separated => vec![1.0; vc.len()],
            PlacementStrategy::Zipf { alpha } => (0..vc.len())
                .map(|i| 1.0 / ((i + 1) as f64).powf(alpha))
                .collect(),
            PlacementStrategy::SingleNode { k } => {
                let mut w = vec![0.0; vc.len()];
                w[k.min(vc.len() - 1)] = 1.0;
                w
            }
            PlacementStrategy::ProportionalToBandwidth => {
                vc.iter().map(|&v| leaf_bandwidth(tree, v)).collect()
            }
            PlacementStrategy::InverseBandwidth => vc
                .iter()
                .map(|&v| 1.0 / leaf_bandwidth(tree, v).max(1e-12))
                .collect(),
        }
    }
}

fn leaf_bandwidth(tree: &Tree, v: NodeId) -> f64 {
    // Min bandwidth over the node's incident directions, finite fallback.
    tree.neighbors(v)
        .iter()
        .map(|&(_, e)| {
            let fwd = tree
                .bandwidth(tamp_topology::DirEdgeId::new(e, false))
                .get();
            let rev = tree.bandwidth(tamp_topology::DirEdgeId::new(e, true)).get();
            fwd.min(rev)
        })
        .fold(f64::INFINITY, f64::min)
        .min(1e12)
}

fn scatter(
    placement: &mut Placement,
    values: &[Value],
    rel: Rel,
    tree: &Tree,
    weights: &[f64],
    rng: &mut StdRng,
) {
    let vc = tree.compute_nodes();
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "placement weights must not all be zero");
    let cum: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, &w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    for &x in values {
        let t = rng.random::<f64>() * total;
        let i = cum.partition_point(|&c| c < t).min(vc.len() - 1);
        placement.push(vc[i], rel, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::SetSpec;
    use tamp_topology::builders;

    fn workload() -> Workload {
        SetSpec::new(400, 800).with_intersection(100).generate(1)
    }

    #[test]
    fn uniform_spreads_everything() {
        let t = builders::star(4, 1.0);
        let p = PlacementStrategy::Uniform.place(&t, &workload(), 7);
        p.validate(&t).unwrap();
        let stats = p.stats();
        assert_eq!(stats.total_r, 400);
        assert_eq!(stats.total_s, 800);
        for &v in t.compute_nodes() {
            assert!(stats.n_v(v) > 150, "node {v} got {}", stats.n_v(v));
        }
    }

    #[test]
    fn single_node_concentrates() {
        let t = builders::star(4, 1.0);
        let p = PlacementStrategy::SingleNode { k: 2 }.place(&t, &workload(), 7);
        let stats = p.stats();
        assert_eq!(stats.n_v(t.compute_nodes()[2]), 1200);
    }

    #[test]
    fn separated_splits_relations() {
        let t = builders::caterpillar(3, 2, 1.0);
        let p = PlacementStrategy::Separated.place(&t, &workload(), 7);
        let vc = t.compute_nodes();
        assert_eq!(p.node(vc[0]).r.len(), 400);
        assert_eq!(p.node(vc[vc.len() - 1]).s.len(), 800);
    }

    #[test]
    fn zipf_skews_to_early_nodes() {
        let t = builders::star(8, 1.0);
        let p = PlacementStrategy::Zipf { alpha: 1.5 }.place(&t, &workload(), 7);
        let stats = p.stats();
        let first = stats.n_v(t.compute_nodes()[0]);
        let last = stats.n_v(t.compute_nodes()[7]);
        assert!(first > 4 * last.max(1), "first {first}, last {last}");
    }

    #[test]
    fn bandwidth_strategies_follow_links() {
        let t = builders::heterogeneous_star(&[16.0, 1.0]);
        let w = workload();
        let prop = PlacementStrategy::ProportionalToBandwidth.place(&t, &w, 7);
        let inv = PlacementStrategy::InverseBandwidth.place(&t, &w, 7);
        let vc = t.compute_nodes();
        assert!(prop.stats().n_v(vc[0]) > 8 * prop.stats().n_v(vc[1]).max(1));
        assert!(inv.stats().n_v(vc[1]) > 8 * inv.stats().n_v(vc[0]).max(1));
    }

    #[test]
    fn placement_is_deterministic() {
        let t = builders::star(4, 1.0);
        let w = workload();
        let a = PlacementStrategy::Uniform.place(&t, &w, 9);
        let b = PlacementStrategy::Uniform.place(&t, &w, 9);
        for v in t.nodes() {
            assert_eq!(a.node(v), b.node(v));
        }
    }
}
