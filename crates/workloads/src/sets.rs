//! Input data generators.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tamp_simulator::Value;

/// The generated input: the two relations (for sorting, `s` stays empty).
///
/// Each relation is a frozen `Arc<[Value]>` column — the same shared
/// buffer layout the query engine's record batches use — so cloning a
/// workload (or handing a relation to a batch) bumps a refcount instead
/// of copying the data.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Elements of `R`.
    pub r: Arc<[Value]>,
    /// Elements of `S`.
    pub s: Arc<[Value]>,
}

impl Workload {
    /// `N = |R| + |S|`.
    pub fn total(&self) -> usize {
        self.r.len() + self.s.len()
    }
}

/// Specification of a two-set workload with a planted intersection.
#[derive(Clone, Copy, Debug)]
pub struct SetSpec {
    /// `|R|`.
    pub r_size: usize,
    /// `|S|`.
    pub s_size: usize,
    /// `|R ∩ S|` (≤ min(|R|, |S|)).
    pub intersection: usize,
}

impl SetSpec {
    /// Disjoint sets of the given sizes.
    pub fn new(r_size: usize, s_size: usize) -> Self {
        SetSpec {
            r_size,
            s_size,
            intersection: 0,
        }
    }

    /// Plant an intersection of exactly `k` elements.
    pub fn with_intersection(mut self, k: usize) -> Self {
        assert!(k <= self.r_size.min(self.s_size));
        self.intersection = k;
        self
    }

    /// Generate distinct-valued sets with exactly the planted overlap,
    /// shuffled deterministically by `seed`.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E7_5E75);
        // Distinct values: carve three disjoint ranges out of a mixed
        // domain, using a random base to decorrelate runs.
        let base: Value = rng.random::<u32>() as Value * 1_000_003;
        let shared: Vec<Value> = (0..self.intersection as Value).map(|i| base + i).collect();
        let r_only: Vec<Value> = (0..(self.r_size - self.intersection) as Value)
            .map(|i| base + 0x4000_0000 + i)
            .collect();
        let s_only: Vec<Value> = (0..(self.s_size - self.intersection) as Value)
            .map(|i| base + 0x8000_0000 + i)
            .collect();
        let mut r: Vec<Value> = shared.iter().copied().chain(r_only).collect();
        let mut s: Vec<Value> = shared.into_iter().chain(s_only).collect();
        r.shuffle(&mut rng);
        s.shuffle(&mut rng);
        Workload {
            r: r.into(),
            s: s.into(),
        }
    }
}

/// Specification of a sorting workload.
#[derive(Clone, Copy, Debug)]
pub struct SortSpec {
    /// Number of elements.
    pub n: usize,
    /// Fraction of duplicated values in `[0, 1)`.
    pub duplicate_fraction: f64,
}

impl SortSpec {
    /// `n` elements, all distinct.
    pub fn new(n: usize) -> Self {
        SortSpec {
            n,
            duplicate_fraction: 0.0,
        }
    }

    /// Make roughly `frac` of the elements duplicates of earlier ones.
    pub fn with_duplicates(mut self, frac: f64) -> Self {
        assert!((0.0..1.0).contains(&frac));
        self.duplicate_fraction = frac;
        self
    }

    /// Generate the multiset (in `Workload::r`; `s` stays empty).
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50F7_50F7);
        let mut r: Vec<Value> = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let dup = !r.is_empty() && rng.random::<f64>() < self.duplicate_fraction;
            if dup {
                let i = rng.random_range(0..r.len());
                r.push(r[i]);
            } else {
                r.push(rng.random::<Value>() >> 1);
            }
        }
        Workload {
            r: r.into(),
            s: Arc::from(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn planted_intersection_is_exact() {
        let w = SetSpec::new(100, 300).with_intersection(37).generate(5);
        assert_eq!(w.r.len(), 100);
        assert_eq!(w.s.len(), 300);
        let rs: BTreeSet<Value> = w.r.iter().copied().collect();
        let ss: BTreeSet<Value> = w.s.iter().copied().collect();
        assert_eq!(rs.len(), 100, "R values must be distinct");
        assert_eq!(ss.len(), 300, "S values must be distinct");
        assert_eq!(rs.intersection(&ss).count(), 37);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SetSpec::new(50, 50).with_intersection(10).generate(3);
        let b = SetSpec::new(50, 50).with_intersection(10).generate(3);
        assert_eq!(a.r, b.r);
        assert_eq!(a.s, b.s);
        let c = SetSpec::new(50, 50).with_intersection(10).generate(4);
        assert_ne!(a.r, c.r);
    }

    #[test]
    fn sort_spec_duplicates() {
        let w = SortSpec::new(1000).with_duplicates(0.5).generate(1);
        assert_eq!(w.r.len(), 1000);
        let distinct: BTreeSet<Value> = w.r.iter().copied().collect();
        assert!(distinct.len() < 800, "expected many duplicates");
        let w2 = SortSpec::new(1000).generate(1);
        let distinct2: BTreeSet<Value> = w2.r.iter().copied().collect();
        assert_eq!(distinct2.len(), 1000);
    }
}
