//! # tamp-workloads
//!
//! Reproducible input and placement generators for topology-aware MPC
//! experiments.
//!
//! The paper's lower bounds and algorithms are parameterized by the
//! *initial data distribution*, so experiments need precise control over
//! both the data ([`SetSpec`], [`SortSpec`]) and where it starts
//! ([`PlacementStrategy`]). Everything is seeded: the same `(spec,
//! strategy, seed)` triple always produces the same
//! [`Placement`](tamp_simulator::Placement).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod placement;
pub mod sets;

pub use placement::PlacementStrategy;
pub use sets::{SetSpec, SortSpec, Workload};
