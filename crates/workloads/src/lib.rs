//! # tamp-workloads
//!
//! Reproducible input and placement generators for topology-aware MPC
//! experiments.
//!
//! The paper's lower bounds and algorithms are parameterized by the
//! *initial data distribution*, so experiments need precise control over
//! both the data ([`SetSpec`], [`SortSpec`]) and where it starts
//! ([`PlacementStrategy`]). Everything is seeded: the same `(spec,
//! strategy, seed)` triple always produces the same
//! [`Placement`](tamp_simulator::Placement).
//!
//! Two scenario families ship today:
//!
//! - **Relational** ([`sets`]): seeded value sets and sort instances for
//!   the one-shot §2 protocols and the query layer, placed by a
//!   [`PlacementStrategy`].
//! - **Graph** ([`graphs`]): seeded edge relations ([`GraphSpec`] —
//!   uniform random, power-law/skewed, grid-like) plus degree-aware
//!   vertex partitions ([`VertexPartition`]) for the iterative
//!   fixpoint driver in `tamp_query::iterative`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod graphs;
pub mod placement;
pub mod sets;

pub use graphs::{Graph, GraphSpec, VertexPartition};
pub use placement::PlacementStrategy;
pub use sets::{SetSpec, SortSpec, Workload};
