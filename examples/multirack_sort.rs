//! Multi-rack sort: weighted TeraSort vs classic TeraSort when the data
//! distribution is skewed.
//!
//! Classic TeraSort picks *uniform* splitters, forcing every machine —
//! including nearly-empty ones behind thin links — to receive `N/p`
//! elements. Weighted TeraSort (§5.2) sizes each machine's key range
//! proportionally to what it already holds, so data mostly stays put.
//! The example also demonstrates the Theorem 6 adversarial placement,
//! where Ω(min-cut) movement is unavoidable for *any* algorithm.
//!
//! ```text
//! cargo run --release --example multirack_sort
//! ```

use tamp::core::sorting::{adversarial_placement, sorting_lower_bound, TeraSort, WeightedTeraSort};
use tamp::simulator::{run_protocol, verify};
use tamp::topology::builders;
use tamp::workloads::{PlacementStrategy, SortSpec};

fn main() {
    let tree = builders::rack_tree(&[(4, 8.0, 2.0), (4, 8.0, 2.0)], 1.0);
    let n = 40_000usize;

    println!("sorting {n} elements on 2 racks × 4 machines\n");
    println!(
        "{:>22}  {:>8}  {:>10}  {:>10}  {:>10}",
        "placement", "rounds", "wTS cost", "TeraSort", "lower-bnd"
    );
    for (name, strategy) in [
        ("uniform", PlacementStrategy::Uniform),
        ("zipf(1.0) skew", PlacementStrategy::Zipf { alpha: 1.0 }),
        (
            "one machine has all",
            PlacementStrategy::SingleNode { k: 0 },
        ),
    ] {
        let data = SortSpec::new(n).with_duplicates(0.1).generate(21);
        let placement = strategy.place(&tree, &data, 21);
        let lb = sorting_lower_bound(&tree, &placement.stats());
        let wts = run_protocol(&tree, &placement, &WeightedTeraSort::new(4)).unwrap();
        let tera = run_protocol(&tree, &placement, &TeraSort::new(4)).unwrap();
        verify::check_sorted_partition(&wts.output, &wts.final_state, &placement.all_r())
            .expect("wTS sorts correctly");
        verify::check_sorted_partition(&tera.output, &tera.final_state, &placement.all_r())
            .expect("TeraSort sorts correctly");
        println!(
            "{:>22}  {:>8}  {:>10.0}  {:>10.0}  {:>10.0}",
            name,
            wts.rounds,
            wts.cost.tuple_cost(),
            tera.cost.tuple_cost(),
            lb.value()
        );
    }

    // The Theorem 6 worst case: odd ranks on the left rack, even ranks on
    // the right — every element must cross the core.
    let root = tree.nodes().find(|&v| !tree.is_compute(v)).unwrap();
    let sizes = vec![(n / 8) as u64; 8];
    let placement = adversarial_placement(&tree, root, &sizes);
    let lb = sorting_lower_bound(&tree, &placement.stats());
    let wts = run_protocol(&tree, &placement, &WeightedTeraSort::new(4)).unwrap();
    verify::check_sorted_partition(&wts.output, &wts.final_state, &placement.all_r())
        .expect("sorted");
    println!(
        "{:>22}  {:>8}  {:>10.0}  {:>10}  {:>10.0}",
        "adversarial (Thm 6)",
        wts.rounds,
        wts.cost.tuple_cost(),
        "-",
        lb.value()
    );
    println!("\nunder skew the weighted splitters leave data in place; under the");
    println!("adversarial interleave no algorithm can avoid the min-cut movement.");
}
