//! One query, three topologies — which strategy wins where, and how
//! close to the lower bound it lands.
//!
//! The paper's Table 1 bounds `cost(algorithm) / lower bound` per task;
//! the query layer surfaces the same quantity per *operator*. This
//! walkthrough prepares the same analytics query — join, group-by,
//! global sort — on three very different networks:
//!
//! 1. a uniform star (the classic MPC setting),
//! 2. a two-level fat-tree,
//! 3. a chain of racks with skewed uplink bandwidths (4.0 → 1.0 → 0.25),
//!
//! and prints, for every strategy-pluggable operator, each candidate's
//! estimated cost and lower-bound ratio, which candidate the cost-based
//! planner picked, and the winner's *metered* ratio after actually
//! running — on both backends, with bit-identical ledgers.
//!
//! ```text
//! cargo run --release --example strategy_showdown
//! ```

use tamp::query::prelude::*;
use tamp::runtime::PooledClusterBackend;
use tamp::topology::builders;
use tamp::topology::Tree;

fn context(tree: Tree) -> QueryContext {
    let heavy = tree.compute_nodes()[0];
    // A mid-size fact table, 70% parked on one machine, and a dimension
    // table big enough that broadcasting it is a real decision.
    let orders: Vec<Vec<u64>> = (0..900).map(|i| vec![i, i % 12, (i * 97) % 500]).collect();
    let orders = DistributedTable::skewed(
        "orders",
        Schema::new(vec!["id", "product", "amount"]).unwrap(),
        orders,
        &tree,
        heavy,
        0.7,
    );
    let products = DistributedTable::round_robin(
        "products",
        Schema::new(vec!["product", "category"]).unwrap(),
        (0..120).map(|p| vec![p % 12, p % 4]).collect(),
        &tree,
    );
    let mut ctx = QueryContext::new(tree).with_seed(7);
    ctx.register(orders).unwrap().register(products).unwrap();
    ctx
}

fn main() {
    // SELECT category, SUM(amount) FROM orders JOIN products USING
    // (product) GROUP BY category ORDER BY category;
    let query = LogicalPlan::scan("orders")
        .join_on(LogicalPlan::scan("products"), "product", "product")
        .aggregate("category", AggFunc::Sum, "amount")
        .order_by("sum_amount");

    let scenarios: Vec<(&str, Tree)> = vec![
        ("uniform star (8 machines)", builders::star(8, 1.0)),
        ("fat-tree 2x3", builders::fat_tree(2, 3, 1.0)),
        (
            "skewed-bandwidth chain of racks (uplinks 4.0 / 1.0 / 0.25)",
            builders::rack_tree(&[(3, 4.0, 4.0), (3, 4.0, 1.0), (3, 4.0, 0.25)], 1.0),
        ),
    ];

    for (name, tree) in scenarios {
        println!("==================================================================");
        println!("== {name}");
        let ctx = context(tree);
        let prepared = ctx.prepare(&query).unwrap();
        println!("{}", prepared.explain());

        // Run the winning plan on both engines: same rows, bit-identical
        // metered ledger.
        let sim = prepared.run().unwrap();
        let cluster = prepared.run_on(&PooledClusterBackend::default()).unwrap();
        assert_eq!(sim.cost.edge_totals, cluster.cost.edge_totals);
        assert_eq!(sim.rows(true), cluster.rows(true));

        println!(
            "   {:<20} {:>24} {:>9} {:>9} {:>9} {:>9}",
            "operator", "winning strategy", "est", "metered", "LB", "ratio"
        );
        for oc in &sim.operator_costs {
            let Some(strategy) = oc.strategy else {
                continue;
            };
            let (lb, ratio) = match oc.lower_bound {
                Some(lb) if lb > 0.0 => (format!("{lb:.1}"), format!("{:.2}", oc.actual / lb)),
                _ => ("-".into(), "-".into()),
            };
            println!(
                "   {:<20} {:>24} {:>9.1} {:>9.1} {:>9} {:>9}",
                oc.op, strategy, oc.estimated, oc.actual, lb, ratio
            );
        }
        println!(
            "   total metered {:.1} over {} rounds (simulator = pooled cluster)\n",
            sim.cost.tuple_cost(),
            sim.rounds,
        );
    }
    println!("same query, three networks — the winning strategy follows the topology,");
    println!("and each winner's metered cost is measured against the paper's lower bound");
}
