//! Quickstart: build a topology, place data, run all three tasks, compare
//! against their lower bounds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tamp::core::cartesian::{cartesian_lower_bound, TreeCartesianProduct};
use tamp::core::intersection::{intersection_lower_bound, TreeIntersect};
use tamp::core::ratio::ratio;
use tamp::core::sorting::{sorting_lower_bound, WeightedTeraSort};
use tamp::simulator::{run_protocol, verify, RunReport};
use tamp::topology::builders;
use tamp::workloads::{PlacementStrategy, SetSpec, SortSpec};

fn main() {
    // A small datacenter: two racks of four machines behind 2-unit uplinks
    // plus one rack of four behind a fat 8-unit uplink.
    let tree = builders::rack_tree(&[(4, 4.0, 2.0), (4, 4.0, 2.0), (4, 4.0, 8.0)], 1.0);
    println!(
        "topology: {} nodes ({} compute), symmetric tree",
        tree.num_nodes(),
        tree.num_compute()
    );

    // ---- Set intersection (Section 3) -------------------------------
    let sets = SetSpec::new(2_000, 6_000)
        .with_intersection(500)
        .generate(1);
    let placement = PlacementStrategy::Zipf { alpha: 1.0 }.place(&tree, &sets, 1);
    let lb = intersection_lower_bound(&tree, &placement.stats());
    let run = run_protocol(&tree, &placement, &TreeIntersect::new(7)).expect("protocol runs");
    verify::check_intersection(&run.final_state, &placement.all_r(), &placement.all_s())
        .expect("intersection is correct");
    println!("\n{}", RunReport::new(&tree, &run));
    println!(
        "  found {} of 500 planted matches; lower bound {:.0} tuples, ratio {:.2}",
        run.output.len(),
        lb.value(),
        ratio(run.cost.tuple_cost(), lb.value())
    );

    // ---- Cartesian product (Section 4) ------------------------------
    let sets = SetSpec::new(1_500, 1_500).generate(2);
    let placement = PlacementStrategy::Uniform.place(&tree, &sets, 2);
    let lb = cartesian_lower_bound(&tree, &placement.stats());
    let run = run_protocol(&tree, &placement, &TreeCartesianProduct::new()).expect("runs");
    verify::check_pair_coverage(&run.final_state, &placement.all_r(), &placement.all_s())
        .expect("every output pair is covered");
    println!("{}", RunReport::new(&tree, &run));
    println!(
        "  all {} pairs covered; lower bound {:.0}, ratio {:.2}",
        1_500u64 * 1_500,
        lb.value(),
        ratio(run.cost.tuple_cost(), lb.value())
    );

    // ---- Sorting (Section 5) -----------------------------------------
    let data = SortSpec::new(12_000).generate(3);
    let placement = PlacementStrategy::Zipf { alpha: 0.8 }.place(&tree, &data, 3);
    let lb = sorting_lower_bound(&tree, &placement.stats());
    let run = run_protocol(&tree, &placement, &WeightedTeraSort::new(9)).expect("runs");
    verify::check_sorted_partition(&run.output, &run.final_state, &placement.all_r())
        .expect("globally sorted");
    println!("{}", RunReport::new(&tree, &run));
    println!(
        "  sorted 12000 elements in {} rounds; lower bound {:.0}, ratio {:.2}",
        run.rounds,
        lb.value(),
        ratio(run.cost.tuple_cost(), lb.value())
    );
}
