//! `EXPLAIN` across topologies: the same query, different plans.
//!
//! The paper's thesis is that the communication strategy must follow the
//! *topology and data distribution*. This walkthrough makes that visible
//! at the query layer: the same join runs on a heterogeneous star and on
//! a fat-tree, with balanced and skewed placements, and
//! `PreparedQuery::explain()` shows the planner pricing the three join
//! exchanges (weighted repartition / uniform repartition / small-side
//! broadcast) on the §2 cost model and switching its choice as the
//! environment changes. Each plan then actually runs — on the simulator
//! *and* the pooled cluster — and the metered per-operator costs are
//! printed next to the estimates.
//!
//! ```text
//! cargo run --release --example explain
//! ```

use tamp::query::prelude::*;
use tamp::runtime::PooledClusterBackend;
use tamp::topology::builders;
use tamp::topology::Tree;

fn context(tree: Tree, skewed: bool) -> QueryContext {
    let heavy = tree.compute_nodes()[0];
    let orders: Vec<Vec<u64>> = (0..900).map(|i| vec![i, i % 12, (i * 97) % 500]).collect();
    let schema = Schema::new(vec!["id", "product", "amount"]).unwrap();
    let orders = if skewed {
        // 90% of the fact table parked on one machine.
        DistributedTable::skewed("orders", schema, orders, &tree, heavy, 0.9)
    } else {
        DistributedTable::round_robin("orders", schema, orders, &tree)
    };
    // A mid-size side table: big enough that broadcasting it is a real
    // cost, small enough that it sometimes wins anyway.
    let products = DistributedTable::round_robin(
        "products",
        Schema::new(vec!["product", "category"]).unwrap(),
        (0..300).map(|p| vec![p % 12, p % 4]).collect(),
        &tree,
    );
    let mut ctx = QueryContext::new(tree).with_seed(7);
    ctx.register(orders).unwrap().register(products).unwrap();
    ctx
}

fn main() {
    // SELECT category, SUM(amount) FROM orders JOIN products USING
    // (product) GROUP BY category;
    let query = LogicalPlan::scan("orders")
        .join_on(LogicalPlan::scan("products"), "product", "product")
        .aggregate("category", AggFunc::Sum, "amount");

    let scenarios: Vec<(&str, QueryContext)> = vec![
        (
            "heterogeneous star, balanced data",
            context(
                builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]),
                false,
            ),
        ),
        (
            "heterogeneous star, 90% skew behind the 0.5-bw link",
            context(
                builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]),
                true,
            ),
        ),
        ("fat-tree 2x3, balanced data", {
            context(builders::fat_tree(2, 3, 1.0), false)
        }),
        ("fat-tree 2x3, 90% skew on one leaf", {
            context(builders::fat_tree(2, 3, 1.0), true)
        }),
    ];

    for (name, ctx) in &scenarios {
        println!("==================================================================");
        println!("== {name}");
        let prepared = ctx.prepare(&query).unwrap();
        println!("{}", prepared.explain());

        // The same prepared plan runs on both engines with bit-identical
        // metered ledgers.
        let sim = prepared.run().unwrap();
        let cluster = prepared.run_on(&PooledClusterBackend::default()).unwrap();
        assert_eq!(sim.cost.edge_totals, cluster.cost.edge_totals);
        assert_eq!(sim.rows(false), cluster.rows(false));

        println!(
            "   {:<24} {:>10} {:>10}",
            "operator", "estimated", "metered"
        );
        for oc in &sim.operator_costs {
            if oc.estimated > 0.0 || oc.actual > 0.0 {
                println!(
                    "   {:<24} {:>10.1} {:>10.1}",
                    oc.op, oc.estimated, oc.actual
                );
            }
        }
        println!(
            "   total: estimated {:.1}, metered {:.1} over {} rounds (simulator = cluster, bit-identical)\n",
            sim.estimated_cost,
            sim.cost.tuple_cost(),
            sim.rounds,
        );
    }
    println!("same query, four environments — the exchange choice follows the topology");
}
