//! A serving-layer walkthrough: eight client threads, one
//! `QueryService`, one shared pooled cluster.
//!
//! The first four PRs built a single-session pipeline — one
//! `QueryContext`, one prepared plan, one backend run. This example is
//! the "millions of users" shape instead: many client threads firing a
//! mixed analytics workload at one service that
//!
//! 1. caches prepared plans under a canonical fingerprint of
//!    `(logical plan, topology, catalog version, options)`,
//! 2. bounds in-flight queries with FIFO admission, and
//! 3. executes everything on one shared `ExecBackend` — here the pooled
//!    BSP cluster with a persistent worker crew reused across every
//!    query.
//!
//! Along the way it checks the serving layer's core promise: every
//! concurrently served result is **bit-identical** (rows and metered
//! ledger) to a fresh single-session `prepare().run()`. It finishes by
//! re-registering a table mid-service and showing the cache invalidate
//! and the replanned EXPLAIN.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use std::time::Instant;

use tamp::query::prelude::*;
use tamp::query::service::QueryService;
use tamp::runtime::{ExecBackend, PooledClusterBackend};
use tamp::topology::builders;
use tamp::topology::Tree;

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 32;

fn context(tree: &Tree) -> QueryContext {
    let mut ctx = QueryContext::new(tree.clone()).with_seed(41);
    let facts: Vec<Vec<u64>> = (0..300).map(|i| vec![i, i % 12, (i * 53) % 2048]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        tree,
    ))
    .unwrap();
    ctx.register(DistributedTable::round_robin(
        "dims",
        Schema::new(vec!["g", "tier"]).unwrap(),
        (0..12).map(|g| vec![g, g % 4]).collect(),
        tree,
    ))
    .unwrap();
    ctx
}

fn workload() -> Vec<(&'static str, LogicalPlan)> {
    vec![
        (
            "join+aggregate",
            LogicalPlan::scan("facts")
                .join_on(LogicalPlan::scan("dims"), "g", "g")
                .aggregate("tier", AggFunc::Sum, "x"),
        ),
        (
            "top-25 by x",
            LogicalPlan::scan("facts").order_by("x").limit(25),
        ),
        (
            "distinct buckets",
            LogicalPlan::scan("facts")
                .project(vec![("g", col("g")), ("b", col("x").div(lit(256)))])
                .distinct(),
        ),
    ]
}

fn main() {
    let tree = builders::fat_tree(2, 3, 1.0);
    println!(
        "fat-tree 2x3: {} compute nodes; {} client threads x {} queries each\n",
        tree.compute_nodes().len(),
        THREADS,
        QUERIES_PER_THREAD
    );

    // Serial single-session ground truth, per query.
    let serial_ctx = context(&tree);
    let queries = workload();
    let reference: Vec<QueryResult> = queries
        .iter()
        .map(|(_, q)| serial_ctx.prepare(q).unwrap().run().unwrap())
        .collect();

    // One shared backend (persistent 4-thread crew, reused by every
    // query) behind one shared service.
    let backend = Arc::new(PooledClusterBackend::with_shared_pool(4));
    println!("shared backend: {}", backend.name());
    let service = QueryService::new(context(&tree), backend)
        .with_max_inflight(THREADS)
        .unwrap();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (service, queries, reference) = (&service, &queries, &reference);
            scope.spawn(move || {
                for i in 0..QUERIES_PER_THREAD {
                    let k = (t + i) % queries.len();
                    let served = service.serve(&queries[k].1).unwrap();
                    assert_eq!(
                        served.result.rows(false),
                        reference[k].rows(false),
                        "{}: rows diverged from single-session execution",
                        queries[k].0
                    );
                    assert_eq!(
                        served.result.cost.edge_totals, reference[k].cost.edge_totals,
                        "{}: metered ledger diverged",
                        queries[k].0
                    );
                }
            });
        }
    });
    let wall = start.elapsed();

    let total = THREADS * QUERIES_PER_THREAD;
    let cache = service.cache_stats();
    let adm = service.admission_stats();
    println!(
        "served {total} queries in {:.1} ms ({:.0} queries/sec), all bit-identical to serial",
        wall.as_secs_f64() * 1e3,
        total as f64 / wall.as_secs_f64()
    );
    println!(
        "plan cache: {} hits / {} misses ({} entries); admission: peak {} in flight (bound {})\n",
        cache.hits, cache.misses, cache.entries, adm.peak_inflight, adm.max_inflight
    );

    // One served query's telemetry.
    let served = service.serve(&queries[0].1).unwrap();
    let s = served.stats;
    println!(
        "one '{}' serve: ticket #{}, queued {:?}, plan {:?} (cache hit: {}), exec {:?}\n",
        queries[0].0, s.ticket, s.queued, s.plan, s.cache_hit, s.exec
    );

    // Re-register `dims` mid-service: version bump, cache invalidated,
    // next serve replans against the new generation.
    service
        .register(DistributedTable::round_robin(
            "dims",
            Schema::new(vec!["g", "tier"]).unwrap(),
            (0..12).map(|g| vec![g, g % 7]).collect(),
            &tree,
        ))
        .unwrap();
    println!(
        "re-registered `dims`: catalog v{}, cache {} entries, {} invalidations",
        service.catalog_version(),
        service.cache_stats().entries,
        service.cache_stats().invalidations
    );
    let replanned = service.serve(&queries[0].1).unwrap();
    assert!(!replanned.stats.cache_hit);
    println!("\nreplanned EXPLAIN after the register:");
    println!("{}", service.explain(&queries[0].1).unwrap());
}
