//! Iterative graph analytics on the topology-aware cost model.
//!
//! The fixpoint driver (`tamp::query::iterative`) prepares one
//! width-invariant per-iteration plan — scatter along the graph's arcs,
//! combine partial residuals up a combining tree — and replays it over
//! any `ExecBackend`. This example walks the whole loop on a power-law
//! graph:
//!
//! 1. generate a skewed (Zipf-endpoint) graph and place its vertices two
//!    ways — degree-balanced contiguous blocks proportional to leaf
//!    bandwidth (topology-aware) vs a uniform hash (agnostic);
//! 2. run PageRank (dense Jacobi rounds) and connected components
//!    (frontier/delta rounds, re-priced each iteration from the previous
//!    iteration's metered cardinalities);
//! 3. print the per-iteration EXPLAIN ANALYZE cost table — estimated vs
//!    metered vs the per-cut lower bound — and confirm the simulator and
//!    the pooled BSP cluster meter bit-identical ledgers.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use tamp::query::iterative::{IterativeJob, IterativeSpec};
use tamp::runtime::PooledClusterBackend;
use tamp::topology::builders;
use tamp::workloads::{GraphSpec, PlacementStrategy, VertexPartition};

fn main() {
    // A bandwidth-skewed fat-tree: one fat rack (8× links), one thin.
    let tree = builders::rack_tree(&[(3, 8.0, 24.0), (3, 1.0, 4.0)], 16.0);

    // A 300-vertex power-law graph: arc endpoints are Zipf(1.1), so a few
    // hub vertices touch most of the arcs.
    let graph = GraphSpec::power_law(300, 2200, 1.1).generate(7);
    let degrees = graph.degrees();
    let hub = (0..degrees.len()).max_by_key(|&v| degrees[v]).unwrap();
    println!(
        "graph: {} vertices, {} arcs, hub vertex {} with degree {}\n",
        graph.vertices(),
        graph.num_arcs(),
        hub,
        degrees[hub]
    );

    // Topology-aware placement: contiguous degree-balanced blocks sized
    // proportional to each leaf's bandwidth, so the hub cluster's degree
    // mass sits behind the fat rack.
    let aware = VertexPartition::Blocked(PlacementStrategy::ProportionalToBandwidth)
        .owners(&tree, &graph, 7);
    // Agnostic placement: hash vertices uniformly across the leaves.
    let agnostic = VertexPartition::Hash.owners(&tree, &graph, 7);

    // --- PageRank, dense Jacobi iterations -----------------------------
    let spec = IterativeSpec::jacobi(40, 1e-3);
    let pr = IterativeJob::pagerank(graph.arcs().to_vec(), aware.clone(), 0.85, spec)
        .prepare(&tree)
        .expect("pagerank converges");
    let on_sim = pr.run(&tree).expect("simulator replay");
    let on_cluster = pr
        .run_on(&tree, &PooledClusterBackend::default())
        .expect("cluster replay");
    assert_eq!(on_sim.cost.edge_totals, on_cluster.cost.edge_totals);
    assert_eq!(on_sim.values, on_cluster.values);
    println!("{}", on_sim.explain_analyze());
    let ranks = on_sim.values.ranks().unwrap();
    println!(
        "hub rank {:.4} vs mean {:.4} (identical on both backends)\n",
        ranks[hub],
        1.0 / ranks.len() as f64
    );

    // The same fixpoint under the agnostic placement costs more — the
    // iteration count is placement-independent, only the price moves.
    let pr_hash = IterativeJob::pagerank(graph.arcs().to_vec(), agnostic, 0.85, spec)
        .prepare(&tree)
        .expect("pagerank converges")
        .run(&tree)
        .expect("simulator replay");
    assert_eq!(pr_hash.iterations.len(), on_sim.iterations.len());
    println!(
        "placement: aware metered {:.1} vs agnostic {:.1} ({:.2}× cheaper)\n",
        on_sim.total_metered(),
        pr_hash.total_metered(),
        pr_hash.total_metered() / on_sim.total_metered()
    );

    // --- Connected components, frontier/delta iterations ---------------
    // Frontier rounds ship only label improvements, so the exchange
    // shrinks as labels settle; each iteration's estimate is the previous
    // iteration's metered exchange re-priced.
    let cc = IterativeJob::connected_components(
        graph.arcs().to_vec(),
        aware,
        IterativeSpec::frontier(64, 0.0),
    )
    .prepare(&tree)
    .expect("labels settle");
    let cc_sim = cc.run(&tree).expect("simulator replay");
    let cc_cluster = cc
        .run_on(&tree, &PooledClusterBackend::default())
        .expect("cluster replay");
    assert_eq!(cc_sim.cost.edge_totals, cc_cluster.cost.edge_totals);
    assert_eq!(cc_sim.values, cc_cluster.values);
    println!("{}", cc_sim.explain_analyze());
    let labels = cc_sim.values.labels().unwrap();
    let mut components: Vec<u64> = labels.to_vec();
    components.sort_unstable();
    components.dedup();
    println!(
        "{} connected component(s); hub's component label {}",
        components.len(),
        labels[hub]
    );
}
