//! A datacenter join scenario: a small dimension table scattered across
//! racks must be matched against a large fact table, with one rack behind
//! a congested uplink.
//!
//! This is the paper's motivating workload for set intersection: the
//! topology-agnostic hash join floods the slow uplink with its uniform
//! share of the fact table, while the distribution-aware `TreeIntersect`
//! routes around it. The example sweeps the uplink slowdown and prints
//! both costs.
//!
//! ```text
//! cargo run --release --example datacenter_join
//! ```

use tamp::core::intersection::{intersection_lower_bound, TreeIntersect, UniformHashJoin};
use tamp::simulator::{run_protocol, verify, Placement, Rel};
use tamp::topology::builders;
use tamp::workloads::SetSpec;

fn main() {
    println!("datacenter join: 3 racks × 4 machines; rack C's uplink degrades\n");
    println!(
        "{:>10}  {:>14}  {:>14}  {:>10}  {:>8}",
        "slowdown", "tree-intersect", "uniform-join", "lower-bnd", "speedup"
    );
    for slowdown in [1u32, 2, 4, 8, 16, 32] {
        // Racks A and B are healthy; rack C's uplink is 4/slowdown.
        let tree = builders::rack_tree(
            &[
                (4, 8.0, 4.0),
                (4, 8.0, 4.0),
                (4, 8.0, 4.0 / slowdown as f64),
            ],
            1.0,
        );
        let vc = tree.compute_nodes().to_vec();

        // Dimension table (small R): 1k keys on rack A. Fact table (big S):
        // 24k keys spread over racks A and B only — rack C holds *nothing*,
        // so an ideal plan never touches its uplink.
        let sets = SetSpec::new(1_000, 24_000)
            .with_intersection(400)
            .generate(11);
        let mut placement = Placement::empty(&tree);
        for (i, &x) in sets.r.iter().enumerate() {
            placement.push(vc[i % 4], Rel::R, x);
        }
        for (i, &x) in sets.s.iter().enumerate() {
            placement.push(vc[i % 8], Rel::S, x);
        }

        let lb = intersection_lower_bound(&tree, &placement.stats());
        let smart = run_protocol(&tree, &placement, &TreeIntersect::new(5)).unwrap();
        let naive = run_protocol(&tree, &placement, &UniformHashJoin::new(5)).unwrap();
        verify::check_intersection(&smart.final_state, &placement.all_r(), &placement.all_s())
            .expect("tree-intersect correct");
        verify::check_intersection(&naive.final_state, &placement.all_r(), &placement.all_s())
            .expect("uniform join correct");

        println!(
            "{:>10}  {:>14.0}  {:>14.0}  {:>10.0}  {:>7.1}x",
            format!("{slowdown}x"),
            smart.cost.tuple_cost(),
            naive.cost.tuple_cost(),
            lb.value(),
            naive.cost.tuple_cost() / smart.cost.tuple_cost()
        );
    }
    println!("\nthe weighted plan never routes through rack C, so its cost is flat;");
    println!("the uniform join hashes 1/12 of the fact table onto rack C's dying uplink.");
}
