//! A distributed analytics query on a heterogeneous cluster.
//!
//! The paper's introduction motivates its three tasks as "the essential
//! building blocks for evaluating any complex analytical query". This
//! example runs such a query end to end on the relational layer: a fact
//! table skewed onto a slow machine, joined with a dimension table,
//! filtered, grouped and sorted — with every shipped row charged on the
//! topology-aware cost functional, broken down per operator.
//!
//! ```text
//! cargo run --release --example sql_analytics
//! ```

use tamp::query::prelude::*;
use tamp::query::reference;
use tamp::topology::builders;

fn main() {
    // Six machines on a star; machine 0 sits behind a 0.5-unit link while
    // the rest enjoy 4-unit links.
    let tree = builders::heterogeneous_star(&[0.5, 4.0, 4.0, 4.0, 4.0, 4.0]);
    let heavy = tree.compute_nodes()[0];
    let mut catalog = Catalog::new(tree);

    // 5 000 order rows, 80% of them parked on the slow machine (say, the
    // node that ingested yesterday's batch).
    let orders: Vec<Vec<u64>> = (0..5_000)
        .map(|i| vec![i, i % 16, (i * 97) % 500, 1 + i % 9])
        .collect();
    catalog
        .register(DistributedTable::skewed(
            "orders",
            Schema::new(vec!["id", "product", "amount", "qty"]).unwrap(),
            orders,
            catalog.tree(),
            heavy,
            0.8,
        ))
        .unwrap();
    // A small product dimension, spread round-robin.
    let products: Vec<Vec<u64>> = (0..16).map(|p| vec![p, p % 4]).collect();
    catalog
        .register(DistributedTable::round_robin(
            "products",
            Schema::new(vec!["product", "category"]).unwrap(),
            products,
            catalog.tree(),
        ))
        .unwrap();

    // SELECT category, SUM(amount) FROM orders JOIN products USING (product)
    // WHERE amount > 250 GROUP BY category ORDER BY category;
    let query = LogicalPlan::scan("orders")
        .filter(col("amount").gt(lit(250)))
        .join_on(LogicalPlan::scan("products"), "product", "product")
        .aggregate("category", AggFunc::Sum, "amount")
        .order_by("category");
    println!("logical plan:\n{query}");
    let optimized = optimize(query.clone(), &catalog).unwrap();
    println!("optimized plan:\n{optimized}");

    // Engine selection goes through the runtime's spec hook: run with
    // e.g. `TAMP_BACKEND=pooled-cluster` (or `cluster:4`) to execute the
    // very same plans on the pooled BSP cluster — the metered ledgers are
    // bit-identical to the simulator's. A typo'd spec is a typed
    // `RuntimeError::UnknownBackend` whose message lists the valid specs
    // — surface it instead of silently falling back to a default engine.
    let spec = std::env::var("TAMP_BACKEND").unwrap_or_else(|_| "simulator".into());
    let backend = match tamp::runtime::backend_from_spec(&spec) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("TAMP_BACKEND: {e}");
            std::process::exit(2);
        }
    };
    println!("backend: {}", backend.name());

    // The columnar engine's batch granularity is tunable the same way:
    // `TAMP_BATCH_SIZE=256` shrinks each shipped record batch (and each
    // metered send) to 256 rows. The metered cost is invariant in the
    // batch size — only trace granularity changes. A non-numeric value is
    // rejected here; `0` flows through to the planner's typed
    // `QueryError::InvalidBatchSize`.
    let batch_size = match std::env::var("TAMP_BATCH_SIZE") {
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("TAMP_BATCH_SIZE: {e} (got {raw:?})");
                std::process::exit(2);
            }
        },
        Err(_) => ExecOptions::default().batch_size,
    };
    println!("batch size: {batch_size}");

    for (label, strategy) in [
        ("distribution-aware (weighted) join", JoinStrategy::Weighted),
        ("topology-agnostic (uniform) join", JoinStrategy::Uniform),
        ("auto (cost-based at plan time)", JoinStrategy::Auto),
    ] {
        let result = execute_on(
            &catalog,
            &optimized,
            ExecOptions {
                join: strategy,
                seed: 7,
                batch_size,
                ..ExecOptions::default()
            },
            backend.as_ref(),
        )
        .unwrap();
        println!(
            "\n== {label}: total cost {:.1} tuples over {} rounds (planner estimate {:.1})",
            result.cost.tuple_cost(),
            result.rounds,
            result.estimated_cost,
        );
        println!("   {:<28} {:>10} {:>10}", "operator", "estimated", "actual");
        for oc in &result.operator_costs {
            println!(
                "   {:<28} {:>10.1} {:>10.1}",
                oc.op, oc.estimated, oc.actual
            );
        }
        // The distributed answer matches the single-node oracle.
        let want = reference::evaluate(&query, &catalog).unwrap();
        assert_eq!(result.rows(true), want, "distributed result mismatch");
    }
    println!("\nall strategies agree with the single-node reference — only the cost differs");
}
