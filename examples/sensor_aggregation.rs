//! In-network aggregation on a sensor-style tree (the TAG/LOOM scenario).
//!
//! The paper's related work covers topology-aware aggregation systems
//! that are "agnostic to the distribution of the input data" and "lack
//! any theoretical guarantees". This example runs the repository's
//! distribution-aware extension: three all-to-one strategies on a
//! deep tree with thin uplinks, against the per-edge group lower bound.
//!
//! ```text
//! cargo run --release --example sensor_aggregation
//! ```

use tamp::core::aggregate::{
    aggregation_lower_bound, encode, reference_aggregate, Aggregator, CombiningTreeAggregate,
    FlatPartialAggregate, NaiveAggregate,
};
use tamp::core::hashing::mix64;
use tamp::core::ratio::ratio;
use tamp::simulator::{run_protocol, Placement, Rel};
use tamp::topology::builders;

fn main() {
    // Four clusters of four sensors each, behind 0.25-unit uplinks — the
    // base station is sensor 0.
    let tree = builders::rack_tree(
        &[
            (4, 2.0, 0.25),
            (4, 2.0, 0.25),
            (4, 2.0, 0.25),
            (4, 2.0, 0.25),
        ],
        1.0,
    );
    let base_station = tree.compute_nodes()[0];

    // Every sensor reports 200 readings across 25 metrics (groups).
    let mut placement = Placement::empty(&tree);
    for (i, &v) in tree.compute_nodes().iter().enumerate() {
        for j in 0..200u64 {
            let metric = (i as u64 * 7 + j) % 25;
            let reading = mix64(j ^ i as u64) % 1_000;
            placement.push(v, Rel::R, encode(metric, reading));
        }
    }
    let lb = aggregation_lower_bound(&tree, &placement, base_station);
    println!("16 sensors × 200 readings × 25 metrics → MAX per metric at the base station");
    println!("per-edge lower bound: {:.0} tuple-cost\n", lb.value());

    let want = reference_aggregate(&placement.all_r(), Aggregator::Max);
    for (label, run) in [
        (
            "ship raw readings  ",
            run_protocol(
                &tree,
                &placement,
                &NaiveAggregate::new(base_station, Aggregator::Max),
            )
            .unwrap(),
        ),
        (
            "flat pre-aggregate ",
            run_protocol(
                &tree,
                &placement,
                &FlatPartialAggregate::new(base_station, Aggregator::Max),
            )
            .unwrap(),
        ),
        (
            "in-network combine ",
            run_protocol(
                &tree,
                &placement,
                &CombiningTreeAggregate::new(base_station, Aggregator::Max),
            )
            .unwrap(),
        ),
    ] {
        let got: std::collections::BTreeMap<u64, u64> = run.output.iter().copied().collect();
        assert_eq!(got, want, "{label} produced a wrong aggregate");
        println!(
            "{label} cost {:>8.1}  rounds {}  ratio-to-LB {:>6.2}",
            run.cost.tuple_cost(),
            run.rounds,
            ratio(run.cost.tuple_cost(), lb.value())
        );
    }
    println!(
        "\nin-network combining crosses each thin uplink once per metric —\n\
         the TAG idea, here with a per-edge optimality yardstick"
    );
}
