//! The paper's protocols as *real* distributed programs.
//!
//! Every compute node logically runs its own program — it sees only its
//! local fragment plus the §2 model knowledge and re-derives the shared
//! plan locally; no coordinator hands it the answer. Physically, a
//! bounded worker pool (default: available parallelism) executes the
//! node programs, so the same code scales to thousands of nodes. The
//! traffic each node generates is metered on the same ledger as the
//! centralized simulator, and for the same seed the two agree to the
//! bit.
//!
//! ```text
//! cargo run --release --example threaded_cluster
//! ```

use tamp::core::hashing::mix64;
use tamp::core::intersection::TreeIntersect;
use tamp::core::sorting::{valid_order, WeightedTeraSort};
use tamp::runtime::programs::{DistributedTreeIntersect, DistributedWts};
use tamp::runtime::{run_cluster, ClusterOptions};
use tamp::simulator::{run_protocol, verify, Placement, Rel};
use tamp::topology::builders;

fn main() {
    let tree = builders::rack_tree(&[(4, 4.0, 2.0), (4, 4.0, 1.0), (4, 4.0, 8.0)], 1.0);
    println!(
        "cluster: {} compute nodes on 3 racks — pooled worker execution\n",
        tree.num_compute()
    );

    // ---- Set intersection -------------------------------------------
    let mut p = Placement::empty(&tree);
    let vc = tree.compute_nodes();
    for a in 0..3_000u64 {
        p.push(vc[(mix64(a) % vc.len() as u64) as usize], Rel::R, a);
    }
    for a in 0..9_000u64 {
        let val = 1_500 + a;
        p.push(vc[(mix64(val ^ 5) % vc.len() as u64) as usize], Rel::S, val);
    }
    let seed = 42;
    let sim = run_protocol(&tree, &p, &TreeIntersect::new(seed)).unwrap();
    let rt = run_cluster(
        &tree,
        &p,
        |_| Box::new(DistributedTreeIntersect::new(seed)),
        ClusterOptions::default(),
    )
    .unwrap();
    verify::check_intersection(&rt.final_state, &p.all_r(), &p.all_s()).unwrap();
    println!("set intersection (seed {seed}):");
    println!(
        "  simulator cost        {:>10.1} tuples",
        sim.cost.tuple_cost()
    );
    println!(
        "  threaded cluster cost {:>10.1} tuples",
        rt.cost.tuple_cost()
    );
    assert_eq!(sim.cost.edge_totals, rt.cost.edge_totals);
    println!("  per-edge traffic: IDENTICAL — the distributed per-node plan");
    println!("  derivation reproduces the centralized sends exactly\n");

    // ---- Sorting ------------------------------------------------------
    let mut p = Placement::empty(&tree);
    for x in 0..8_000u64 {
        p.push(
            vc[(mix64(x ^ 9) % vc.len() as u64) as usize],
            Rel::R,
            mix64(x),
        );
    }
    let sim = run_protocol(&tree, &p, &WeightedTeraSort::new(seed)).unwrap();
    let rt = run_cluster(
        &tree,
        &p,
        |_| Box::new(DistributedWts::new(seed)),
        ClusterOptions::default(),
    )
    .unwrap();
    let order = valid_order(&tree);
    verify::check_sorted_partition(&order, &rt.final_state, &p.all_r()).unwrap();
    println!("weighted TeraSort (seed {seed}):");
    println!(
        "  simulator cost        {:>10.1} tuples",
        sim.cost.tuple_cost()
    );
    println!(
        "  threaded cluster cost {:>10.1} tuples",
        rt.cost.tuple_cost()
    );
    assert_eq!(sim.cost.edge_totals, rt.cost.edge_totals);
    println!("  per-edge traffic: IDENTICAL across all 4 communication rounds");
    println!(
        "  ({} supersteps, globally sorted along the valid node order)",
        rt.supersteps
    );
}
