//! The §3.3 remark, live: which protocols survive stale bandwidth data?
//!
//! "Interestingly, the algorithm we described above does not use the link
//! bandwidths to decide what to send and where to send to … a significant
//! practical advantage because bandwidth information may be imprecise or
//! have high variability at runtime."
//!
//! This example drifts every link's bandwidth by random factors and shows
//! that intersection and sorting move *identical* per-edge traffic — the
//! routing never consulted the bandwidths — while the cartesian product's
//! square plan (which is computed *from* the bandwidths, Algorithm 5)
//! degrades when planned against stale numbers.
//!
//! ```text
//! cargo run --release --example bandwidth_drift
//! ```

use tamp::core::cartesian::TreeCartesianProduct;
use tamp::core::hashing::mix64;
use tamp::core::intersection::TreeIntersect;
use tamp::core::robustness::perturb_bandwidths;
use tamp::core::sorting::WeightedTeraSort;
use tamp::simulator::{run_protocol, Placement, Rel};
use tamp::topology::builders;

fn main() {
    // A deliberately lopsided tree: one fast rack, one slow rack.
    let tree = builders::rack_tree(&[(3, 4.0, 8.0), (3, 0.5, 1.0)], 1.0);
    let vc = tree.compute_nodes().to_vec();

    let mut p_si = Placement::empty(&tree);
    for a in 0..2_000u64 {
        p_si.push(vc[(mix64(a) % vc.len() as u64) as usize], Rel::R, a);
        let val = 1_000 + a;
        p_si.push(vc[(mix64(val ^ 2) % vc.len() as u64) as usize], Rel::S, val);
    }
    let mut p_sort = Placement::empty(&tree);
    for x in 0..3_000u64 {
        p_sort.push(vc[(x % vc.len() as u64) as usize], Rel::R, mix64(x));
    }
    let mut p_cp = Placement::empty(&tree);
    for a in 0..300u64 {
        p_cp.push(vc[(mix64(a) % vc.len() as u64) as usize], Rel::R, a);
        p_cp.push(
            vc[(mix64(a ^ 0xCC) % vc.len() as u64) as usize],
            Rel::S,
            9_000 + a,
        );
    }

    let si_base = run_protocol(&tree, &p_si, &TreeIntersect::new(4)).unwrap();
    let sort_base = run_protocol(&tree, &p_sort, &WeightedTeraSort::new(4)).unwrap();
    let cp_fresh = run_protocol(&tree, &p_cp, &TreeCartesianProduct::new()).unwrap();

    println!("bandwidth drift: every link rescaled by a random factor in [1/s, s]\n");
    println!(
        "{:>7} {:>16} {:>16} {:>12} {:>12} {:>12}",
        "spread", "SI traffic Δ", "sort traffic Δ", "CP fresh", "CP stale", "stale/fresh"
    );
    for &spread in &[1.5f64, 2.0, 4.0, 8.0] {
        let drifted = perturb_bandwidths(&tree, spread, 34);

        // Bandwidth-oblivious protocols: run on the drifted tree, compare
        // the actual per-edge traffic vectors.
        let si = run_protocol(&drifted, &p_si, &TreeIntersect::new(4)).unwrap();
        let sort = run_protocol(&drifted, &p_sort, &WeightedTeraSort::new(4)).unwrap();
        let diff =
            |a: &[u64], b: &[u64]| -> u64 { a.iter().zip(b).map(|(x, y)| x.abs_diff(*y)).sum() };
        let si_delta = diff(&si.cost.edge_totals, &si_base.cost.edge_totals);
        let sort_delta = diff(&sort.cost.edge_totals, &sort_base.cost.edge_totals);

        // The bandwidth-dependent plan: planned on stale numbers, executed
        // on the true tree.
        let stale = run_protocol(
            &tree,
            &p_cp,
            &TreeCartesianProduct::with_planning_tree(drifted),
        )
        .unwrap();
        println!(
            "{:>7.1} {:>16} {:>16} {:>12.1} {:>12.1} {:>12.2}",
            spread,
            si_delta,
            sort_delta,
            cp_fresh.cost.tuple_cost(),
            stale.cost.tuple_cost(),
            stale.cost.tuple_cost() / cp_fresh.cost.tuple_cost(),
        );
        assert_eq!(si_delta, 0, "intersection routing consulted bandwidths!");
        assert_eq!(sort_delta, 0, "sorting routing consulted bandwidths!");
    }
    println!(
        "\nΔ = 0 across the board: intersection and sorting route by data\n\
         placement alone; only the cartesian plan pays for stale bandwidths\n\
         (the power-of-2 square rounding absorbs mild drift, so degradation\n\
         appears in jumps — here a 2× plan regression)"
    );
}
