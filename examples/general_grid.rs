//! Beyond trees: the paper's algorithms on grids, tori and hypercubes.
//!
//! §7 leaves general topologies as future work because multiple routing
//! paths exist. This example takes the pragmatic route the substrate
//! enables today: extract a spanning tree (keeping the widest links), run
//! the unmodified tree algorithms, and compare against per-*cut* lower
//! bounds where the whole cut's bandwidth counts — the measured gap is
//! the price of single-tree routing.
//!
//! ```text
//! cargo run --release --example general_grid
//! ```

use tamp::core::general::{graph_intersection_lower_bound, run_on_graph, TreeExtraction};
use tamp::core::hashing::mix64;
use tamp::core::intersection::TreeIntersect;
use tamp::core::ratio::ratio;
use tamp::simulator::{verify, NodeState, Placement};
use tamp::topology::graph::builders as gb;
use tamp::topology::Graph;

fn scatter(graph: &Graph, r: u64, s: u64) -> Placement {
    let vc = graph.compute_nodes();
    let mut frags = vec![NodeState::default(); graph.num_nodes()];
    for a in 0..r {
        frags[vc[(mix64(a) % vc.len() as u64) as usize].index()]
            .r
            .push(a);
    }
    for a in 0..s {
        let val = r / 2 + a;
        frags[vc[(mix64(val ^ 3) % vc.len() as u64) as usize].index()]
            .s
            .push(val);
    }
    Placement::from_fragments(frags)
}

fn main() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("5x5 grid", gb::grid(5, 5, 1.0)),
        ("4x4 torus", gb::torus(4, 4, 1.0)),
        ("4-dim hypercube", gb::hypercube(4, 1.0)),
        ("ring of 16", gb::ring(16, 1.0)),
    ];
    println!("set intersection on non-tree topologies (2 000 R + 6 000 S tuples)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>9}",
        "graph", "extraction", "cost", "cut LB", "ratio"
    );
    for (name, graph) in graphs {
        let p = scatter(&graph, 2_000, 6_000);
        for (how, how_name) in [
            (TreeExtraction::MaxBandwidth, "max-bw"),
            (TreeExtraction::BfsFromFirstCompute, "bfs"),
        ] {
            let (run, tree) = run_on_graph(&graph, &p, &TreeIntersect::new(9), how).unwrap();
            verify::check_intersection(&run.final_state, &p.all_r(), &p.all_s()).unwrap();
            let lb = graph_intersection_lower_bound(&graph, &tree, &p.stats()).value();
            println!(
                "{:<16} {:>10} {:>12.1} {:>12.1} {:>9.2}",
                name,
                how_name,
                run.cost.tuple_cost(),
                lb,
                ratio(run.cost.tuple_cost(), lb)
            );
        }
    }
    println!(
        "\nthe ratio is the price of routing on one tree while the lower bound\n\
         may spread data across the whole cut — widest on expanders (hypercube),\n\
         smallest on cut-dominated shapes; closing it is the paper's open problem"
    );
}
