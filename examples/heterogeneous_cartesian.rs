//! Heterogeneous cartesian product: square sizing on a cluster that mixes
//! fast and slow machines, plus the unequal-size variant.
//!
//! The weighted HyperCube sizes every machine's square of the `|R| × |S|`
//! output grid proportionally to its link bandwidth (§4.2), rounded to a
//! power of two so the squares pack without overlap (Lemma 5). The packing
//! places one composite square of side `2^{i*} ≥ N/2` at the origin — that
//! composite alone covers the grid, and its members (recursively, its
//! quadrants) split the output. This example prints the resulting
//! assignment, then runs the Appendix A.1 algorithm for a 1:64 size ratio.
//!
//! ```text
//! cargo run --release --example heterogeneous_cartesian
//! ```

use tamp::core::cartesian::{cartesian_lower_bound, unequal, TreeCartesianProduct, TreePlan};
use tamp::core::ratio::ratio;
use tamp::simulator::{run_protocol, verify};
use tamp::topology::builders;
use tamp::workloads::{PlacementStrategy, SetSpec};

fn main() {
    // Twelve healthy machines plus four on quarter-speed legacy links.
    let caps: Vec<f64> = (0..16).map(|i| if i < 12 { 1.0 } else { 0.25 }).collect();
    let tree = builders::heterogeneous_star(&caps);
    let half = 3_500usize;
    let sets = SetSpec::new(half, half).generate(31);
    let placement = PlacementStrategy::Uniform.place(&tree, &sets, 31);

    let run = run_protocol(&tree, &placement, &TreeCartesianProduct::new()).unwrap();
    verify::check_pair_coverage(&run.final_state, &placement.all_r(), &placement.all_s())
        .expect("all pairs covered");
    let lb = cartesian_lower_bound(&tree, &placement.stats());
    println!(
        "equal case |R| = |S| = {half}: cost {:.0} tuples, LB {:.0}, ratio {:.2}\n",
        run.cost.tuple_cost(),
        lb.value(),
        ratio(run.cost.tuple_cost(), lb.value())
    );
    if let TreePlan::Packed { squares, .. } = &run.output {
        println!(
            "{:>8}  {:>10}  {:>12}  {:>14}",
            "machine", "link bw", "square side", "output share"
        );
        let grid = (half * half) as f64;
        for &v in tree.compute_nodes() {
            let sq = squares.iter().find(|s| s.owner == v);
            let side = sq.map_or(0, |s| s.side);
            let rows = sq.map_or(0, |s| (s.x + s.side).min(half as u64).saturating_sub(s.x));
            let cols = sq.map_or(0, |s| (s.y + s.side).min(half as u64).saturating_sub(s.y));
            println!(
                "{:>8}  {:>10}  {:>12}  {:>13.1}%",
                v.to_string(),
                caps[v.index()],
                side,
                100.0 * (rows * cols) as f64 / grid
            );
        }
    }

    // Unequal sizes: a 1:64 dimension-to-fact ratio on the same cluster.
    let sets = SetSpec::new(128, 8_192).generate(32);
    let placement = PlacementStrategy::Uniform.place(&tree, &sets, 32);
    let run = run_protocol(
        &tree,
        &placement,
        &unequal::GeneralizedStarCartesianProduct::new(),
    )
    .unwrap();
    verify::check_pair_coverage(&run.final_state, &placement.all_r(), &placement.all_s())
        .expect("all pairs covered");
    let lb = unequal::unequal_lower_bound(&tree, &placement.stats());
    println!(
        "\nunequal case 128 × 8192: strategy {:?}, cost {:.0}, LB {:.0}, ratio {:.2}",
        run.output,
        run.cost.tuple_cost(),
        lb.value(),
        ratio(run.cost.tuple_cost(), lb.value())
    );
    println!("\nslow links get 4×-smaller squares; the origin composite does the in-grid");
    println!("work while redundant squares outside the grid cost nothing (clipped).");
    println!("with |R| ≪ |S| the planner switches to strips and R-broadcast strategies.");
}
