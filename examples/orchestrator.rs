//! An orchestration-layer walkthrough: three tenants, an elastic crew,
//! and a worker killed mid-query that recovers by deterministic replay.
//!
//! The serving example showed one shared `QueryService` behind FIFO
//! admission. This example layers the orchestrator on top:
//!
//! 1. **weighted-fair admission** — three tenants with different DRR
//!    weights (and one in the `Interactive` priority class) share a
//!    deliberately small admission capacity, so grants interleave by
//!    weight instead of arrival order;
//! 2. **elastic autoscaling** — the worker crew starts at the spec
//!    minimum and the control loop grows it as the queue builds, logging
//!    every resize with the full observation it was decided on;
//! 3. **fault injection + recovery** — a `FaultPlan` kills a worker at
//!    superstep 1 mid-query; the orchestrator resumes the prepared plan
//!    from the last superstep checkpoint on the healthy crew and the
//!    answer stays bit-identical, with the recovery log recording how
//!    many supersteps were replayed vs skipped.
//!
//! ```text
//! cargo run --release --example orchestrator
//! ```

use std::time::Instant;

use tamp::query::orchestrator::{decide, Orchestrator, ScalingSpec};
use tamp::query::prelude::*;
use tamp::runtime::FaultPlan;
use tamp::topology::builders;

const QUERIES_PER_TENANT: usize = 30;
const CLIENTS_PER_TENANT: usize = 3;

fn context() -> QueryContext {
    let tree = builders::star(8, 1.0);
    let mut ctx = QueryContext::new(tree.clone()).with_seed(41);
    let facts: Vec<Vec<u64>> = (0..240).map(|i| vec![i, i % 10, (i * 47) % 1024]).collect();
    ctx.register(DistributedTable::round_robin(
        "facts",
        Schema::new(vec!["id", "g", "x"]).unwrap(),
        facts,
        &tree,
    ))
    .unwrap();
    ctx
}

fn workload() -> Vec<LogicalPlan> {
    vec![
        LogicalPlan::scan("facts").aggregate("g", AggFunc::Sum, "x"),
        LogicalPlan::scan("facts")
            .filter(col("x").lt(lit(512)))
            .aggregate("g", AggFunc::Count, "id"),
        LogicalPlan::scan("facts").order_by("x").limit(20),
    ]
}

fn main() {
    // Three tenants: a heavy analytics tenant, a light batch tenant, and
    // an interactive dashboard that jumps the queue by priority class.
    let orch = Orchestrator::builder(context())
        .tenant(TenantSpec::new("analytics", 4, 64))
        .tenant(TenantSpec::new("batch", 1, 64))
        .tenant(TenantSpec::new("dashboard", 2, 64).with_priority(Priority::Interactive))
        .capacity(2)
        .scaling(
            ScalingSpec::new(1, 8)
                .with_target_queue_depth(3)
                .with_cooldown(2),
        )
        .checkpoints(1)
        .build()
        .unwrap();
    println!(
        "orchestrator: capacity {}, crew starts at width {} (elastic 1..=8)\n",
        orch.capacity(),
        orch.pool_width()
    );

    // Serial single-session ground truth for the bit-identity checks.
    let queries = workload();
    let serial_ctx = context();
    let reference: Vec<QueryResult> = queries
        .iter()
        .map(|q| serial_ctx.prepare(q).unwrap().run().unwrap())
        .collect();

    // Kill the worker on the first compute node at superstep 1, armed
    // before the streams start: some in-flight query will hit it.
    let victim = orch.service().context().tree().compute_nodes()[0];
    orch.inject_faults(FaultPlan::new().kill_worker(victim, 1))
        .unwrap();
    println!("armed fault: kill worker on node {victim} at superstep 1\n");

    let start = Instant::now();
    std::thread::scope(|scope| {
        for tenant in ["analytics", "batch", "dashboard"] {
            for c in 0..CLIENTS_PER_TENANT {
                let (orch, queries, reference) = (&orch, &queries, &reference);
                scope.spawn(move || {
                    for i in 0..QUERIES_PER_TENANT / CLIENTS_PER_TENANT {
                        let k = (c + i) % queries.len();
                        let served = orch.serve_as(tenant, &queries[k]).unwrap();
                        assert_eq!(
                            served.result.rows(false),
                            reference[k].rows(false),
                            "{tenant}: rows diverged from single-session execution"
                        );
                        assert_eq!(
                            served.result.cost.edge_totals, reference[k].cost.edge_totals,
                            "{tenant}: metered ledger diverged"
                        );
                    }
                });
            }
        }
    });
    let wall = start.elapsed();
    let total = 3 * QUERIES_PER_TENANT;
    println!(
        "served {total} queries across 3 tenants in {:.1} ms, all bit-identical to serial\n",
        wall.as_secs_f64() * 1e3
    );

    // The fault + recovery log: every fired kill triggered one replay,
    // and the recovery event records the partial restart — which
    // checkpointed superstep it resumed from, and how many supersteps
    // were replayed vs skipped.
    for (fault, rec) in orch.fault_events().iter().zip(orch.recovery_events()) {
        let restart = match rec.resumed_from {
            Some(r) => format!(
                "resumed from checkpointed superstep {r} ({} replayed, {} skipped)",
                rec.replayed_supersteps.unwrap_or(0),
                rec.skipped_supersteps
            ),
            None => "replayed from superstep 0".to_string(),
        };
        println!(
            "fault fired: node {} killed at superstep {} -> tenant '{}' \
             (ticket #{}, attempt {}): {restart}, recovered bit-identical",
            fault.node, fault.round, rec.tenant, rec.ticket, rec.attempt
        );
    }
    if orch.fault_events().is_empty() {
        println!("(fault did not fire: every query finished before superstep 1)");
    }
    if let Some(cp) = orch.checkpoint_stats() {
        println!(
            "checkpoints: {} saved, {} resumed, {} still parked",
            cp.saved, cp.resumed, cp.retained
        );
    }

    // The scaling event log, replayed through the pure control law.
    let spec = orch.scaling_spec().unwrap();
    println!(
        "\nscaling log ({} resizes, crew now {}):",
        orch.scaling_events().len(),
        orch.pool_width()
    );
    for e in orch.scaling_events() {
        let replayed = decide(spec, &e.observation);
        assert_eq!(replayed, (e.decision, e.reason), "scaling log must replay");
        println!(
            "  tick {:>3}: width {} queue {} inflight {} -> {:?} ({}) [replays: ok]",
            e.observation.tick,
            e.observation.width,
            e.observation.queue_depth,
            e.observation.inflight,
            e.decision,
            e.reason
        );
    }

    // Per-tenant serving stats: DRR weights show up as queue-wait
    // separation; the interactive tenant pre-empts both classes.
    println!("\nper-tenant serving stats:");
    println!(
        "  {:<10} {:>6} {:>5} {:>6} {:>9} {:>7} {:>11} {:>11} {:>10}",
        "tenant",
        "weight",
        "prio",
        "served",
        "recovered",
        "skipped",
        "p50 queue",
        "p99 queue",
        "waited_max"
    );
    for t in orch.stats() {
        println!(
            "  {:<10} {:>6} {:>5} {:>6} {:>9} {:>7} {:>11} {:>11} {:>10}",
            t.tenant,
            t.weight,
            format!("{:?}", t.priority)
                .chars()
                .take(5)
                .collect::<String>(),
            t.served,
            t.recovered,
            t.supersteps_skipped,
            format!("{:?}", t.queue_p50),
            format!("{:?}", t.queue_p99),
            t.max_waited_grants
        );
    }
}
